"""Benchmark reproducing Table III — random circuits.

The paper's Table III runs 10 random circuits per qubit count
(40..500 qubits, #gates = 3x#qubits) on DDSIM and on the bit-sliced engine,
reporting the average runtime and the TO/MO/error/segfault counts.  This
benchmark reproduces the same workload at laptop scale and records the
outcome class of every run in ``extra_info`` so the success-count comparison
(the paper's headline: the bit-sliced engine keeps succeeding where the
float-weighted DD engine degrades) can be read off the benchmark report.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_circuit
from repro.workloads.random_circuits import generate_random_circuit

from conftest import scale_choice

QUBIT_COUNTS = scale_choice((8, 12, 16, 20), (20, 40, 60, 80))
SEEDS = scale_choice((0, 1), (0, 1, 2, 3, 4))
ENGINES = ("qmdd", "bitslice")


@pytest.mark.parametrize("num_qubits", QUBIT_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
def test_table3_random_circuit(benchmark, bench_limits, engine, num_qubits):
    """One Table III cell: average runtime of ``engine`` on random circuits."""
    circuits = [generate_random_circuit(num_qubits, seed=1_000 * num_qubits + seed)
                for seed in SEEDS]

    def run_all():
        return [run_circuit(engine, circuit, bench_limits) for circuit in circuits]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    statuses = [result.status for result in results]
    benchmark.extra_info["num_qubits"] = num_qubits
    benchmark.extra_info["num_gates"] = circuits[0].num_gates
    benchmark.extra_info["statuses"] = ",".join(statuses)
    benchmark.extra_info["successes"] = sum(result.succeeded for result in results)
    benchmark.extra_info["avg_nodes"] = (
        sum(result.memory_nodes for result in results) / len(results))
    # The workload itself must at least have been attempted on every seed.
    assert len(results) == len(SEEDS)

"""Throughput of the interchangeable BDD node-store backends.

The substrate contract (``docs/substrate.md``) says backend choice is
purely a performance knob — every backend produces node-for-node identical
DAGs.  These benchmarks measure the knob itself: the *same* fixed-seed
circuit workload runs on each backend, the timings land in the regression
gate, and the deterministic node counts double as a coarse cross-backend
identity check inside the benchmark job.

Two in-benchmark assertions police the contract's performance side:

* the **array** backend must stay within a small factor of the dict
  backend (it is the always-available fallback for ``compiled``, so a
  regression there silently taxes every degraded environment);
* the **compiled** backend must deliver a real speedup on the raw apply
  kernel — gated only where numba is importable (CI's smoke runner
  installs the base package, so the gate runs on developer machines and
  any future jitted job; everywhere else the benchmark records the
  interpreted timing without asserting).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bdd import ArrayBddManager, BddManager
from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator

from conftest import scale_choice

try:
    from repro.bdd._compiled import HAS_NUMBA, CompiledBddManager
except ImportError:  # pragma: no cover - numpy-less environments
    CompiledBddManager = None
    HAS_NUMBA = False

NUM_QUBITS = scale_choice(10, 14)
LAYERS = scale_choice(4, 6)
#: The array backend may not lag the dict backend by more than this factor
#: on the end-to-end workload (margin-padded: CI runners are noisy).
ARRAY_PARITY_FACTOR = 1.5
#: Minimum jitted-kernel speedup over the dict apply path (asserted only
#: where numba is importable).
COMPILED_SPEEDUP_FLOOR = 10.0


def _workload() -> QuantumCircuit:
    """A fixed-seed H/T/CX-dense circuit: deep enough that apply dominates,
    small enough for the smoke job."""
    rng = random.Random(29)
    circuit = QuantumCircuit(NUM_QUBITS, name="substrate_workload")
    for qubit in range(NUM_QUBITS):
        circuit.h(qubit)
    for _ in range(LAYERS):
        for qubit in range(NUM_QUBITS):
            getattr(circuit, rng.choice(("t", "s", "h", "tdg")))(qubit)
        for qubit in range(NUM_QUBITS - 1):
            if rng.random() < 0.6:
                circuit.cx(qubit, qubit + 1)
    return circuit


def _simulate(factory, circuit: QuantumCircuit) -> BitSliceSimulator:
    simulator = BitSliceSimulator(circuit.num_qubits,
                                  manager=factory(circuit.num_qubits))
    simulator.run(circuit)
    return simulator


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_substrate_dict_backend(benchmark):
    """End-to-end circuit execution on the default dict store."""
    circuit = _workload()
    simulator = benchmark(lambda: _simulate(BddManager, circuit))
    benchmark.extra_info["peak_memory_nodes"] = simulator.peak_nodes
    benchmark.extra_info["backend"] = 0


def test_substrate_array_backend(benchmark):
    """The same workload on the array store, with the parity assertion."""
    circuit = _workload()
    simulator = benchmark(lambda: _simulate(ArrayBddManager, circuit))
    benchmark.extra_info["peak_memory_nodes"] = simulator.peak_nodes
    benchmark.extra_info["backend"] = 1
    # Identity: the array run must reach the dict run's exact peak.
    reference = _simulate(BddManager, circuit)
    assert simulator.peak_nodes == reference.peak_nodes
    # Parity: re-time both backends back to back on this machine (the
    # benchmark fixture timed only the array path).
    array_seconds = _best_of(lambda: _simulate(ArrayBddManager, circuit))
    dict_seconds = _best_of(lambda: _simulate(BddManager, circuit))
    ratio = array_seconds / dict_seconds
    benchmark.extra_info["array_over_dict"] = round(ratio, 3)
    assert ratio < ARRAY_PARITY_FACTOR, (
        f"array backend {ratio:.2f}x slower than dict — the compiled "
        f"fallback path regressed")


@pytest.mark.skipif(CompiledBddManager is None,
                    reason="compiled kernel module needs numpy")
def test_substrate_compiled_backend(benchmark):
    """The same workload on the compiled store (interpreted without numba;
    the speedup floor is asserted only when the kernel is actually jitted)."""
    circuit = _workload()
    simulator = benchmark(lambda: _simulate(CompiledBddManager, circuit))
    stats = simulator.state.manager.perf_stats()
    benchmark.extra_info["backend"] = 2
    benchmark.extra_info["peak_memory_nodes"] = simulator.peak_nodes
    # Recorded as a bool: the regression gate exact-matches int extras, and
    # jittedness legitimately differs between CI (no numba) and dev boxes.
    benchmark.extra_info["jitted"] = bool(HAS_NUMBA)
    assert stats["compiled_calls"] > 0
    assert _simulate(BddManager, circuit).peak_nodes == simulator.peak_nodes
    if HAS_NUMBA:  # pragma: no cover - smoke runners have no numba
        compiled_seconds = _best_of(lambda: _simulate(CompiledBddManager,
                                                      circuit))
        dict_seconds = _best_of(lambda: _simulate(BddManager, circuit))
        speedup = dict_seconds / compiled_seconds
        benchmark.extra_info["compiled_speedup"] = round(speedup, 2)
        assert speedup >= COMPILED_SPEEDUP_FLOOR, (
            f"jitted kernel only {speedup:.1f}x over dict; "
            f"expected >= {COMPILED_SPEEDUP_FLOOR}x")

"""Benchmarks of the in-place dynamic variable reordering subsystem.

This is the first benchmark family whose win is measured in *nodes* — the
paper's own cost metric — not only in seconds.  The workload is the
Table IV style H-augmented Cuccaro ripple-carry adder, whose natural wire
order (carry, all of register ``a``, all of register ``b``) separates the
two addend registers: the textbook-bad order for adder BDDs.  Rudell
sifting recovers an interleaved-style order and shrinks the live state by
several times; the deterministic ``reorder_nodes_before`` /
``reorder_nodes_after`` extras pin the reduction in the regression gate and
surface it in the CI job summary's node-count column.

Three measurements:

* ``test_swap_adjacent_levels`` — the primitive: one public adjacent-level
  swap pair (there and back, so the state is identical every round),
* ``test_sift_revlib_adder`` — a full sift of the final adder state
  (fresh simulator per round; cost and node reduction recorded),
* ``test_auto_reorder_end_to_end`` — the growth-triggered mode through the
  ``repro.run`` front door, recording the ``substrate_reorder_*`` counters
  the bench JSON artifact carries in ``extra_info``.
"""

from __future__ import annotations

import repro
from repro.core.simulator import BitSliceSimulator
from repro.workloads.revlib import h_augment, ripple_carry_adder

from conftest import scale_choice

ADDER_BITS = scale_choice(6, 8)
AUTO_THRESHOLD = scale_choice(60, 200)


def _prepared_adder_simulator() -> BitSliceSimulator:
    """The H-augmented ripple-carry adder, fully simulated under the
    natural (deliberately adder-hostile) wire order."""
    circuit, constants = ripple_carry_adder(ADDER_BITS)
    modified = h_augment(circuit, constants)
    simulator = BitSliceSimulator(modified.num_qubits)
    simulator.run(modified)
    return simulator


def test_swap_adjacent_levels(benchmark):
    """One public adjacent-level swap, there and back (identity overall, so
    every timing round sees the identical node store)."""
    simulator = _prepared_adder_simulator()
    manager = simulator.state.manager
    level = simulator.num_qubits // 2

    def swap_round_trip():
        rewired = manager.swap_adjacent_levels(level)
        manager.swap_adjacent_levels(level)
        return rewired

    rewired = benchmark(swap_round_trip)
    benchmark.extra_info["rewired_nodes"] = rewired
    benchmark.extra_info["state_nodes"] = simulator.state.num_nodes()
    benchmark.extra_info["num_qubits"] = simulator.num_qubits


def test_sift_revlib_adder(benchmark):
    """Full Rudell sift of the adder's final state (fresh simulator per
    round — sifting is one-shot work, not a memoised hot path)."""

    def setup():
        return (_prepared_adder_simulator(),), {}

    def run_sift(simulator):
        return simulator.sift()

    stats = benchmark.pedantic(run_sift, setup=setup, rounds=3)
    # The acceptance metric: sifting must shrink the live node count, and
    # the exact before/after pair is deterministic (fixed circuit, fixed
    # schedule), so the regression gate pins it.
    assert stats["nodes_after"] < stats["nodes_before"]
    benchmark.extra_info["reorder_nodes_before"] = stats["nodes_before"]
    benchmark.extra_info["reorder_nodes_after"] = stats["nodes_after"]
    benchmark.extra_info["reorder_swaps"] = stats["swaps"]
    benchmark.extra_info["adder_bits"] = ADDER_BITS


def test_auto_reorder_end_to_end(benchmark):
    """The growth-triggered mode end to end: ``repro.run`` with a threshold
    that fires mid-circuit, timed against the front-door clock."""
    circuit, constants = ripple_carry_adder(ADDER_BITS)
    modified = h_augment(circuit, constants)

    def run_with_auto_reorder():
        return repro.run(modified, engine="bitslice", reorder=AUTO_THRESHOLD)

    result = benchmark(run_with_auto_reorder)
    assert result.status == "ok"
    assert result.extra["substrate_reorder_count"] >= 1
    benchmark.extra_info["reorder_count"] = int(
        result.extra["substrate_reorder_count"])
    benchmark.extra_info["reorder_swaps"] = int(
        result.extra["substrate_reorder_swaps"])
    benchmark.extra_info["reorder_nodes_after"] = int(
        result.extra["substrate_reorder_nodes_after"])
    benchmark.extra_info["peak_memory_nodes"] = result.peak_memory_nodes

"""Benchmark reproducing Table IV — RevLib-style reversible circuits.

The paper runs each RevLib circuit twice: the original (purely classical
reversible logic, fast for every engine) and the H-modified variant (inputs
in superposition), where DDSIM runs out of memory on most cases while the
bit-sliced engine completes.  The reproduction benchmarks the same
original/modified pairs from the synthetic RevLib-style families and records
the outcome class so the MO behaviour of the float-weighted engine is
visible in the report.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_circuit
from repro.workloads.revlib import generate_revlib_circuit, h_augment

from conftest import scale_choice

FAMILIES = scale_choice(
    ("add8", "alu4", "cpu_ctrl3", "register4x4", "nested_if6", "parity12"),
    ("add8", "add16", "alu4", "alu8", "cpu_ctrl3", "cpu_ctrl4",
     "register4x4", "nested_if6", "parity12", "bdd_chain10"),
)
ENGINES = ("qmdd", "bitslice")


@pytest.mark.parametrize("variant", ("original", "modified"))
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("engine", ENGINES)
def test_table4_revlib(benchmark, bench_limits, engine, family, variant):
    """One Table IV cell: runtime of ``engine`` on one circuit variant."""
    circuit, constants = generate_revlib_circuit(family)
    if variant == "modified":
        circuit = h_augment(circuit, constants)

    result = benchmark.pedantic(
        lambda: run_circuit(engine, circuit, bench_limits), rounds=1, iterations=1)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["num_qubits"] = circuit.num_qubits
    benchmark.extra_info["num_gates"] = circuit.num_gates
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["nodes"] = result.memory_nodes
    assert result.status in ("ok", "TO", "MO", "error")

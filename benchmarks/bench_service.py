"""Smoke benchmarks for the simulation service (wire overhead + warm sessions).

Two service guarantees are gated here with in-benchmark assertions:

* ``test_service_roundtrip_overhead`` — a full wire round trip (encode
  request, TCP to a live ``repro-serve`` loop, scheduler hand-off, encode
  reply) must stay cheap: the steady-state served run is asserted to cost
  at most 250 ms, and the measured overhead versus a direct in-process
  ``repro.run()`` is recorded as an informational float.
* ``test_service_warm_session_append`` — the service's reason to exist:
  appending one gate to a warm server-side session (prefix resume +
  wire) must be at least **2x** faster than a cold local run of the full
  base circuit.

The session benchmark uses ``benchmark.pedantic`` with a fixed round
count: every append advances the session's cumulative circuit, so an
adaptive round count would make the deposited prefix depth — and the
per-round payload — machine-dependent.  Only round-count-independent
integers go into ``extra_info`` (the regression gate pins those exactly);
measured speedups are informational floats.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import Client, QuantumCircuit
from repro.engines import ResourceLimits
from repro.service import serve_background

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)
SHOTS = 256
SEED = 23

#: Small request workload for the round-trip benchmark: the server memoises
#: it after the first call, so steady-state rounds measure the wire, not
#: the engine.
ROUNDTRIP = QuantumCircuit(8, name="service_roundtrip").h(0)
for _qubit in range(7):
    ROUNDTRIP.cx(_qubit, _qubit + 1)
ROUNDTRIP.t(3).h(3)
ROUNDTRIP.measure_all()

#: Session base: GHZ backbone with non-Clifford tails (the bench_cache
#: workload at 12 qubits) — a cold run does real BDD work, an appended
#: gate against the warm session does almost none.
BASE = QuantumCircuit(12, name="service_base").h(0)
for _qubit in range(11):
    BASE.cx(_qubit, _qubit + 1)
BASE.t(2).h(2).t(5).h(5).t(8).h(8).t(10)


def _best_of(callable_, repeats=3):
    """Best-of-N wall-clock seconds of one call (jitter-resistant cold
    reference for the speedup assertions)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def service():
    """One live server + connected client shared by the module."""
    with serve_background(workers=2, queue_depth=16,
                          default_limits=LIMITS) as background:
        with Client(background.address) as client:
            yield client


def test_service_roundtrip_overhead(benchmark, service):
    """Steady-state served run vs direct in-process ``repro.run()``."""
    direct_seconds, direct = _best_of(
        lambda: repro.run(ROUNDTRIP, engine="bitslice", limits=LIMITS,
                          shots=SHOTS, seed=SEED))

    def served():
        return service.run(ROUNDTRIP, engine="bitslice", shots=SHOTS,
                           seed=SEED)

    result = benchmark(served)
    assert result.status == "ok"
    # The wire adds no lossy re-encoding: the served record is
    # byte-identical to the direct one.
    assert result.to_dict(timings=False) == direct.to_dict(timings=False)
    served_seconds = benchmark.stats.stats.min
    assert served_seconds < 0.25, (
        f"wire round trip took {served_seconds * 1e3:.1f} ms")
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["distinct_outcomes"] = len(result.counts)
    benchmark.extra_info["roundtrip_overhead_ms"] = round(
        max(0.0, served_seconds - direct_seconds) * 1e3, 3)
    benchmark.extra_info["direct_ms"] = round(direct_seconds * 1e3, 3)


def test_service_warm_session_append(benchmark, service):
    """One-gate append to a warm server session vs a cold local full run."""
    cold_seconds, cold = _best_of(
        lambda: repro.run(BASE, engine="bitslice", limits=LIMITS))
    assert cold.status == "ok"
    session_id = service.open_session(BASE.num_qubits, engine="bitslice")
    seeded = service.append(session_id, BASE)
    assert seeded.status == "ok"
    assert seeded.final_probability == cold.final_probability

    def append_one_gate():
        delta = QuantumCircuit(BASE.num_qubits, name="service_append").t(0)
        return service.append(session_id, delta)

    # Fixed rounds: every append advances the cumulative circuit, so the
    # deposited depth must not depend on an adaptive round count.
    result = benchmark.pedantic(append_one_gate, rounds=10, iterations=1,
                                warmup_rounds=1)
    assert result.status == "ok"
    assert result.extra.get("resumed_from_depth", 0) >= BASE.num_gates
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds
    assert speedup >= 2.0, (
        f"warm session append only {speedup:.2f}x faster than a cold "
        f"local run ({warm_seconds:.6f}s vs {cold_seconds:.6f}s)")
    appends = service.close_session(session_id)
    assert appends == 12  # base + 1 warmup + 10 measured rounds
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["base_gates"] = BASE.num_gates
    benchmark.extra_info["warm_append_speedup"] = round(speedup, 2)

"""Benchmark for the paper's accuracy claim (Section III-A, "error" columns).

The algebraic representation makes the bit-sliced engine exact: its state
norm is identically 1 whatever the circuit depth, whereas the float-weighted
QMDD engine accumulates rounding error that grows with depth and with the
complex-table tolerance — which is precisely what turns into the "error"
entries of the paper's Tables III and V.  The benchmark measures runtime of
both engines on deep H/T/CX circuits and records the measured norm drift.
"""

from __future__ import annotations

import pytest

from repro.baselines.qmdd import QmddSimulator
from repro.core.simulator import BitSliceSimulator
from repro.harness.experiments import accuracy_circuit

from conftest import scale_choice

NUM_QUBITS = scale_choice(5, 8)
LAYERS = scale_choice((8, 32), (16, 64, 256))


@pytest.mark.parametrize("layers", LAYERS)
def test_accuracy_bitslice_exact(benchmark, layers):
    """Deep-circuit run on the exact engine; drift must be exactly zero."""
    circuit = accuracy_circuit(NUM_QUBITS, layers)

    def run():
        simulator = BitSliceSimulator.simulate(circuit)
        return simulator.total_probability()

    norm = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["norm_drift"] = abs(norm - 1.0)
    assert abs(norm - 1.0) < 1e-12


@pytest.mark.parametrize("tolerance", (1e-6, 1e-10, 1e-13))
@pytest.mark.parametrize("layers", LAYERS)
def test_accuracy_qmdd_drift(benchmark, layers, tolerance):
    """Deep-circuit run on the float-weighted engine; drift grows with
    depth and tolerance (the paper's precision-loss mechanism)."""
    circuit = accuracy_circuit(NUM_QUBITS, layers)

    def run():
        simulator = QmddSimulator(circuit.num_qubits, tolerance=tolerance,
                                  error_threshold=float("inf"))
        simulator.run(circuit)
        return simulator.norm_squared()

    norm = benchmark.pedantic(run, rounds=1, iterations=1)
    drift = abs(norm - 1.0)
    benchmark.extra_info["layers"] = layers
    benchmark.extra_info["tolerance"] = tolerance
    benchmark.extra_info["norm_drift"] = drift
    # Coarse tolerances must show visible drift on deep circuits — that is
    # the phenomenon being reproduced, so assert it is observable.
    if tolerance >= 1e-6 and layers >= 8:
        assert drift > 0.0

"""Benchmark reproducing Table V — entanglement (GHZ) and Bernstein–Vazirani.

The paper scales these two algorithm families to thousands of qubits: the
bit-sliced engine completes 10,000-qubit GHZ and 30,000-gate BV circuits
while DDSIM hits MO / numerical errors / crashes, and the dedicated CHP
stabilizer simulator is fastest on the (stabilizer) GHZ family but cannot run
anything non-Clifford.  The reproduction benchmarks the same three engines on
the same two families at laptop scale.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_circuit
from repro.workloads.algorithms import bernstein_vazirani_circuit, ghz_circuit

from conftest import scale_choice

GHZ_QUBITS = scale_choice((20, 60, 120, 240), (100, 500, 1000, 2000))
BV_QUBITS = scale_choice((20, 60, 120), (100, 500, 1000))
ENGINES = ("qmdd", "bitslice", "stabilizer")


@pytest.mark.parametrize("num_qubits", GHZ_QUBITS)
@pytest.mark.parametrize("engine", ENGINES)
def test_table5_entanglement(benchmark, bench_limits, engine, num_qubits):
    """Entanglement columns of Table V (GHZ preparation)."""
    circuit = ghz_circuit(num_qubits)
    result = benchmark.pedantic(
        lambda: run_circuit(engine, circuit, bench_limits), rounds=1, iterations=1)
    benchmark.extra_info["family"] = "entanglement"
    benchmark.extra_info["num_qubits"] = num_qubits
    benchmark.extra_info["num_gates"] = circuit.num_gates
    benchmark.extra_info["status"] = result.status
    assert result.status in ("ok", "TO", "MO", "error", "unsupported")


@pytest.mark.parametrize("num_qubits", BV_QUBITS)
@pytest.mark.parametrize("engine", ENGINES)
def test_table5_bernstein_vazirani(benchmark, bench_limits, engine, num_qubits):
    """Bernstein–Vazirani columns of Table V.

    The circuit is Clifford here (the oracle is CNOT-based), so the
    stabilizer engine can run it; the paper's point that CHP cannot handle
    the general case is exercised separately by the unsupported-gate tests
    on T-augmented BV circuits in the test-suite.
    """
    circuit = bernstein_vazirani_circuit(num_qubits - 1)
    result = benchmark.pedantic(
        lambda: run_circuit(engine, circuit, bench_limits), rounds=1, iterations=1)
    benchmark.extra_info["family"] = "bernstein-vazirani"
    benchmark.extra_info["num_qubits"] = circuit.num_qubits
    benchmark.extra_info["num_gates"] = circuit.num_gates
    benchmark.extra_info["status"] = result.status
    assert result.status in ("ok", "TO", "MO", "error", "unsupported")

"""Benchmark reproducing Table VI — Google GRCS supremacy circuits (depth 5).

The paper's hardest benchmark set: rectangular-lattice CZ circuits designed to
produce highly entangled states.  The published result is nuanced — DDSIM is
faster on the cases both tools can finish, the bit-sliced engine uses less
memory and completes slightly more cases overall (77 vs 74 of 120).  The
reproduction benchmarks the same construction at the small end of the
lattice sizes and records time, node count and outcome class so the same
time-vs-memory trade-off can be observed.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_circuit
from repro.workloads.supremacy import TABLE6_LATTICES, grcs_circuit

from conftest import scale_choice

QUBIT_COUNTS = scale_choice((16, 20), (16, 20, 25, 30))
SEEDS = scale_choice((0,), (0, 1, 2))
DEPTH = 5
ENGINES = ("qmdd", "bitslice")


@pytest.mark.parametrize("num_qubits", QUBIT_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
def test_table6_supremacy(benchmark, bench_limits, engine, num_qubits):
    """One Table VI cell: runtime/memory of ``engine`` on GRCS circuits."""
    rows, columns = TABLE6_LATTICES[num_qubits]
    circuits = [grcs_circuit(rows, columns, depth=DEPTH, seed=seed) for seed in SEEDS]

    def run_all():
        return [run_circuit(engine, circuit, bench_limits) for circuit in circuits]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark.extra_info["num_qubits"] = num_qubits
    benchmark.extra_info["num_gates"] = circuits[0].num_gates
    benchmark.extra_info["statuses"] = ",".join(result.status for result in results)
    benchmark.extra_info["avg_memory_mb"] = (
        sum(result.memory_mb for result in results) / len(results))
    assert len(results) == len(SEEDS)

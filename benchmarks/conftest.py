"""Shared configuration for the benchmark suite.

The benchmarks reproduce the paper's Tables III–VI at laptop scale (smaller
qubit counts, shorter budgets) so that ``pytest benchmarks/ --benchmark-only``
finishes in minutes rather than the days the paper-scale sweep would take in
pure Python.  Every benchmark records, next to its timing, the qualitative
quantities the paper reports (success/failure class, node counts), via the
``extra_info`` mechanism of pytest-benchmark.

Set the environment variable ``REPRO_BENCH_SCALE=large`` to run closer to the
paper's parameters (still smaller than the original 7200 s budgets).
"""

from __future__ import annotations

import os

import pytest

#: Scale selector: "small" (default) or "large".
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def scale_choice(small, large):
    """Pick a parameter set based on the benchmark scale."""
    return large if BENCH_SCALE == "large" else small


@pytest.fixture(scope="session")
def bench_limits():
    """Resource limits applied to every benchmark run."""
    from repro.harness.runner import ResourceLimits

    return ResourceLimits(
        max_seconds=scale_choice(30.0, 300.0),
        max_nodes=scale_choice(200_000, 2_000_000),
    )

"""Micro-benchmarks of the fused gate-application kernels.

PR 3 collapsed the gate rules' dominant operation patterns into fused
multi-operand kernels: the full-adder sum / carry run as single
three-operand recursions (``apply_xor3`` / ``apply_maj3``) batched across
the four coefficient vectors, and the SWAP action runs as one cofactor-based
pass (``apply_swap_vars``).  These benchmarks measure exactly that fusion:
the *same* slice BDDs are pushed through the fused path and through the
pre-fusion 2-operand composition path (which the gate rules keep as the
reference implementation), each timed cache-cold so the algorithmic cost is
what's measured, not memoisation.  The recorded ``*_speedup`` extras are the
fused-over-composition ratio; the regression gate tracks the fused timings
and the deterministic node counts.
"""

from __future__ import annotations

import random
import time

from repro.bdd import BatchApplier, BddManager
from repro.circuit.circuit import QuantumCircuit
from repro.core.gate_rules import GateRuleEngine
from repro.core.simulator import BitSliceSimulator

from conftest import scale_choice

NUM_QUBITS = scale_choice(12, 16)
PREP_LAYERS = scale_choice(3, 4)


def _prepared_simulator(seed: int = 17) -> BitSliceSimulator:
    """An H/T-dense prefix producing slices with non-trivial coefficients
    (every adder below genuinely exercises carries, not constant planes)."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(NUM_QUBITS, name="kernel_prep")
    for qubit in range(NUM_QUBITS):
        circuit.h(qubit)
    for _ in range(PREP_LAYERS):
        for qubit in range(NUM_QUBITS):
            mnemonic = rng.choice(("t", "h", "s", "tdg"))
            getattr(circuit, mnemonic)(qubit)
        for qubit in range(NUM_QUBITS - 1):
            if rng.random() < 0.5:
                circuit.cx(qubit, qubit + 1)
    simulator = BitSliceSimulator(NUM_QUBITS)
    simulator.run(circuit)
    return simulator


def _adder_operands(simulator: BitSliceSimulator, target: int = 0):
    """The H gate's four vector additions on ``target``, as equal-width
    ``(addend_a, addend_b, carry_in)`` node-id adders: addend_a is the
    ``q_t = 0`` cofactor plane, addend_b the ``ite(q_t, ~F, F|q_t=1)``
    second operand, and the carry seed is ``q_t`` (Table II's H row)."""
    state = simulator.state
    manager = state.manager
    var = state.qubit_var(target)
    qt = manager.var_node(var)
    batch = BatchApplier(manager)
    flat = [bit.node for name in ("a", "b", "c", "d") for bit in state.slices[name]]
    low = batch.restrict_many(flat, var, False)
    high = batch.restrict_many(flat, var, True)
    nots = batch.not_many(flat)
    second = batch.ite_many([(qt, nb, hi) for nb, hi in zip(nots, high)])
    r = state.r
    return [(low[index * r:(index + 1) * r],
             second[index * r:(index + 1) * r], qt)
            for index in range(4)]


def _fused_adder_chain(manager: BddManager, adders):
    """The hot path: lockstep fused sum / carry batches per bit position."""
    batch = BatchApplier(manager)
    carries = [carry for _, _, carry in adders]
    per_adder = [[] for _ in adders]
    for position in range(len(adders[0][0])):
        triples = [(a_bits[position], b_bits[position], carries[index])
                   for index, (a_bits, b_bits, _) in enumerate(adders)]
        for index, sum_bit in enumerate(batch.xor3_many(triples)):
            per_adder[index].append(sum_bit)
        carries = batch.maj3_many(triples)
    return [bit for bits in per_adder for bit in bits], carries


def _composition_adder_chain(manager: BddManager, adders):
    """The pre-fusion path: six chained 2-operand applies per bit position."""
    apply_and = manager.apply_and
    apply_or = manager.apply_or
    apply_xor = manager.apply_xor
    sums = []
    final_carries = []
    for a_bits, b_bits, carry in adders:
        for bit_a, bit_b in zip(a_bits, b_bits):
            sums.append(apply_xor(apply_xor(bit_a, bit_b), carry))
            carry = apply_or(apply_and(bit_a, bit_b),
                             apply_and(apply_or(bit_a, bit_b), carry))
        final_carries.append(carry)
    return sums, final_carries


def _best_of(function, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def test_fused_adder_chain(benchmark):
    """Cache-cold fused H/adder path (xor3 + maj3 batches over 4 vectors)."""
    simulator = _prepared_simulator()
    manager = simulator.state.manager
    adders = _adder_operands(simulator)
    fused_sums, fused_carries = _fused_adder_chain(manager, adders)
    naive_sums, naive_carries = _composition_adder_chain(manager, adders)
    assert fused_sums == naive_sums and fused_carries == naive_carries

    def cold_fused():
        manager.clear_cache()
        return _fused_adder_chain(manager, adders)

    sums, _ = benchmark(cold_fused)
    benchmark.extra_info["bit_width"] = simulator.state.r
    benchmark.extra_info["result_nodes"] = manager.count_nodes(sums)
    speedup = _best_of(lambda: (manager.clear_cache(),
                                _composition_adder_chain(manager, adders)))
    speedup /= _best_of(lambda: (manager.clear_cache(),
                                 _fused_adder_chain(manager, adders)))
    benchmark.extra_info["fused_vs_composition_speedup"] = round(speedup, 3)
    # Locally measured at ~1.6-1.7x; the assertion floor is lower so a noisy
    # shared CI runner cannot flake the gate — the recorded extra carries
    # the actual ratio and the timing itself is regression-gated.
    assert speedup >= 1.25


def test_composition_adder_chain(benchmark):
    """Cache-cold pre-fusion adder path (the PR 2-era composition chain)."""
    simulator = _prepared_simulator()
    manager = simulator.state.manager
    adders = _adder_operands(simulator)

    def cold_composition():
        manager.clear_cache()
        return _composition_adder_chain(manager, adders)

    sums, _ = benchmark(cold_composition)
    benchmark.extra_info["result_nodes"] = manager.count_nodes(sums)


def test_fused_swap_kernel(benchmark):
    """Cache-cold fused variable-swap pass over all 4r slices."""
    simulator = _prepared_simulator()
    state = simulator.state
    manager = state.manager
    engine = GateRuleEngine(state)
    flat = [bit.node for name in ("a", "b", "c", "d") for bit in state.slices[name]]
    qubit_a, qubit_b = 1, NUM_QUBITS - 2
    var_a, var_b = state.qubit_var(qubit_a), state.qubit_var(qubit_b)
    batch = BatchApplier(manager)
    fused = batch.swap_vars_many(flat, var_a, var_b)
    handles = [engine._swap_two_vars(bit, qubit_a, qubit_b)
               for name in ("a", "b", "c", "d") for bit in state.slices[name]]
    assert fused == [handle.node for handle in handles]

    def cold_fused_swap():
        manager.clear_cache()
        return batch.swap_vars_many(flat, var_a, var_b)

    result = benchmark(cold_fused_swap)
    benchmark.extra_info["result_nodes"] = manager.count_nodes(result)

    def cold_composition_swap():
        manager.clear_cache()
        return [engine._swap_two_vars(bit, qubit_a, qubit_b)
                for name in ("a", "b", "c", "d") for bit in state.slices[name]]

    # Locally measured at ~2.4-2.5x; floor kept low for noisy CI runners.
    speedup = _best_of(cold_composition_swap) / _best_of(cold_fused_swap)
    benchmark.extra_info["fused_vs_composition_speedup"] = round(speedup, 3)
    assert speedup >= 1.3


def test_h_dense_circuit(benchmark):
    """End-to-end H/T-dense circuit through the batched gate rules."""
    def run():
        simulator = _prepared_simulator(seed=23)
        return simulator

    simulator = benchmark(run)
    benchmark.extra_info["num_gates"] = simulator.gates_applied
    benchmark.extra_info["final_nodes"] = simulator.state.num_nodes()
    benchmark.extra_info["bit_width"] = simulator.state.r

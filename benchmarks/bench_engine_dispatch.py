"""Microbenchmark: the unified engine API must stay ~free.

The redesign routes every run through name resolution, capability-based
selection, the adapter layer and the LimitEnforcer wrapper.  These
benchmarks pin that plumbing:

* ``test_dispatch_overhead_vs_native`` times the full ``repro.run`` front
  door on a tiny fixed circuit — registry lookup + adapter + limit checks +
  classification + the final query.  The circuit is small on purpose so the
  dispatch layer is a visible fraction of the time; a regression here means
  the abstraction got more expensive, not the simulator.
* ``test_native_baseline`` times the same workload on the raw
  ``BitSliceSimulator`` (construction, gate loop, query), giving the
  denominator for the overhead ratio.
* ``test_auto_selection`` times capability-based selection alone, which
  runs per circuit in every ``engine="auto"`` call.

Deterministic ``extra_info`` (statuses, node counts) is gated exactly by
``scripts/check_bench_regression.py``; the fixed-seed workload must not
drift.
"""

from __future__ import annotations

from repro.engines import ResourceLimits, run, select_engine
from repro.core.simulator import BitSliceSimulator
from repro.workloads.random_circuits import generate_random_circuit

#: Small fixed workload: dispatch cost must be visible next to it.
CIRCUIT = generate_random_circuit(6, seed=2021)
LIMITS = ResourceLimits(max_seconds=30.0, max_nodes=100_000)
QUERY_QUBITS = list(range(CIRCUIT.num_qubits))


def test_dispatch_overhead_vs_native(benchmark):
    """Full front-door run (registry + adapter + limits + classification)."""

    def front_door():
        return run(CIRCUIT, engine="bitslice", limits=LIMITS)

    result = benchmark(front_door)
    assert result.succeeded
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["peak_memory_nodes"] = result.peak_memory_nodes
    benchmark.extra_info["num_gates"] = CIRCUIT.num_gates


def test_native_baseline(benchmark):
    """The same workload on the raw simulator class (no dispatch layer)."""

    def native():
        simulator = BitSliceSimulator(CIRCUIT.num_qubits)
        simulator.run(CIRCUIT)
        return simulator.probability_of_outcome(QUERY_QUBITS,
                                                [0] * len(QUERY_QUBITS))

    probability = benchmark(native)
    assert 0.0 <= probability <= 1.0
    benchmark.extra_info["num_gates"] = CIRCUIT.num_gates


def test_auto_selection(benchmark):
    """Capability-based engine selection alone (runs per 'auto' call)."""

    selected = benchmark(select_engine, CIRCUIT, LIMITS)
    benchmark.extra_info["selected"] = selected
    # The fixed circuit is non-Clifford and below the dense cutoff.
    assert selected == "statevector"

"""Smoke benchmarks for the snapshot/checkpoint layer.

Three guarantees are gated here, with in-benchmark assertions so CI
fails loudly if crash-safety ever stops paying its way:

* ``test_snapshot_dump_load_roundtrip`` — serialising a warm 10-qubit
  bit-sliced state and restoring it must be faster than re-executing
  the circuit that produced it (at least **2x**): restore is a linear
  column rebuild, re-execution repeats every BDD apply.  The restored
  manager is column-identical (a re-dump is byte-identical).
* ``test_checkpointed_run_overhead`` — a run with per-gate
  checkpointing enabled produces a ``to_dict(timings=False)``
  byte-identical to the cold run, sampled counts included; the
  wall-clock overhead factor is recorded (informational — it is
  dominated by fsync latency, which is machine-dependent).
* ``test_checkpoint_resume_latency`` — restoring a mid-circuit
  checkpoint and executing only the suffix is byte-identical to the
  uninterrupted run; the resumed depth is pinned exactly.

Only round-count-independent quantities go into ``extra_info`` as
integers (the regression gate pins those exactly): node counts, gate
counts, section counts, resumed depth.  Measured speedups and sizes
are recorded as floats — informational, machine-dependent.
"""

from __future__ import annotations

import json
import os
import time

import repro
from repro import JobCancelledError, QuantumCircuit
from repro.core.simulator import BitSliceSimulator
from repro.engines import ResourceLimits
from repro.snapshot import dump_simulator, load_simulator, snapshot_info

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)
SHOTS = 1024
SEED = 17

#: Structured 10-qubit workload: GHZ backbone with non-Clifford tails —
#: big enough that restore-vs-reexecute is a real contest, small enough
#: for CI (same shape as the cache benchmarks, so numbers are comparable).
WORKLOAD = QuantumCircuit(10, name="snapshot_workload").h(0)
for _qubit in range(9):
    WORKLOAD.cx(_qubit, _qubit + 1)
WORKLOAD.t(2).h(2).t(5).h(5).t(8)
SAMPLED = WORKLOAD.copy(name="snapshot_sampled").measure_all()


class _FireAfter:
    """A cancel token that trips after N polls — a deterministic 'crash'
    at a gate boundary (the limit enforcer polls once per instruction)."""

    def __init__(self, after):
        self.after = after
        self.calls = 0

    def is_set(self):
        self.calls += 1
        return self.calls > self.after


def _best_of(callable_, repeats=3):
    """Best-of-N wall-clock seconds of one call (jitter-resistant cold
    reference for the speedup assertions)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _det(result):
    return json.dumps(result.to_dict(timings=False), sort_keys=True)


def test_snapshot_dump_load_roundtrip(benchmark, tmp_path):
    """Dump + load of a warm simulator vs re-executing its circuit."""

    def warm():
        simulator = BitSliceSimulator(10)
        simulator.run(WORKLOAD)
        return simulator

    reexecute_seconds, simulator = _best_of(warm)
    path = tmp_path / "warm.snap"

    def roundtrip():
        dump_simulator(simulator, path)
        restored, _extra = load_simulator(path)
        return restored

    restored = benchmark(roundtrip)
    assert restored.state.num_nodes() == simulator.state.num_nodes()
    assert restored.gates_applied == simulator.gates_applied
    # The restore is exact: re-dumping it reproduces the same bytes.
    blob = path.read_bytes()
    redump = tmp_path / "redump.snap"
    dump_simulator(restored, redump)
    assert redump.read_bytes() == blob
    roundtrip_seconds = benchmark.stats.stats.min
    speedup = reexecute_seconds / roundtrip_seconds
    assert speedup >= 2.0, (
        f"snapshot roundtrip only {speedup:.1f}x faster than re-execution "
        f"({roundtrip_seconds:.6f}s vs {reexecute_seconds:.6f}s)")
    info = snapshot_info(path)
    benchmark.extra_info["state_nodes"] = simulator.state.num_nodes()
    benchmark.extra_info["gates_applied"] = simulator.gates_applied
    benchmark.extra_info["snapshot_sections"] = len(info["sections"])
    benchmark.extra_info["snapshot_kilobytes"] = round(len(blob) / 1024, 2)
    benchmark.extra_info["restore_vs_reexecute_speedup"] = round(speedup, 2)


def test_checkpointed_run_overhead(benchmark, tmp_path):
    """Per-gate checkpointing: byte-identical output, overhead recorded."""
    cold_seconds, cold = _best_of(
        lambda: repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                          shots=SHOTS, seed=SEED))

    def checkpointed():
        return repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                         shots=SHOTS, seed=SEED, checkpoint_every=1,
                         checkpoint_dir=tmp_path)

    hot = benchmark(checkpointed)
    assert _det(hot) == _det(cold)
    assert hot.extra["checkpoints_written"] >= 1
    # The ok finish discarded the stale-prefix checkpoint.
    assert not [p for p in os.listdir(tmp_path) if p.endswith(".ckpt")]
    overhead = benchmark.stats.stats.min / cold_seconds
    benchmark.extra_info["status"] = hot.status
    benchmark.extra_info["checkpoints_written"] = \
        hot.extra["checkpoints_written"]
    benchmark.extra_info["distinct_outcomes"] = len(hot.counts)
    benchmark.extra_info["checkpoint_overhead_x"] = round(overhead, 2)


def test_checkpoint_resume_latency(benchmark, tmp_path):
    """Restore a mid-circuit checkpoint + execute only the suffix."""
    baseline = _det(repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                              shots=SHOTS, seed=SEED))
    crash_after = WORKLOAD.num_gates - 3

    def crash():
        try:
            repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                      shots=SHOTS, seed=SEED, cancel=_FireAfter(crash_after),
                      checkpoint_every=1, checkpoint_dir=tmp_path)
        except JobCancelledError:
            pass
        assert [p for p in os.listdir(tmp_path) if p.endswith(".ckpt")]
        return (), {}

    box = {}

    def resume():
        box["result"] = repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                                  shots=SHOTS, seed=SEED, checkpoint_every=1,
                                  checkpoint_dir=tmp_path)

    benchmark.pedantic(resume, setup=crash, rounds=5, iterations=1)
    resumed = box["result"]
    assert _det(resumed) == baseline
    assert resumed.extra["resumed_from_checkpoint"] >= 1
    benchmark.extra_info["status"] = resumed.status
    benchmark.extra_info["resumed_from_depth"] = \
        resumed.extra["resumed_from_checkpoint"]
    benchmark.extra_info["circuit_gates"] = SAMPLED.num_gates

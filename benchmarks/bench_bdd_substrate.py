"""Micro-benchmarks of the BDD substrate (the CUDD substitute).

The gate rules spend essentially all their time in the manager's ITE / apply
operations and in cofactoring, so the substrate's throughput determines the
headline numbers of every other benchmark.  These micro-benchmarks track the
cost of the three dominant operation patterns on structured functions of the
size the simulator actually produces.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import BddManager

from conftest import scale_choice

NUM_VARS = scale_choice(24, 48)
NUM_TERMS = scale_choice(40, 120)


def _random_dnf(manager: BddManager, rng: random.Random, num_terms: int):
    """A random DNF over the manager's variables (a structured mid-size BDD)."""
    function = manager.false
    for _ in range(num_terms):
        cube = manager.true
        for var in rng.sample(range(manager.num_vars), 4):
            cube = cube & manager.literal(var, rng.random() < 0.5)
        function = function | cube
    return function


def test_bdd_conjunction(benchmark):
    """AND of two random DNFs."""
    rng = random.Random(3)
    manager = BddManager(NUM_VARS)
    f = _random_dnf(manager, rng, NUM_TERMS)
    g = _random_dnf(manager, rng, NUM_TERMS)

    result = benchmark(lambda: (f & g).count_nodes())
    benchmark.extra_info["num_vars"] = NUM_VARS
    benchmark.extra_info["result_nodes"] = result
    assert result >= 1


def test_bdd_xor_adder_step(benchmark):
    """One symbolic full-adder step (the inner loop of every Table II rule)."""
    rng = random.Random(5)
    manager = BddManager(NUM_VARS)
    a = _random_dnf(manager, rng, NUM_TERMS)
    b = _random_dnf(manager, rng, NUM_TERMS)
    carry = _random_dnf(manager, rng, NUM_TERMS // 2)

    def adder_step():
        total = a ^ b ^ carry
        carry_out = (a & b) | ((a | b) & carry)
        return total.count_nodes() + carry_out.count_nodes()

    result = benchmark(adder_step)
    benchmark.extra_info["result_nodes"] = result
    assert result >= 2


def test_bdd_cofactor(benchmark):
    """Cofactor of a random DNF with respect to one variable."""
    rng = random.Random(7)
    manager = BddManager(NUM_VARS)
    f = _random_dnf(manager, rng, NUM_TERMS)

    result = benchmark(lambda: f.cofactor(NUM_VARS // 2, True).count_nodes())
    benchmark.extra_info["result_nodes"] = result
    assert result >= 1

"""Micro-benchmarks of the BDD substrate (the CUDD substitute).

The gate rules spend essentially all their time in the manager's ITE / apply
operations and in cofactoring, so the substrate's throughput determines the
headline numbers of every other benchmark.  These micro-benchmarks track the
cost of the dominant operation patterns on structured functions of the size
the simulator actually produces, and each records the substrate's computed
table hit rates in ``extra_info`` so the benchmark report shows *why* a
timing moved, not only that it moved.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import BddManager

from conftest import scale_choice

NUM_VARS = scale_choice(24, 48)
NUM_TERMS = scale_choice(40, 120)
DEEP_VARS = scale_choice(900, 2500)


def _random_dnf(manager: BddManager, rng: random.Random, num_terms: int):
    """A random DNF over the manager's variables (a structured mid-size BDD)."""
    function = manager.false
    for _ in range(num_terms):
        cube = manager.true
        for var in rng.sample(range(manager.num_vars), 4):
            cube = cube & manager.literal(var, rng.random() < 0.5)
        function = function | cube
    return function


def _record_substrate(benchmark, manager: BddManager) -> None:
    """Attach the headline substrate counters to the benchmark row."""
    stats = manager.perf_stats()
    for key in ("cache_hit_rate", "cache_and_hit_rate", "cache_or_hit_rate",
                "cache_xor_hit_rate", "cache_ite_hit_rate",
                "cache_restrict_hit_rate", "unique_probes", "peak_live_nodes",
                # Miss counts accumulate only on first-time subproblems, so
                # they are independent of how many rounds the timer ran:
                # the regression gate matches them exactly.
                "cache_misses"):
        benchmark.extra_info[f"substrate_{key}"] = round(stats[key], 6)


def test_bdd_conjunction(benchmark):
    """AND of two random DNFs."""
    rng = random.Random(3)
    manager = BddManager(NUM_VARS)
    f = _random_dnf(manager, rng, NUM_TERMS)
    g = _random_dnf(manager, rng, NUM_TERMS)

    result = benchmark(lambda: (f & g).count_nodes())
    benchmark.extra_info["num_vars"] = NUM_VARS
    benchmark.extra_info["result_nodes"] = result
    _record_substrate(benchmark, manager)
    assert result >= 1


def test_bdd_xor_adder_step(benchmark):
    """One symbolic full-adder step (the inner loop of every Table II rule)."""
    rng = random.Random(5)
    manager = BddManager(NUM_VARS)
    a = _random_dnf(manager, rng, NUM_TERMS)
    b = _random_dnf(manager, rng, NUM_TERMS)
    carry = _random_dnf(manager, rng, NUM_TERMS // 2)

    def adder_step():
        total = a ^ b ^ carry
        carry_out = (a & b) | ((a | b) & carry)
        return total.count_nodes() + carry_out.count_nodes()

    result = benchmark(adder_step)
    benchmark.extra_info["result_nodes"] = result
    _record_substrate(benchmark, manager)
    assert result >= 2


def test_bdd_cofactor(benchmark):
    """Cofactor of a random DNF with respect to one variable."""
    rng = random.Random(7)
    manager = BddManager(NUM_VARS)
    f = _random_dnf(manager, rng, NUM_TERMS)

    result = benchmark(lambda: f.cofactor(NUM_VARS // 2, True).count_nodes())
    benchmark.extra_info["result_nodes"] = result
    _record_substrate(benchmark, manager)
    assert result >= 1


def test_bdd_ite_mux(benchmark):
    """An ITE-heavy multiplexer tree (the shape every Table II handler emits).

    Exercises the standard-triple reduction: most inner ITE calls degenerate
    into shared AND / OR table lookups.
    """
    rng = random.Random(11)
    manager = BddManager(NUM_VARS)
    f = _random_dnf(manager, rng, NUM_TERMS // 2)
    g = _random_dnf(manager, rng, NUM_TERMS // 2)
    selectors = [manager.var(i) for i in range(0, NUM_VARS, 3)]

    def mux_tree():
        current = f
        other = g
        for selector in selectors:
            current, other = selector.ite(current, other), current
        return current.count_nodes()

    result = benchmark(mux_tree)
    benchmark.extra_info["result_nodes"] = result
    _record_substrate(benchmark, manager)
    assert result >= 1


def test_bdd_deep_chain(benchmark):
    """Conjunction / negation over a chain far deeper than the recursion
    limit — exercises the explicit-stack apply used for deep managers."""
    manager = BddManager(DEEP_VARS)
    even = manager.true
    odd = manager.true
    for index in range(DEEP_VARS):
        literal = manager.literal(index, index % 3 != 0)
        if index % 2 == 0:
            even = even & literal
        else:
            odd = odd & literal

    def deep_ops():
        both = even & odd
        flipped = ~both
        return (flipped ^ even).count_nodes()

    result = benchmark(deep_ops)
    benchmark.extra_info["num_vars"] = DEEP_VARS
    benchmark.extra_info["result_nodes"] = result
    _record_substrate(benchmark, manager)
    assert result >= 1

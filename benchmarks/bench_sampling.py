"""Smoke benchmarks for the measurement & sampling subsystem.

Pins the three cost centres of the new subsystem with fixed seeds:

* ``test_bitslice_descent_sampling`` — the exact slice sampler on a
  structured state: 4096 shots must cost a handful of restrict batches,
  not 4096 state walks (the descent's cost scales with *distinct*
  outcomes).
* ``test_statevector_descent_sampling`` — the generic probability-query
  descent on the dense engine (the default path every engine inherits).
* ``test_frontdoor_shots`` — the whole ``repro.run(shots=...)`` pipeline
  including counts re-keying, on the auto-dispatch-sized workload.
* ``test_dynamic_trajectories`` — per-shot trajectory execution of a
  feedback circuit (mid-circuit measure + conditional gate).

Deterministic ``extra_info`` (counts totals, sampler work counters) is
gated exactly by ``scripts/check_bench_regression.py``; the fixed seeds
must not drift.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.engines import ResourceLimits, create_engine, run
from repro.workloads.random_circuits import generate_random_circuit

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)
SHOTS = 4096

#: Structured 12-qubit workload: a GHZ backbone with T-rotated tails, so
#: the outcome support is small but non-Clifford.
STRUCTURED = QuantumCircuit(12, name="sampling_structured").h(0)
for _qubit in range(11):
    STRUCTURED.cx(_qubit, _qubit + 1)
STRUCTURED.t(3).h(3).t(7).h(7)
STRUCTURED.measure_all()

#: Dense random workload for the generic descent (8 qubits keeps the
#: dense engine's per-prefix queries visible but bounded).
RANDOM = generate_random_circuit(8, seed=2021)
RANDOM.measure_all()

#: Feedback circuit: H; measure; conditional X; terminal measure.
FEEDBACK = QuantumCircuit(2, name="sampling_feedback")
FEEDBACK.h(0).measure_mid(0, 0)
FEEDBACK.add(GateKind.X, [1], condition=1)
FEEDBACK.measure(1, 1)


def test_bitslice_descent_sampling(benchmark):
    """Exact slice-restriction sampling on the bit-sliced engine."""
    engine = create_engine("bitslice")
    engine.run(STRUCTURED)

    def sample():
        return engine.sample(SHOTS, rng=np.random.default_rng(7))

    counts = benchmark(sample)
    assert sum(counts.values()) == SHOTS
    stats = engine.statistics()
    benchmark.extra_info["distinct_outcomes"] = len(counts)
    benchmark.extra_info["restrict_batches"] = int(
        stats["sampler_restrict_batches"])
    benchmark.extra_info["mass_evaluations"] = int(
        stats["sampler_mass_evaluations"])


def test_statevector_descent_sampling(benchmark):
    """Generic probability-query descent on the dense engine."""
    engine = create_engine("statevector")
    engine.run(RANDOM)

    def sample():
        return engine.sample(SHOTS, rng=np.random.default_rng(7))

    counts = benchmark(sample)
    assert sum(counts.values()) == SHOTS
    benchmark.extra_info["distinct_outcomes"] = len(counts)


def test_frontdoor_shots(benchmark):
    """The full ``repro.run(shots=...)`` pipeline with counts re-keying."""

    def front_door():
        return run(STRUCTURED, engine="bitslice", limits=LIMITS,
                   shots=SHOTS, seed=11)

    result = benchmark(front_door)
    assert result.succeeded
    assert sum(result.counts.values()) == SHOTS
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["distinct_outcomes"] = len(result.counts)
    benchmark.extra_info["counts_checksum"] = sorted(result.counts.items())[0][1]


def test_dynamic_trajectories(benchmark):
    """Per-shot trajectory re-execution of a classical-feedback circuit."""
    trajectory_shots = 64

    def trajectories():
        return run(FEEDBACK, engine="bitslice", limits=LIMITS,
                   shots=trajectory_shots, seed=5)

    result = benchmark(trajectories)
    assert result.succeeded
    assert sum(result.counts.values()) == trajectory_shots
    assert set(result.counts) <= {0b00, 0b11}
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["branches"] = len(result.counts)

"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three knobs of the bit-sliced engine are ablated:

* **Initial integer width** — the original tool starts at r = 32 bits; the
  reproduction defaults to 2 and widens on demand.  The ablation quantifies
  the cost of a large fixed width versus dynamic widening.
* **Automatic width shrinking** — after every gate the engine drops redundant
  sign slices; turning this off shows how much of the win comes from keeping
  r minimal.
* **Measurement strategy** — the paper argues that measuring all qubits of
  interest jointly (one hyper-function query) is preferable to measuring them
  one at a time with intermediate renormalisation; the ablation benchmarks
  both strategies on the same state.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import BitSliceSimulator
from repro.workloads.random_circuits import generate_random_circuit
from repro.workloads.algorithms import ghz_circuit

from conftest import scale_choice

NUM_QUBITS = scale_choice(12, 24)
SEED = 11


@pytest.mark.parametrize("initial_bits", (2, 8, 32))
def test_ablation_initial_width(benchmark, initial_bits):
    """Cost of a fixed wide integer width (the paper starts at r = 32).

    Width shrinking is disabled here, otherwise the engine immediately drops
    the redundant sign slices and the initial width becomes irrelevant (that
    interaction is measured by the auto-shrink ablation below).
    """
    circuit = generate_random_circuit(NUM_QUBITS, seed=SEED)

    def run():
        simulator = BitSliceSimulator(circuit.num_qubits, initial_bits=initial_bits,
                                      auto_shrink=False)
        simulator.run(circuit)
        return simulator.state.r

    final_r = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["initial_bits"] = initial_bits
    benchmark.extra_info["final_bits"] = final_r
    assert final_r >= 2


@pytest.mark.parametrize("auto_shrink", (True, False))
def test_ablation_auto_shrink(benchmark, auto_shrink):
    """Effect of dropping redundant sign slices after every gate."""
    circuit = generate_random_circuit(NUM_QUBITS, seed=SEED)

    def run():
        simulator = BitSliceSimulator(circuit.num_qubits, auto_shrink=auto_shrink)
        simulator.run(circuit)
        return simulator.state.r, simulator.state.num_nodes()

    final_r, nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["auto_shrink"] = auto_shrink
    benchmark.extra_info["final_bits"] = final_r
    benchmark.extra_info["nodes"] = nodes
    assert final_r >= 2


@pytest.mark.parametrize("strategy", ("joint", "sequential"))
def test_ablation_measurement_strategy(benchmark, strategy):
    """Joint outcome query versus sequential collapse (paper Section III-E)."""
    circuit = ghz_circuit(NUM_QUBITS)
    qubits = list(range(min(8, NUM_QUBITS)))

    def run_joint():
        simulator = BitSliceSimulator.simulate(circuit)
        return simulator.probability_of_outcome(qubits, [0] * len(qubits))

    def run_sequential():
        simulator = BitSliceSimulator.simulate(circuit)
        probability = 1.0
        for qubit in qubits:
            p_zero = simulator.probability_of_qubit(qubit, 0)
            if p_zero <= 0.0:
                return 0.0
            probability *= p_zero
            simulator.measure_qubit(qubit, forced_outcome=0)
        return probability

    target = run_joint if strategy == "joint" else run_sequential
    probability = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["probability"] = probability
    assert probability == pytest.approx(0.5, abs=1e-9)

"""Smoke benchmarks for cross-run amortisation (result + prefix caching).

Two guarantees are gated here, with in-benchmark assertions so CI fails
loudly if amortisation ever stops paying:

* ``test_result_cache_warm_hit`` — serving a memoised ``repro.run()``
  result must be at least **5x** faster than the cold run that populated
  it (a hit is a lock + LRU probe + deep copy; no engine is built).
* ``test_prefix_resume_append_gate`` — the canonical incremental
  workload: re-running a circuit with one appended gate against a
  retained session must be at least **1.5x** faster than replaying the
  whole circuit from ``|0>`` (the resume forks the retained 4r slices
  and executes a single gate plus the end-of-run query).

Only round-count-independent quantities go into ``extra_info`` as
integers (the regression gate pins those exactly): the resumed depth and
the sampled-outcome structure.  The measured speedups are recorded as
floats — informational, machine-dependent.
"""

from __future__ import annotations

import time

import repro
from repro import QuantumCircuit, ResultCache, SessionPool
from repro.engines import ResourceLimits

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)
SHOTS = 1024
SEED = 17

#: Structured 10-qubit workload: GHZ backbone with non-Clifford tails —
#: big enough that a cold run does real BDD work, small enough for CI.
WORKLOAD = QuantumCircuit(10, name="cache_workload").h(0)
for _qubit in range(9):
    WORKLOAD.cx(_qubit, _qubit + 1)
WORKLOAD.t(2).h(2).t(5).h(5).t(8)
SAMPLED = WORKLOAD.copy(name="cache_sampled").measure_all()


def _best_of(callable_, repeats=3):
    """Best-of-N wall-clock seconds of one call (jitter-resistant cold
    reference for the speedup assertions)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_result_cache_warm_hit(benchmark):
    """Warm ``ResultCache`` hit vs the cold run that populated it."""
    cache = ResultCache()
    cold_seconds, cold = _best_of(
        lambda: repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                          shots=SHOTS, seed=SEED))
    repro.run(SAMPLED, engine="bitslice", limits=LIMITS, shots=SHOTS,
              seed=SEED, cache=cache)

    def warm_hit():
        return repro.run(SAMPLED, engine="bitslice", limits=LIMITS,
                         shots=SHOTS, seed=SEED, cache=cache)

    hit = benchmark(warm_hit)
    assert hit.extra.get("cache_hit") == 1
    assert hit.counts == cold.counts
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm hit only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.6f}s vs {cold_seconds:.6f}s)")
    benchmark.extra_info["status"] = hit.status
    benchmark.extra_info["distinct_outcomes"] = len(hit.counts)
    benchmark.extra_info["cache_entries"] = len(cache)
    benchmark.extra_info["warm_hit_speedup"] = round(speedup, 2)


def test_prefix_resume_append_gate(benchmark):
    """Append-one-gate re-run: prefix resume vs full cold replay."""
    pool = SessionPool()
    repro.run(WORKLOAD, engine="bitslice", limits=LIMITS, sessions=pool)
    extended = WORKLOAD.copy(name="cache_extended").t(0)
    cold_seconds, cold = _best_of(
        lambda: repro.run(extended, engine="bitslice", limits=LIMITS))

    def resume():
        return repro.run(extended, engine="bitslice", limits=LIMITS,
                         sessions=pool)

    resumed = benchmark(resume)
    # Round 1 resumes from the deposited base prefix; every later round
    # matches the full extended sequence the previous round deposited.
    assert resumed.extra.get("resumed_from_depth", 0) >= WORKLOAD.num_gates
    assert resumed.final_probability == cold.final_probability
    assert resumed.peak_memory_nodes == cold.peak_memory_nodes
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds
    assert speedup >= 1.5, (
        f"prefix resume only {speedup:.2f}x faster than cold replay "
        f"({warm_seconds:.6f}s vs {cold_seconds:.6f}s)")
    benchmark.extra_info["status"] = resumed.status
    benchmark.extra_info["peak_memory_nodes"] = resumed.peak_memory_nodes
    benchmark.extra_info["prefix_resume_speedup"] = round(speedup, 2)

"""Comparator simulators.

Three baselines accompany the bit-sliced BDD engine:

* :class:`~repro.baselines.statevector.StatevectorSimulator` — a dense numpy
  state-vector simulator.  It is the floating-point oracle used by the test
  suite and the stand-in for the "array-based" simulator class the paper's
  introduction discusses.
* :class:`~repro.baselines.qmdd.QmddSimulator` — an edge-weighted decision
  diagram simulator in the style of QMDD / DDSIM (the paper's main
  comparison point), including the floating-point weight normalisation and
  tolerance-based node merging that cause the precision-loss failures the
  paper reports.
* :class:`~repro.baselines.stabilizer.StabilizerSimulator` — the
  Aaronson–Gottesman CHP tableau simulator, used in the Table V discussion of
  stabilizer-only circuits.
"""

from repro.baselines.statevector import StatevectorSimulator
from repro.baselines.qmdd import QmddSimulator
from repro.baselines.stabilizer import StabilizerSimulator

__all__ = [
    "StatevectorSimulator",
    "QmddSimulator",
    "StabilizerSimulator",
]

"""QMDD-style edge-weighted decision diagram simulator (DDSIM stand-in).

The paper's main comparison point is DDSIM (Zulehner/Wille), which represents
state vectors and gate matrices as decision diagrams whose edges carry
floating-point complex weights.  DDSIM itself is a C++ artefact; this module
reimplements the same data structure and algorithms in Python so that the
qualitative comparison of the paper — speed on shallow circuits, memory
blow-up on entangling RevLib variants, and *numerical error accumulation* on
deep superposition circuits — is exercised by the same mechanisms:

* vector nodes have two outgoing weighted edges, matrix nodes have four;
* edge weights are normalised (largest-magnitude child weight becomes 1) and
  interned in a complex table with a configurable tolerance, which is exactly
  where precision loss creeps in;
* gates are applied by building the gate's matrix DD and running the
  recursive matrix-vector multiplication with an operation cache;
* after every gate the squared norm of the state is checked; when it drifts
  from 1 beyond ``error_threshold`` the simulator raises
  :class:`~repro.exceptions.NumericalError`, reproducing the "error" column
  of the paper's Tables III and V.

Qubit 0 is the most significant bit of a basis index, like everywhere else in
the repository.
"""

from __future__ import annotations

import cmath
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, gate_matrix
from repro.exceptions import (
    NumericalError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)

#: Sentinel node id of the terminal node.
_TERMINAL = 0


@dataclass(frozen=True)
class Edge:
    """A weighted edge: complex weight times the function of a node."""

    weight: complex
    node: int

    def is_zero(self) -> bool:
        """True for any edge whose weight is zero (the zero function)."""
        return self.weight == 0


#: The canonical zero edge.
_ZERO_EDGE = Edge(0j, _TERMINAL)


class QmddSimulator:
    """Decision-diagram simulation with complex edge weights.

    Parameters
    ----------
    num_qubits:
        Register size.
    initial_state:
        Basis state to start in.
    tolerance:
        Complex-number interning tolerance.  Two weights closer than this are
        considered equal, which keeps diagrams small but loses precision —
        the trade-off the paper criticises.
    error_threshold:
        Maximum tolerated drift of the state norm from 1 before a
        :class:`NumericalError` is raised (the paper's "error" outcome).
    max_nodes:
        Optional cap on live vector nodes (the paper's MO limit).
    max_seconds:
        Optional wall-clock budget checked between gates (the paper's TO).
    """

    def __init__(self, num_qubits: int, initial_state: int = 0,
                 tolerance: float = 1e-12, error_threshold: float = 1e-6,
                 max_nodes: Optional[int] = None, max_seconds: Optional[float] = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.tolerance = tolerance
        self.error_threshold = error_threshold
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self._start_time = time.perf_counter()
        self.gates_applied = 0

        # Vector node store: parallel lists (level, low_edge, high_edge).
        self._vec_level: List[int] = [-1]
        self._vec_edges: List[Tuple[Edge, Edge]] = [(Edge(0, 0), Edge(0, 0))]
        self._vec_unique: Dict[Tuple, int] = {}
        # Matrix node store for gate DDs (rebuilt per gate, kept small).
        self._mat_level: List[int] = [-1]
        self._mat_edges: List[Tuple[Edge, Edge, Edge, Edge]] = [
            (Edge(0, 0),) * 4]
        self._mat_unique: Dict[Tuple, int] = {}
        # Operation caches.
        self._mult_cache: Dict[Tuple, Edge] = {}
        self._add_cache: Dict[Tuple, Edge] = {}
        self.peak_nodes = 1

        self._root = self._basis_edge(initial_state)

    # ------------------------------------------------------------------ #
    # complex interning (the precision-loss mechanism)
    # ------------------------------------------------------------------ #
    def _intern(self, value: complex) -> complex:
        """Snap a complex weight onto the tolerance grid.

        DDSIM keeps a table of distinct complex numbers and reuses an
        existing entry when a new value is within tolerance; rounding to a
        grid has the same canonicalising effect and the same rounding error.
        """
        if value == 0:
            return 0j
        if self.tolerance <= 0:
            return value
        grid = self.tolerance
        real = round(value.real / grid) * grid
        imag = round(value.imag / grid) * grid
        return complex(real, imag)

    def _close(self, left: complex, right: complex) -> bool:
        return abs(left - right) <= self.tolerance

    # ------------------------------------------------------------------ #
    # vector node construction
    # ------------------------------------------------------------------ #
    def _vec_node(self, level: int, low: Edge, high: Edge) -> Edge:
        """Create (or reuse) a normalised vector node and return the edge
        pointing at it (carrying the normalisation factor)."""
        if low.is_zero():
            low = _ZERO_EDGE
        if high.is_zero():
            high = _ZERO_EDGE
        if low.is_zero() and high.is_zero():
            return _ZERO_EDGE
        if low == high:
            # Redundant node: both branches carry the identical function.
            return low
        # Normalise: the larger-magnitude child weight becomes 1.
        magnitude_low = abs(low.weight)
        magnitude_high = abs(high.weight)
        norm = low.weight if magnitude_low >= magnitude_high else high.weight
        low_weight = self._intern(low.weight / norm)
        high_weight = self._intern(high.weight / norm)
        key = (level, low_weight, low.node, high_weight, high.node)
        node = self._vec_unique.get(key)
        if node is None:
            node = len(self._vec_level)
            self._vec_level.append(level)
            self._vec_edges.append((Edge(low_weight, low.node), Edge(high_weight, high.node)))
            self._vec_unique[key] = node
            if len(self._vec_level) > self.peak_nodes:
                self.peak_nodes = len(self._vec_level)
        return Edge(norm, node)

    def _basis_edge(self, basis_index: int) -> Edge:
        """The vector DD of the computational basis state ``|basis_index>``."""
        edge = Edge(1.0 + 0j, _TERMINAL)
        for level in range(self.num_qubits - 1, -1, -1):
            bit = (basis_index >> (self.num_qubits - 1 - level)) & 1
            zero = Edge(0j, _TERMINAL)
            if bit:
                edge = self._vec_node(level, zero, edge)
            else:
                edge = self._vec_node(level, edge, zero)
        return edge

    def _vec_children(self, edge: Edge, level: int) -> Tuple[Edge, Edge]:
        """Children of ``edge`` at ``level``, inserting implicit redundant
        nodes when the diagram skips the level."""
        node = edge.node
        if node == _TERMINAL or self._vec_level[node] != level:
            return edge, edge
        low, high = self._vec_edges[node]
        return (Edge(edge.weight * low.weight, low.node),
                Edge(edge.weight * high.weight, high.node))

    # ------------------------------------------------------------------ #
    # matrix (gate) DD construction
    # ------------------------------------------------------------------ #
    def _mat_node(self, level: int, entries: Tuple[Edge, Edge, Edge, Edge]) -> Edge:
        entries = tuple(entry if not entry.is_zero() else _ZERO_EDGE for entry in entries)
        if all(entry.is_zero() for entry in entries):
            return _ZERO_EDGE
        norm = None
        for entry in entries:
            if not entry.is_zero():
                if norm is None or abs(entry.weight) > abs(norm):
                    norm = entry.weight
        normalised = tuple(Edge(self._intern(entry.weight / norm), entry.node)
                           if not entry.is_zero() else _ZERO_EDGE
                           for entry in entries)
        key = (level,) + tuple((entry.weight, entry.node) for entry in normalised)
        node = self._mat_unique.get(key)
        if node is None:
            node = len(self._mat_level)
            self._mat_level.append(level)
            self._mat_edges.append(normalised)
            self._mat_unique[key] = node
        return Edge(norm, node)

    def _gate_dd(self, matrix, target: int, controls: Sequence[int]) -> Edge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        Levels not involved in the gate are skipped entirely; the implicit
        convention of :meth:`_mat_children` treats a skipped level as the
        identity, so the construction only creates nodes for the target and
        its controls.  Controls are handled on both sides of the target: for
        a control *below* the target the four blocks of the target node are
        built so that the control-0 branch is the identity (diagonal blocks)
        or zero (off-diagonal blocks), matching the standard QMDD gate
        construction.
        """
        one = Edge(1.0 + 0j, _TERMINAL)
        controls_below = sorted((c for c in controls if c > target), reverse=True)
        controls_above = sorted((c for c in controls if c < target), reverse=True)

        # Blocks of the target-level node over the variables below the target.
        blocks: Dict[Tuple[int, int], Edge] = {}
        for i in range(2):
            for j in range(2):
                entry = complex(matrix[i][j])
                blocks[(i, j)] = Edge(entry, _TERMINAL) if entry != 0 else _ZERO_EDGE
        for control in controls_below:
            for i in range(2):
                for j in range(2):
                    block = blocks[(i, j)]
                    if i == j:
                        # control = 0 -> identity block, control = 1 -> gate block.
                        blocks[(i, j)] = self._mat_node(
                            control, (one, _ZERO_EDGE, _ZERO_EDGE, block))
                    else:
                        blocks[(i, j)] = self._mat_node(
                            control, (_ZERO_EDGE, _ZERO_EDGE, _ZERO_EDGE, block))

        result = self._mat_node(target, (blocks[(0, 0)], blocks[(0, 1)],
                                         blocks[(1, 0)], blocks[(1, 1)]))
        for control in controls_above:
            result = self._mat_node(control, (one, _ZERO_EDGE, _ZERO_EDGE, result))
        return result

    def _mat_children(self, edge: Edge, level: int) -> Tuple[Edge, Edge, Edge, Edge]:
        node = edge.node
        if node == _TERMINAL or self._mat_level[node] != level:
            zero = Edge(0j, _TERMINAL)
            return edge, zero, zero, edge
        entries = self._mat_edges[node]
        return tuple(Edge(edge.weight * entry.weight, entry.node) for entry in entries)

    # ------------------------------------------------------------------ #
    # arithmetic on vector DDs
    # ------------------------------------------------------------------ #
    def _add(self, left: Edge, right: Edge, level: int) -> Edge:
        if left.is_zero():
            return right
        if right.is_zero():
            return left
        if level == self.num_qubits:
            return Edge(self._intern(left.weight + right.weight), _TERMINAL)
        key = (left.weight, left.node, right.weight, right.node, level)
        cached = self._add_cache.get(key)
        if cached is not None:
            return cached
        left_low, left_high = self._vec_children(left, level)
        right_low, right_high = self._vec_children(right, level)
        result = self._vec_node(level,
                                self._add(left_low, right_low, level + 1),
                                self._add(left_high, right_high, level + 1))
        self._add_cache[key] = result
        return result

    def _multiply(self, matrix: Edge, vector: Edge, level: int) -> Edge:
        if matrix.is_zero() or vector.is_zero():
            return Edge(0j, _TERMINAL)
        if level == self.num_qubits:
            return Edge(self._intern(matrix.weight * vector.weight), _TERMINAL)
        key = (matrix.weight, matrix.node, vector.weight, vector.node, level)
        cached = self._mult_cache.get(key)
        if cached is not None:
            return cached
        m00, m01, m10, m11 = self._mat_children(matrix, level)
        v0, v1 = self._vec_children(vector, level)
        new_low = self._add(self._multiply(m00, v0, level + 1),
                            self._multiply(m01, v1, level + 1), level + 1)
        new_high = self._add(self._multiply(m10, v0, level + 1),
                             self._multiply(m11, v1, level + 1), level + 1)
        result = self._vec_node(level, new_low, new_high)
        self._mult_cache[key] = result
        return result

    # ------------------------------------------------------------------ #
    # gate application
    # ------------------------------------------------------------------ #
    def _decompose(self, gate: Gate) -> List[Gate]:
        """Rewrite SWAP-style gates into CX/CCX, which the matrix-DD builder
        handles natively."""
        if gate.kind is GateKind.SWAP:
            a, b = gate.targets
            return [Gate(GateKind.CX, (b,), (a,)),
                    Gate(GateKind.CX, (a,), (b,)),
                    Gate(GateKind.CX, (b,), (a,))]
        if gate.kind is GateKind.CSWAP:
            a, b = gate.targets
            controls = gate.controls
            return [Gate(GateKind.CX, (a,), (b,)),
                    Gate(GateKind.CCX, (b,), controls + (a,)),
                    Gate(GateKind.CX, (a,), (b,))]
        return [gate]

    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate to the state DD."""
        if gate.kind is GateKind.MEASURE:
            return
        for primitive in self._decompose(gate):
            matrix = gate_matrix(primitive.kind)
            gate_dd = self._gate_dd(matrix, primitive.targets[0], primitive.controls)
            self._mult_cache.clear()
            self._add_cache.clear()
            self._root = self._multiply(gate_dd, self._root, 0)
        self.gates_applied += 1
        self._check_health()

    def _check_health(self) -> None:
        if self.max_seconds is not None:
            elapsed = time.perf_counter() - self._start_time
            if elapsed > self.max_seconds:
                raise SimulationTimeout(elapsed, self.max_seconds)
        if self.max_nodes is not None and len(self._vec_level) > self.max_nodes:
            raise SimulationMemoryExceeded(len(self._vec_level), self.max_nodes)
        norm = self.norm_squared()
        if abs(norm - 1.0) > self.error_threshold:
            raise NumericalError(
                f"state norm drifted to {norm:.12f} (threshold "
                f"{self.error_threshold}); probabilities no longer sum to 1")

    def run(self, circuit: QuantumCircuit) -> "QmddSimulator":
        """Apply every gate of ``circuit``; returns ``self``."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and simulator qubit counts differ")
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    @classmethod
    def simulate(cls, circuit: QuantumCircuit, **kwargs) -> "QmddSimulator":
        """Construct a simulator for ``circuit`` and run it."""
        simulator = cls(circuit.num_qubits, **kwargs)
        return simulator.run(circuit)

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of ``|basis_index>``."""
        edge = self._root
        weight = edge.weight
        node = edge.node
        for level in range(self.num_qubits):
            bit = (basis_index >> (self.num_qubits - 1 - level)) & 1
            if node == _TERMINAL or self._vec_level[node] != level:
                continue
            child = self._vec_edges[node][bit]
            weight *= child.weight
            node = child.node
            if weight == 0:
                return 0j
        return weight

    def to_numpy(self):
        """Dense state vector (small qubit counts only)."""
        import numpy as np

        return np.array([self.amplitude(i) for i in range(1 << self.num_qubits)],
                        dtype=complex)

    def _norm_squared_edge(self, edge: Edge, level: int,
                           cache: Dict[Tuple[int, int], float]) -> float:
        if edge.is_zero():
            return 0.0
        if level == self.num_qubits:
            return abs(edge.weight) ** 2
        node = edge.node
        if node == _TERMINAL or self._vec_level[node] != level:
            return 2.0 * self._norm_squared_edge(edge, level + 1, cache)
        key = (node, level)
        if key in cache:
            return abs(edge.weight) ** 2 * cache[key]
        low, high = self._vec_edges[node]
        value = (self._norm_squared_edge(low, level + 1, cache)
                 + self._norm_squared_edge(high, level + 1, cache))
        cache[key] = value
        return abs(edge.weight) ** 2 * value

    def norm_squared(self) -> float:
        """Sum of all outcome probabilities (should be 1)."""
        return self._norm_squared_edge(self._root, 0, {})

    def _restrict(self, edge: Edge, qubit: int, value: int,
                  cache: Optional[Dict[Tuple[int, int], Edge]] = None,
                  level: int = 0) -> Edge:
        """Zero out the branch of ``qubit`` that is not ``value``.

        Restriction is linear, so results are memoised per (node, level) for
        a unit incoming weight and rescaled at each call site.
        """
        if edge.is_zero() or level == self.num_qubits:
            return edge
        if cache is None:
            cache = {}
        key = (edge.node, level)
        cached = cache.get(key)
        if cached is not None:
            return Edge(edge.weight * cached.weight, cached.node)
        unit = Edge(1.0 + 0j, edge.node)
        low, high = self._vec_children(unit, level)
        if level == qubit:
            result = self._vec_node(level, low if value == 0 else _ZERO_EDGE,
                                    high if value == 1 else _ZERO_EDGE)
        elif level > qubit:
            # The measured qubit was skipped by the diagram above this node;
            # nothing below depends on it, so the function is unchanged.
            result = unit
        else:
            result = self._vec_node(level,
                                    self._restrict(low, qubit, value, cache, level + 1),
                                    self._restrict(high, qubit, value, cache, level + 1))
        cache[key] = result
        return Edge(edge.weight * result.weight, result.node)

    def probability_of_qubit(self, qubit: int, value: int = 0) -> float:
        """``Pr[qubit == value]`` without collapsing."""
        restricted = self._restrict(self._root, qubit, value)
        return self._norm_squared_edge(restricted, 0, {})

    def probability_of_outcome(self, qubits: Sequence[int], outcome: Sequence[int]) -> float:
        """Joint probability of ``outcome`` on ``qubits``."""
        edge = self._root
        for qubit, value in zip(qubits, outcome):
            edge = self._restrict(edge, qubit, int(value))
        return self._norm_squared_edge(edge, 0, {})

    def measurement_distribution(self, qubits: Optional[Sequence[int]] = None,
                                 cutoff: float = 1e-15) -> Dict[int, float]:
        """Joint outcome distribution over ``qubits`` (default all)."""
        if qubits is None:
            qubits = list(range(self.num_qubits))
        qubits = list(qubits)
        distribution: Dict[int, float] = {}

        def descend(position: int, edge: Edge, outcome: int) -> None:
            probability = self._norm_squared_edge(edge, 0, {})
            if probability <= cutoff:
                return
            if position == len(qubits):
                distribution[outcome] = probability
                return
            qubit = qubits[position]
            descend(position + 1, self._restrict(edge, qubit, 0), outcome << 1)
            descend(position + 1, self._restrict(edge, qubit, 1), (outcome << 1) | 1)

        descend(0, self._root, 0)
        return distribution

    def measure_qubit(self, qubit: int, rng=None, forced_outcome: Optional[int] = None) -> int:
        """Measure one qubit, collapse and renormalise the diagram."""
        import numpy as np

        probability_zero = self.probability_of_qubit(qubit, 0)
        if forced_outcome is None:
            rng = rng or np.random.default_rng()
            outcome = 0 if rng.random() < probability_zero else 1
        else:
            outcome = int(forced_outcome)
        probability = probability_zero if outcome == 0 else 1.0 - probability_zero
        if probability <= 0.0:
            raise ValueError("attempted to collapse onto a zero-probability outcome")
        restricted = self._restrict(self._root, qubit, outcome)
        self._root = Edge(restricted.weight / math.sqrt(probability), restricted.node)
        return outcome

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def num_nodes(self) -> int:
        """Number of allocated vector DD nodes (unique-table size; the MO
        metric, which also accounts for intermediate results like DDSIM's
        node pool does)."""
        return len(self._vec_level)

    def num_reachable_nodes(self) -> int:
        """Number of nodes reachable from the current state root (the size of
        the live diagram itself)."""
        seen = set()
        stack = [self._root.node]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node != _TERMINAL:
                low, high = self._vec_edges[node]
                stack.append(low.node)
                stack.append(high.node)
        return len(seen)

    def statistics(self) -> Dict[str, float]:
        """Run statistics for the harness."""
        return {
            "num_qubits": self.num_qubits,
            "dd_nodes": self.num_nodes(),
            "peak_dd_nodes": self.peak_nodes,
            "gates_applied": self.gates_applied,
            "norm": self.norm_squared(),
            "elapsed_seconds": time.perf_counter() - self._start_time,
        }

    def __repr__(self) -> str:
        return (f"QmddSimulator(num_qubits={self.num_qubits}, "
                f"nodes={self.num_nodes()}, gates_applied={self.gates_applied})")

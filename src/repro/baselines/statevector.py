"""Dense numpy state-vector simulator.

This is the "array-based" simulator class discussed in the paper's
introduction (Quipper / LIQUi|> / QX / ProjectQ style): the full
``2**n``-entry complex vector is held in memory and every gate is applied by
in-place slicing.  In the reproduction it serves two roles:

* the floating-point oracle for the test-suite (every other engine is
  validated against it on small circuits), and
* the baseline showing the memory wall the paper motivates (it cannot go far
  beyond ~20 qubits on a laptop, which is exactly the point of the DD-based
  approaches).

Qubit 0 is the most significant bit of the basis index, matching the paper's
worked example and every other engine in the repository.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, gate_matrix


class StatevectorSimulator:
    """Dense state-vector simulation of the supported gate set.

    Parameters
    ----------
    num_qubits:
        Register size.  Memory use is ``16 * 2**num_qubits`` bytes; the
        constructor refuses more than ``max_qubits`` to fail fast instead of
        swapping the machine to death.
    initial_state:
        Basis-state index to start from (default all zeros).
    max_qubits:
        Safety limit for the dense allocation (default 26 ~= 1 GiB).
    """

    def __init__(self, num_qubits: int, initial_state: int = 0, max_qubits: int = 26):
        if num_qubits > max_qubits:
            raise MemoryError(
                f"dense statevector with {num_qubits} qubits exceeds the "
                f"configured limit of {max_qubits} qubits")
        self.num_qubits = num_qubits
        self._state = np.zeros(1 << num_qubits, dtype=complex)
        self._state[initial_state] = 1.0

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> np.ndarray:
        """The current state vector (a copy)."""
        return self._state.copy()

    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of ``|basis_index>``."""
        return complex(self._state[basis_index])

    def probabilities(self) -> np.ndarray:
        """``|amplitude|**2`` for every basis state."""
        return np.abs(self._state) ** 2

    def norm(self) -> float:
        """The 2-norm of the state (should stay 1 up to rounding)."""
        return float(np.linalg.norm(self._state))

    # ------------------------------------------------------------------ #
    # gate application
    # ------------------------------------------------------------------ #
    def _axis_of(self, qubit: int) -> int:
        """Tensor axis of ``qubit`` when the state is reshaped to (2,)*n."""
        return qubit  # qubit 0 is the most significant bit == first axis

    def apply_gate(self, gate: Gate) -> None:
        """Apply one :class:`Gate` in place."""
        if gate.kind is GateKind.MEASURE:
            return
        if gate.kind in (GateKind.SWAP, GateKind.CSWAP):
            self._apply_swap(gate)
            return
        matrix = gate_matrix(gate.kind)
        self._apply_controlled_single(matrix, gate.controls, gate.targets[0])

    def _apply_controlled_single(self, matrix: np.ndarray,
                                 controls: Tuple[int, ...], target: int) -> None:
        n = self.num_qubits
        tensor = self._state.reshape((2,) * n)
        # Build an index selecting the subspace where all controls are 1.
        selector: List[object] = [slice(None)] * n
        for control in controls:
            selector[self._axis_of(control)] = 1
        sub = tensor[tuple(selector)]
        # Move the target axis (its position among the remaining axes) first.
        remaining_axes = [q for q in range(n) if q not in controls]
        target_position = remaining_axes.index(target)
        moved = np.moveaxis(sub, target_position, 0)
        updated = np.tensordot(matrix, moved, axes=([1], [0]))
        tensor[tuple(selector)] = np.moveaxis(updated, 0, target_position)
        self._state = tensor.reshape(-1)

    def _apply_swap(self, gate: Gate) -> None:
        qubit_a, qubit_b = gate.targets
        n = self.num_qubits
        tensor = self._state.reshape((2,) * n)
        selector: List[object] = [slice(None)] * n
        for control in gate.controls:
            selector[self._axis_of(control)] = 1
        sub = tensor[tuple(selector)]
        remaining_axes = [q for q in range(n) if q not in gate.controls]
        axis_a = remaining_axes.index(qubit_a)
        axis_b = remaining_axes.index(qubit_b)
        tensor[tuple(selector)] = np.swapaxes(sub, axis_a, axis_b)
        self._state = tensor.reshape(-1)

    def run(self, circuit: QuantumCircuit) -> "StatevectorSimulator":
        """Apply every gate of ``circuit`` in order.  Returns ``self``."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and simulator qubit counts differ")
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    @classmethod
    def simulate(cls, circuit: QuantumCircuit, initial_state: int = 0,
                 max_qubits: int = 26) -> "StatevectorSimulator":
        """Construct a simulator for ``circuit`` and run it."""
        simulator = cls(circuit.num_qubits, initial_state=initial_state,
                        max_qubits=max_qubits)
        return simulator.run(circuit)

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def probability_of_qubit(self, qubit: int, value: int = 0) -> float:
        """``Pr[qubit == value]`` without collapsing the state."""
        n = self.num_qubits
        tensor = np.abs(self._state.reshape((2,) * n)) ** 2
        axis = self._axis_of(qubit)
        marginal = tensor.sum(axis=tuple(a for a in range(n) if a != axis))
        return float(marginal[value])

    def probability_of_outcome(self, qubits: Sequence[int], outcome: Sequence[int]) -> float:
        """Probability of observing ``outcome`` when measuring ``qubits`` jointly."""
        n = self.num_qubits
        tensor = np.abs(self._state.reshape((2,) * n)) ** 2
        selector: List[object] = [slice(None)] * n
        for qubit, value in zip(qubits, outcome):
            selector[self._axis_of(qubit)] = int(value)
        return float(tensor[tuple(selector)].sum())

    def measurement_distribution(self, qubits: Optional[Sequence[int]] = None) -> Dict[int, float]:
        """Joint outcome distribution over ``qubits`` (default: all qubits).

        Keys are outcome integers with the first listed qubit as the most
        significant bit; entries below 1e-15 are omitted.
        """
        if qubits is None:
            qubits = list(range(self.num_qubits))
        qubits = list(qubits)
        distribution: Dict[int, float] = {}
        n = self.num_qubits
        probabilities = np.abs(self._state.reshape((2,) * n)) ** 2
        other_axes = tuple(q for q in range(n) if q not in qubits)
        marginal = probabilities.sum(axis=other_axes) if other_axes else probabilities
        # ``marginal`` axes follow ascending qubit index; build outcomes by
        # reading bits in the order requested by the caller.
        ascending = sorted(qubits)
        for flat_index, probability in enumerate(marginal.reshape(-1)):
            if probability < 1e-15:
                continue
            bits = {q: (flat_index >> (len(ascending) - 1 - pos)) & 1
                    for pos, q in enumerate(ascending)}
            outcome = 0
            for position, qubit in enumerate(qubits):
                outcome |= bits[qubit] << (len(qubits) - 1 - position)
            distribution[outcome] = distribution.get(outcome, 0.0) + float(probability)
        return distribution

    def measure_qubit(self, qubit: int, rng: Optional[np.random.Generator] = None,
                      forced_outcome: Optional[int] = None) -> int:
        """Measure ``qubit``, collapse and renormalise the state, return 0/1."""
        probability_zero = self.probability_of_qubit(qubit, 0)
        if forced_outcome is None:
            rng = rng or np.random.default_rng()
            outcome = 0 if rng.random() < probability_zero else 1
        else:
            outcome = int(forced_outcome)
        probability = probability_zero if outcome == 0 else 1.0 - probability_zero
        if probability <= 0.0:
            raise ValueError("attempted to collapse onto a zero-probability outcome")
        n = self.num_qubits
        tensor = self._state.reshape((2,) * n)
        selector: List[object] = [slice(None)] * n
        selector[self._axis_of(qubit)] = 1 - outcome
        tensor[tuple(selector)] = 0.0
        self._state = tensor.reshape(-1) / math.sqrt(probability)
        return outcome

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None,
               rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
        """Sample measurement outcomes without collapsing the live state."""
        rng = rng or np.random.default_rng()
        distribution = self.measurement_distribution(qubits)
        outcomes = list(distribution.keys())
        weights = np.array([distribution[o] for o in outcomes], dtype=float)
        weights = weights / weights.sum()
        counts: Dict[int, int] = {}
        for choice in rng.choice(len(outcomes), size=shots, p=weights):
            outcome = outcomes[int(choice)]
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

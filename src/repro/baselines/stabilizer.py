"""CHP-style stabilizer (tableau) simulator.

The paper's Table V discussion points out that its entanglement (GHZ)
benchmark circuits are stabilizer circuits, which the dedicated CHP simulator
of Aaronson and Gottesman ("Improved simulation of stabilizer circuits",
PRA 70, 052328) handles in polynomial time — 6.7 seconds for 10,000 qubits —
while neither DD-based engine is specialised for them.  This module
reimplements that simulator so the reproduction can make the same
three-way comparison.

The tableau holds ``2n + 1`` rows (n destabilizers, n stabilizers, one
scratch row) of ``x`` and ``z`` bit matrices plus a phase column, stored as
numpy boolean arrays.  Native gates are CNOT, H and S; every other supported
Clifford gate is decomposed into those three exactly:

* ``Z = S S``, ``X = H Z H``, ``Y = Z  then  X`` (global phase dropped),
* ``S† = S S S``, ``CZ = H(t) CX H(t)``, ``SWAP`` = three CNOTs,
* ``Rx(pi/2) = S† H S†``, ``Ry(pi/2) = H  after  Z`` (exact, no phase).

Non-Clifford gates (T, Toffoli, Fredkin with controls) raise
:class:`~repro.exceptions.UnsupportedGateError`, which is how the harness
records that CHP cannot run the Bernstein–Vazirani variants with T layers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.exceptions import SimulationTimeout, UnsupportedGateError


class StabilizerSimulator:
    """Aaronson–Gottesman tableau simulation of Clifford circuits."""

    def __init__(self, num_qubits: int, max_seconds: Optional[float] = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.max_seconds = max_seconds
        self._start_time = time.perf_counter()
        self.gates_applied = 0
        size = 2 * num_qubits + 1
        self._x = np.zeros((size, num_qubits), dtype=bool)
        self._z = np.zeros((size, num_qubits), dtype=bool)
        self._r = np.zeros(size, dtype=bool)
        # Destabilizers start as X_i, stabilizers as Z_i.
        for i in range(num_qubits):
            self._x[i, i] = True
            self._z[num_qubits + i, i] = True

    # ------------------------------------------------------------------ #
    # native tableau updates
    # ------------------------------------------------------------------ #
    def _apply_cnot(self, control: int, target: int) -> None:
        x, z, r = self._x, self._z, self._r
        r ^= x[:, control] & z[:, target] & (x[:, target] ^ z[:, control] ^ True)
        x[:, target] ^= x[:, control]
        z[:, control] ^= z[:, target]

    def _apply_h(self, qubit: int) -> None:
        x, z, r = self._x, self._z, self._r
        r ^= x[:, qubit] & z[:, qubit]
        x[:, qubit], z[:, qubit] = z[:, qubit].copy(), x[:, qubit].copy()

    def _apply_s(self, qubit: int) -> None:
        x, z, r = self._x, self._z, self._r
        r ^= x[:, qubit] & z[:, qubit]
        z[:, qubit] ^= x[:, qubit]

    # ------------------------------------------------------------------ #
    # gate dispatch via exact Clifford decompositions
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate; non-Clifford gates raise UnsupportedGateError."""
        kind = gate.kind
        if kind is GateKind.MEASURE:
            return
        if kind is GateKind.CX:
            self._apply_cnot(gate.controls[0], gate.targets[0])
        elif kind is GateKind.H:
            self._apply_h(gate.targets[0])
        elif kind is GateKind.S:
            self._apply_s(gate.targets[0])
        elif kind is GateKind.SDG:
            target = gate.targets[0]
            for _ in range(3):
                self._apply_s(target)
        elif kind is GateKind.Z:
            target = gate.targets[0]
            self._apply_s(target)
            self._apply_s(target)
        elif kind is GateKind.X:
            target = gate.targets[0]
            if gate.controls:
                raise UnsupportedGateError("controlled X beyond CNOT is not Clifford")
            self._apply_h(target)
            self._apply_s(target)
            self._apply_s(target)
            self._apply_h(target)
        elif kind is GateKind.Y:
            target = gate.targets[0]
            # Y = i X Z; the global phase i does not affect the tableau.
            self._apply_s(target)
            self._apply_s(target)
            self._apply_h(target)
            self._apply_s(target)
            self._apply_s(target)
            self._apply_h(target)
        elif kind is GateKind.CZ:
            control, target = gate.controls[0], gate.targets[0]
            self._apply_h(target)
            self._apply_cnot(control, target)
            self._apply_h(target)
        elif kind is GateKind.SWAP:
            a, b = gate.targets
            self._apply_cnot(a, b)
            self._apply_cnot(b, a)
            self._apply_cnot(a, b)
        elif kind is GateKind.RX_PI_2:
            target = gate.targets[0]
            # Rx(pi/2) = S† H S† exactly.
            for _ in range(3):
                self._apply_s(target)
            self._apply_h(target)
            for _ in range(3):
                self._apply_s(target)
        elif kind is GateKind.RY_PI_2:
            target = gate.targets[0]
            # Ry(pi/2) = H Z (apply Z first, then H) exactly.
            self._apply_s(target)
            self._apply_s(target)
            self._apply_h(target)
        elif kind is GateKind.CCX and len(gate.controls) == 1:
            self._apply_cnot(gate.controls[0], gate.targets[0])
        elif kind is GateKind.CSWAP and not gate.controls:
            a, b = gate.targets
            self._apply_cnot(a, b)
            self._apply_cnot(b, a)
            self._apply_cnot(a, b)
        else:
            raise UnsupportedGateError(
                f"gate {kind.value} (controls={len(gate.controls)}) is not a "
                f"Clifford gate; the stabilizer simulator cannot apply it")
        self.gates_applied += 1
        if self.max_seconds is not None:
            elapsed = time.perf_counter() - self._start_time
            if elapsed > self.max_seconds:
                raise SimulationTimeout(elapsed, self.max_seconds)

    def run(self, circuit: QuantumCircuit) -> "StabilizerSimulator":
        """Apply every gate of ``circuit``; returns ``self``."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and simulator qubit counts differ")
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    @classmethod
    def simulate(cls, circuit: QuantumCircuit, **kwargs) -> "StabilizerSimulator":
        """Construct a simulator for ``circuit`` and run it."""
        simulator = cls(circuit.num_qubits, **kwargs)
        return simulator.run(circuit)

    # ------------------------------------------------------------------ #
    # measurement (Aaronson-Gottesman algorithm)
    # ------------------------------------------------------------------ #
    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i, tracking the phase exponent mod 4."""
        x, z = self._x, self._z
        # Accumulate the exponent of i (the imaginary unit) contributed by
        # multiplying the Pauli operators column by column.
        x_i, z_i = x[i].astype(np.int8), z[i].astype(np.int8)
        x_h, z_h = x[h].astype(np.int8), z[h].astype(np.int8)
        g = (x_i * z_i * (z_h - x_h)
             + x_i * (1 - z_i) * z_h * (2 * x_h - 1)
             + (1 - x_i) * z_i * x_h * (1 - 2 * z_h))
        total = 2 * int(self._r[h]) + 2 * int(self._r[i]) + int(g.sum())
        self._r[h] = (total % 4) == 2
        x[h] ^= x[i]
        z[h] ^= z[i]

    def probability_of_qubit(self, qubit: int, value: int = 0) -> float:
        """``Pr[qubit == value]`` — always 0, 1 or 0.5 for stabilizer states."""
        n = self.num_qubits
        # A random outcome occurs iff some stabilizer anticommutes with Z_q,
        # i.e. has an X component on the measured qubit.
        if self._x[n:2 * n, qubit].any():
            return 0.5
        # Deterministic outcome: compute it on the scratch row.
        outcome = self._deterministic_outcome(qubit)
        return 1.0 if outcome == value else 0.0

    def _deterministic_outcome(self, qubit: int) -> int:
        n = self.num_qubits
        scratch = 2 * n
        self._x[scratch] = False
        self._z[scratch] = False
        self._r[scratch] = False
        for i in range(n):
            if self._x[i, qubit]:
                self._rowsum(scratch, i + n)
        return int(self._r[scratch])

    def measure_qubit(self, qubit: int, rng=None, forced_outcome: Optional[int] = None) -> int:
        """Measure one qubit, collapsing the tableau; returns 0 or 1."""
        n = self.num_qubits
        x, z, r = self._x, self._z, self._r
        anticommuting = [p for p in range(n, 2 * n) if x[p, qubit]]
        if anticommuting:
            p = anticommuting[0]
            if forced_outcome is None:
                rng = rng or np.random.default_rng()
                outcome = int(rng.integers(0, 2))
            else:
                outcome = int(forced_outcome)
            for i in range(2 * n):
                if i != p and x[i, qubit]:
                    self._rowsum(i, p)
            # The old stabilizer becomes a destabilizer; the new stabilizer
            # is +/- Z_qubit.
            x[p - n] = x[p].copy()
            z[p - n] = z[p].copy()
            r[p - n] = r[p]
            x[p] = False
            z[p] = False
            z[p, qubit] = True
            r[p] = bool(outcome)
            return outcome
        outcome = self._deterministic_outcome(qubit)
        if forced_outcome is not None and int(forced_outcome) != outcome:
            raise ValueError("forced outcome has zero probability")
        return outcome

    def copy(self) -> "StabilizerSimulator":
        """An independent copy of the tableau (used by the non-collapsing
        joint-probability query)."""
        duplicate = StabilizerSimulator(self.num_qubits)
        duplicate._x = self._x.copy()
        duplicate._z = self._z.copy()
        duplicate._r = self._r.copy()
        duplicate.gates_applied = self.gates_applied
        return duplicate

    def probability_of_outcome(self, qubits: Sequence[int],
                               outcome: Sequence[int]) -> float:
        """Joint probability of ``outcome`` on ``qubits`` without collapsing.

        Uses the Aaronson–Gottesman structure of stabilizer states: the
        probability is either 0 or ``2**-r`` where ``r`` is the number of
        measured qubits whose Z operator anticommutes with the (progressively
        collapsed) stabilizer group — i.e. the rank of the X-block restricted
        to the queried qubits.  The computation measures each qubit in turn
        with a forced outcome on a scratch copy of the tableau: every random
        step contributes a factor 1/2, every deterministic step contributes
        1 when it matches the requested bit and kills the outcome otherwise.
        """
        scratch = self.copy()
        probability = 1.0
        n = self.num_qubits
        for qubit, value in zip(qubits, outcome):
            if scratch._x[n:2 * n, qubit].any():
                # Z_qubit anticommutes with a stabilizer: the outcome is
                # uniformly random; collapse onto the requested bit.
                probability *= 0.5
                scratch.measure_qubit(qubit, forced_outcome=int(value))
            elif scratch._deterministic_outcome(qubit) != int(value):
                return 0.0
        return probability

    def measure_all(self, rng=None) -> List[int]:
        """Measure every qubit in order, collapsing as it goes."""
        return [self.measure_qubit(q, rng=rng) for q in range(self.num_qubits)]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, float]:
        """Run statistics for the harness."""
        return {
            "num_qubits": self.num_qubits,
            "gates_applied": self.gates_applied,
            "tableau_bytes": int(self._x.nbytes + self._z.nbytes + self._r.nbytes),
            "elapsed_seconds": time.perf_counter() - self._start_time,
        }

    def __repr__(self) -> str:
        return (f"StabilizerSimulator(num_qubits={self.num_qubits}, "
                f"gates_applied={self.gates_applied})")

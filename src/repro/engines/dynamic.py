"""Dynamic-circuit execution: mid-circuit measurement, reset, feedback.

Engines only know how to apply unitaries, answer probability queries and
collapse single qubits; everything *classical* about a dynamic circuit — the
classical register, ``if(c==v)`` conditions, the measure-then-flip expansion
of ``reset`` — lives here, in one executor shared by
:meth:`repro.engines.base.Engine.run` and the
:class:`~repro.engines.limits.LimitEnforcer`, so every engine executes
dynamic programs with identical semantics and identical RNG consumption.

Terminal measurement *markers* (``circuit.measured_qubits``) are not part of
the gate stream and are never collapsed here: the final state stays intact
for the paper's end-of-run probability query and for exact shot sampling.
Only in-stream :attr:`~repro.circuit.gates.GateKind.MEASURE` /
:attr:`~repro.circuit.gates.GateKind.RESET` instructions collapse.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind


def classical_register_value(bits: Sequence[int]) -> int:
    """Integer value of the classical register (clbit 0 = least-significant
    bit, the OpenQASM ``if(c==v)`` convention)."""
    value = 0
    for index, bit in enumerate(bits):
        if bit:
            value |= 1 << index
    return value


def _require_rng(rng):
    if rng is None:
        import numpy as np

        rng = np.random.default_rng()
    return rng


def execute_program(engine, circuit: QuantumCircuit, rng=None,
                    after_gate: Optional[Callable[[], None]] = None) -> List[int]:
    """Drive ``circuit``'s gate stream on a prepared ``engine``.

    Unitary gates go to ``engine.apply``; ``MEASURE`` collapses via
    ``engine.measure`` and records the outcome in the classical register;
    ``RESET`` measures and flips back to ``|0>``; conditioned instructions
    are skipped unless the register equals their ``condition`` value.
    ``after_gate`` (the limit wrapper's budget check) runs after every
    instruction, skipped or not.

    Returns the final classical register as a bit list (index = clbit).
    ``rng`` is only touched when the circuit actually contains collapsing
    instructions, so static circuits stay deterministic without a seed.
    """
    classical: List[int] = [0] * circuit.num_clbits

    def ensure_clbit(clbit: int) -> None:
        while len(classical) <= clbit:
            classical.append(0)

    for gate in circuit.gates:
        if gate.condition is not None \
                and classical_register_value(classical) != gate.condition:
            if after_gate is not None:
                after_gate()
            continue
        if gate.kind is GateKind.MEASURE:
            rng = _require_rng(rng)
            outcome = engine.measure([gate.targets[0]], rng=rng)[0]
            clbit = gate.clbits[0] if gate.clbits else gate.targets[0]
            ensure_clbit(clbit)
            classical[clbit] = outcome
        elif gate.kind is GateKind.RESET:
            rng = _require_rng(rng)
            target = gate.targets[0]
            if engine.measure([target], rng=rng)[0] == 1:
                engine.apply(Gate(GateKind.X, (target,)))
        else:
            engine.apply(gate)
        if after_gate is not None:
            after_gate()
    return classical


__all__ = ["classical_register_value", "execute_program"]

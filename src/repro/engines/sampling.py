"""Shared exact shot-sampling machinery: the conditional-probability descent.

Every engine draws measurement shots through the same algorithm so that two
engines computing the same distribution produce *identical* counts under the
same seed:

1. Walk the measured qubits in order, maintaining the joint probability of
   the bit-prefix fixed so far.
2. At each qubit, query the engine for the probability of extending the
   prefix with ``0``, and split the shots still alive on this prefix with a
   single binomial draw.
3. Recurse into the ``0`` branch first, then the ``1`` branch, skipping
   branches that received no shots (no RNG draw happens for them).

The cost is proportional to the number of *distinct* outcomes drawn — never
to ``shots * 2**n`` — and the per-shot loop of naive samplers disappears
entirely.

Probability snapping
--------------------
Engines disagree about the last few floating-point bits of a probability
(the dense engine accumulates rounding through every gate; the QMDD engine
interns complex weights on a ``1e-12`` tolerance grid; the bit-sliced
engine converts an exact integer pair once).  A binomial draw is chaotically
sensitive to its ``p`` argument, so even a ``1e-12`` disagreement would
desynchronise the counts.  :func:`snap_probability` therefore quantises
every branching ratio to the ``2**-30`` grid before it reaches the RNG:
probabilities agreeing to ~9 decimal digits land on the same grid point and
draw identical splits, while the ``<= 2**-31`` (~5e-10) quantisation bias
is far below statistical resolution at any realistic shot count.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

#: Resolution of the probability grid used for RNG-visible branching ratios.
PROBABILITY_SNAP_BITS = 30
_SNAP = float(1 << PROBABILITY_SNAP_BITS)


def snap_probability(probability: float) -> float:
    """Quantise ``probability`` to the ``2**-30`` grid, clamped to [0, 1].

    Applied to every probability that influences an RNG draw (binomial
    splits in :func:`sample_by_descent`, thresholds in
    :meth:`repro.engines.base.Engine.measure`) so that engines agreeing on a
    distribution to ~9 decimal digits consume identical random variates.
    """
    if probability <= 0.0:
        return 0.0
    if probability >= 1.0:
        return 1.0
    return round(probability * _SNAP) / _SNAP


def sample_by_descent(branch_probability: Callable[[tuple], float],
                      num_bits: int, shots: int, rng) -> Dict[int, int]:
    """Draw ``shots`` outcomes over ``num_bits`` bits by binomial descent.

    ``branch_probability(prefix)`` must return the *absolute* joint
    probability of observing the bit-tuple ``prefix`` on the first
    ``len(prefix)`` measured qubits.  It is only ever called on prefixes
    ending in ``0`` (the ``1``-branch mass is obtained by subtraction), and
    never on prefixes that received no shots.

    Returns a dict mapping outcome integers (first bit = most significant)
    to counts.  The RNG consumption protocol is part of the contract: one
    ``rng.binomial`` call per visited internal node whose snapped branching
    ratio is strictly between 0 and 1, in depth-first 0-branch-first order —
    so any two samplers honouring the protocol and agreeing on snapped
    probabilities produce byte-identical counts from equal RNG states.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    counts: Dict[int, int] = {}
    if shots == 0:
        return counts
    # (prefix, shots, probability-of-prefix), depth-first with the 1-branch
    # pushed before the 0-branch so the 0-branch is processed first.
    stack = [((), shots, 1.0)]
    while stack:
        prefix, alive, mass = stack.pop()
        if alive == 0:
            continue
        if len(prefix) == num_bits:
            outcome = 0
            for bit in prefix:
                outcome = (outcome << 1) | bit
            counts[outcome] = counts.get(outcome, 0) + alive
            continue
        zero_mass = snap_probability(branch_probability(prefix + (0,)))
        ratio = 1.0 if mass <= 0.0 else snap_probability(zero_mass / mass)
        if ratio >= 1.0:
            zero_shots = alive
        elif ratio <= 0.0:
            zero_shots = 0
        else:
            zero_shots = int(rng.binomial(alive, ratio))
        stack.append((prefix + (1,), alive - zero_shots,
                      max(mass - zero_mass, 0.0)))
        stack.append((prefix + (0,), zero_shots, zero_mass))
    return counts


def remap_counts_to_clbits(counts: Dict[int, int], qubit_count: int,
                           clbits: Sequence) -> Dict[int, int]:
    """Re-key qubit-ordered counts onto the classical register.

    ``counts`` uses the sampler convention (first measured qubit = most
    significant bit).  The result keys each outcome by the classical
    register's integer value: bit ``i`` of the sampled outcome lands on
    ``clbits[i]``, and clbit ``j`` carries weight ``2**j`` (OpenQASM's
    ``if(c==v)`` convention).  Each ``clbits`` entry may be a single clbit
    or a sequence of clbits — a qubit measured into several clbits writes
    its bit to each of them.
    """
    if len(clbits) != qubit_count:
        raise ValueError("clbit mapping length must match the sampled qubits")
    groups = [(entry,) if isinstance(entry, int) else tuple(entry)
              for entry in clbits]
    remapped: Dict[int, int] = {}
    for outcome, count in counts.items():
        value = 0
        for position, group in enumerate(groups):
            bit = (outcome >> (qubit_count - 1 - position)) & 1
            for clbit in group:
                value = (value & ~(1 << clbit)) | (bit << clbit)
        remapped[value] = remapped.get(value, 0) + count
    return remapped


def counts_to_bitstrings(counts: Dict[int, int],
                         width: Optional[int] = None) -> Dict[str, int]:
    """Render integer-keyed counts as bitstrings (most-significant bit
    first), zero-padded to ``width`` (default: widest key)."""
    if width is None:
        width = max((key.bit_length() for key in counts), default=1) or 1
    return {format(key, f"0{width}b"): value
            for key, value in sorted(counts.items())}


__all__ = [
    "PROBABILITY_SNAP_BITS",
    "snap_probability",
    "sample_by_descent",
    "remap_counts_to_clbits",
    "counts_to_bitstrings",
]

"""The :class:`Engine` protocol and the :class:`Capabilities` descriptor.

Every simulation backend in the repository — the paper's bit-sliced BDD
engine and the three comparison engines — is exposed through one uniform
lifecycle so the harness, the ``repro.run`` front door and third-party code
can drive any of them interchangeably:

``prepare(circuit, limits)``
    Allocate the native state for ``circuit`` (the only step that may look at
    :class:`~repro.engines.limits.ResourceLimits`, e.g. the dense engine's
    qubit cut-off).
``apply(gate)``
    Apply one gate.  A gate outside the engine's declared capability set must
    raise :class:`~repro.exceptions.UnsupportedGateError` (the contract tests
    enforce this "capability honesty").
``probability(qubits, bits)``
    Joint probability of observing ``bits`` on ``qubits`` without collapsing
    the state — the end-of-run query every harness run performs.
``statistics()``
    The canonical stats schema (see :data:`CANONICAL_STATS_KEYS`): every
    engine reports ``peak_memory_nodes`` / ``elapsed_seconds`` /
    ``gates_applied`` / ``num_qubits`` under the same names, plus any
    engine-specific extras (e.g. the BDD substrate's ``substrate_*``
    counters).  Legacy per-engine spellings (``peak_bdd_nodes``,
    ``peak_dd_nodes``, ``tableau_bytes``) are normalised here in the
    adapters, never downstream.

TO/MO budgets are *not* enforced by the engines themselves: the
:class:`~repro.engines.limits.LimitEnforcer` wrapper checks wall-clock and
memory between gates uniformly, which is what fixed the dense engine's
historically missing time-out enforcement.

A declarative :class:`Capabilities` record accompanies every engine class and
feeds alias resolution, the ``"auto"`` selector and the rendered table
labels.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import ClassVar, Dict, FrozenSet, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, is_clifford_gate
from repro.exceptions import UnsupportedGateError

#: Approximate bytes per decision-diagram node, used to convert canonical
#: node counts into the MB figures reported next to the paper's numbers.  A
#: CUDD / DDSIM node is ~32-48 bytes; the pure-Python stores cost more, but
#: every engine converts with the same constant so relative numbers hold.
BYTES_PER_NODE = 48

#: Keys every engine's ``statistics()`` must report (the canonical schema).
CANONICAL_STATS_KEYS = ("num_qubits", "gates_applied",
                        "peak_memory_nodes", "elapsed_seconds")

#: Legacy engine-specific stat spellings that must *not* leak out of the
#: adapters (the pre-redesign harness remapped these by hand per engine).
LEGACY_STATS_KEYS = ("peak_bdd_nodes", "peak_dd_nodes", "tableau_bytes")

#: Every gate kind an engine applies as a unitary.  MEASURE and RESET are
#: lifecycle instructions handled by the dynamic-circuit executor
#: (:mod:`repro.engines.dynamic`), never passed to ``Engine.apply``.
ALL_GATE_KINDS: FrozenSet[GateKind] = frozenset(GateKind) - {
    GateKind.MEASURE, GateKind.RESET}

#: Bytes per dense complex amplitude (numpy complex128).
BYTES_PER_AMPLITUDE = 16

#: Live-node threshold installed by ``reorder=True`` requests (engines that
#: support dynamic reordering trigger an in-place sift of their decision
#: diagrams once they grow past it; see ``repro.run``'s ``reorder`` flag).
DEFAULT_AUTO_REORDER_THRESHOLD = 25_000


def dense_memory_nodes(num_qubits: int) -> int:
    """A dense ``2**n`` statevector's footprint in canonical node units
    (used both by the dense adapter and by the ``"auto"`` selector's
    eligibility check against ``max_nodes``)."""
    return max(1, (BYTES_PER_AMPLITUDE << num_qubits) // BYTES_PER_NODE)


#: The Clifford subset an Aaronson-Gottesman tableau can apply exactly.
CLIFFORD_GATE_KINDS: FrozenSet[GateKind] = frozenset({
    GateKind.X, GateKind.Y, GateKind.Z, GateKind.H, GateKind.S, GateKind.SDG,
    GateKind.RX_PI_2, GateKind.RY_PI_2, GateKind.CX, GateKind.CZ,
    GateKind.SWAP, GateKind.CCX, GateKind.CSWAP,
})


@dataclass(frozen=True)
class Capabilities:
    """Declarative description of what an engine can do.

    The registry uses it for the ``"auto"`` selector (which engine fits a
    circuit's gate profile and size best) and the harness uses ``label`` for
    the rendered table headers.

    ``selection_priority`` orders engines for automatic selection: among all
    engines whose capabilities support a circuit, the lowest priority wins.
    The built-in ranking encodes asymptotic fitness — the polynomial-time
    tableau first (Clifford circuits only), the dense vector while it fits in
    memory, then the exact symbolic engines.
    """

    name: str
    label: str
    supported_gates: FrozenSet[GateKind]
    #: True when amplitudes are represented exactly (no float rounding until
    #: measurement), the paper's headline property of the bit-sliced engine.
    exact: bool
    #: True when only Clifford *instances* are supported: a gate kind in
    #: ``supported_gates`` may still be rejected for a non-Clifford control
    #: structure (e.g. a two-control Toffoli on the tableau).
    clifford_only: bool = False
    #: True when memory is a dense ``2**n`` array, making the engine subject
    #: to :attr:`~repro.engines.limits.ResourceLimits.max_dense_qubits`.
    dense: bool = False
    #: Hard practical qubit ceiling (``None`` = unbounded in principle).
    max_practical_qubits: Optional[int] = None
    selection_priority: int = 50
    description: str = ""
    #: True when the engine can collapse single qubits
    #: (:meth:`Engine.collapse`), which mid-circuit measurement and
    #: ``reset`` require.  Engines without collapse support still run static
    #: circuits and can still :meth:`Engine.sample` (the descent sampler
    #: only needs probability queries).
    supports_measurement: bool = True
    #: True when the engine answers :meth:`Engine.sample` shot requests.
    #: The default implementation works for any engine with a correct
    #: ``probability``, so this is only ever switched off deliberately.
    supports_sampling: bool = True
    #: True when the engine can dynamically reorder its internal
    #: representation mid-run (the bit-sliced engine's in-place BDD
    #: variable sifting).  ``reorder=`` requests on the front door are
    #: honoured by :meth:`Engine.configure_reordering` when this is set and
    #: silently ignored otherwise, so mixed-engine sweeps stay valid.
    supports_reordering: bool = False
    #: True when the engine can export its finished state as a resumable
    #: session (:meth:`Engine.export_session`) and later adopt a fork of
    #: one (:meth:`Engine.resume_session`), which is what lets the front
    #: door's ``sessions=`` pool resume an incoming circuit from a retained
    #: gate-sequence prefix instead of replaying it from ``|0>``.
    supports_prefix_resume: bool = False
    #: True when the engine can swap its node-storage substrate at runtime
    #: (the bit-sliced engine's dict / array / numba-compiled BDD
    #: backends; see :mod:`repro.bdd.substrate`).  ``substrate=`` requests
    #: on the front door are honoured by :meth:`Engine.configure_substrate`
    #: when this is set and silently ignored otherwise, so mixed-engine
    #: sweeps stay valid.
    supports_compiled_substrate: bool = False
    #: True when the engine can serialise its prepared state to a
    #: crash-safe snapshot file (:meth:`Engine.export_snapshot`) and adopt
    #: one back (:meth:`Engine.restore_snapshot`), which is what lets the
    #: front door's ``checkpoint_every=`` resume a killed run and the
    #: service rehydrate warm sessions after a restart
    #: (:mod:`repro.snapshot`).  Engines without the capability degrade
    #: gracefully: checkpoint requests are ignored rather than refused.
    supports_snapshots: bool = False

    def supports_gate(self, gate: Gate) -> bool:
        """True when the engine can apply this specific gate instance."""
        if gate.kind in (GateKind.MEASURE, GateKind.RESET):
            # An in-stream MEASURE (or RESET) collapses the state, so both
            # require collapse support.  Terminal measurement *markers*
            # never appear as gates, so they are unaffected.
            return self.supports_measurement
        if gate.kind not in self.supported_gates:
            return False
        if self.clifford_only and not is_clifford_gate(gate):
            return False
        return True

    def supports_circuit(self, circuit: QuantumCircuit) -> bool:
        """True when every gate of ``circuit`` is supported."""
        return all(self.supports_gate(gate) for gate in circuit.gates)

    def unsupported_gates(self, circuit: QuantumCircuit) -> List[Gate]:
        """The gates of ``circuit`` this engine would reject."""
        return [gate for gate in circuit.gates if not self.supports_gate(gate)]


class Engine(abc.ABC):
    """Abstract base of every simulation backend (see the module docstring
    for the lifecycle contract)."""

    #: Declarative capability record; set by every concrete engine class.
    capabilities: ClassVar[Capabilities]

    def __init__(self) -> None:
        self._prepared_at: Optional[float] = None
        self._gates_applied = 0
        #: Classical register after the last :meth:`run` (clbit index order).
        self.classical_bits: List[int] = []

    # -- lifecycle ------------------------------------------------------- #
    def prepare(self, circuit: QuantumCircuit, limits=None) -> None:
        """Allocate the native state for ``circuit``.

        Subclasses must call ``super().prepare(circuit, limits)`` (it starts
        the elapsed-time clock and resets the gate counter) before building
        their native simulator.
        """
        self._prepared_at = time.perf_counter()
        self._gates_applied = 0

    @abc.abstractmethod
    def apply(self, gate: Gate) -> None:
        """Apply one gate (raise ``UnsupportedGateError`` outside the
        declared capability set; measurement markers are no-ops)."""

    @abc.abstractmethod
    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        """Joint probability of observing ``bits`` on ``qubits`` without
        collapsing the state."""

    @abc.abstractmethod
    def memory_nodes(self) -> int:
        """Current memory footprint in canonical node units (used by the
        limit-enforcement wrapper for the MO budget)."""

    # -- measurement and sampling ---------------------------------------- #
    def collapse(self, qubit: int, outcome: int) -> None:
        """Project the state onto ``qubit == outcome`` and renormalise.

        The forced-outcome half of a measurement: no randomness is involved
        here, :meth:`measure` draws the outcome.  Engines declaring
        ``capabilities.supports_measurement`` must override this; the
        default refuses.
        """
        raise UnsupportedGateError(
            f"engine {self.capabilities.name!r} does not support state "
            f"collapse (mid-circuit measurement / reset)")

    def measure(self, qubits: Sequence[int], rng=None) -> List[int]:
        """Measure ``qubits`` in order, collapsing after each; returns bits.

        This is the *uniform measurement protocol* every engine shares: per
        qubit, one probability query, one snapped threshold comparison
        against a single ``rng.random()`` draw (skipped when the outcome is
        deterministic), then a forced :meth:`collapse`.  Because the RNG
        consumption pattern and the snapped probabilities are
        engine-independent, two engines simulating the same circuit from
        equal RNG states collapse onto identical outcomes.
        """
        from repro.engines.sampling import snap_probability

        if rng is None:
            import numpy as np

            rng = np.random.default_rng()
        outcomes: List[int] = []
        for qubit in qubits:
            probability_zero = snap_probability(self.probability([qubit], [0]))
            if probability_zero >= 1.0:
                outcome = 0
            elif probability_zero <= 0.0:
                outcome = 1
            else:
                outcome = 0 if rng.random() < probability_zero else 1
            self.collapse(qubit, outcome)
            outcomes.append(outcome)
        return outcomes

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None,
               rng=None) -> Dict[int, int]:
        """Draw ``shots`` outcomes over ``qubits`` without collapsing.

        Returns outcome-integer -> count (first listed qubit = most
        significant bit).  The default implementation runs the shared
        binomial conditional-probability descent
        (:func:`repro.engines.sampling.sample_by_descent`) over this
        engine's joint ``probability`` query, so it works for any engine —
        including third-party ones — whose probabilities are correct.
        Engines with a cheaper native path (the bit-sliced engine restricts
        its slice BDDs instead of re-querying) override this but keep the
        same descent protocol, so counts stay engine-independent.

        Engines declaring ``supports_sampling=False`` (e.g. because their
        probabilities are approximate) refuse here, which the front door
        classifies as an unsupported outcome.
        """
        from repro.engines.sampling import sample_by_descent

        if not self.capabilities.supports_sampling:
            raise UnsupportedGateError(
                f"engine {self.capabilities.name!r} declares "
                f"supports_sampling=False; it cannot answer shot requests")
        if qubits is None:
            qubits = list(range(self.num_qubits))
        qubits = list(qubits)
        if rng is None:
            import numpy as np

            rng = np.random.default_rng()

        def branch_probability(prefix):
            return self.probability(qubits[:len(prefix)], list(prefix))

        return sample_by_descent(branch_probability, len(qubits), shots, rng)

    # -- tuning ---------------------------------------------------------- #
    def configure_reordering(self, threshold: Optional[int]) -> bool:
        """Request growth-triggered dynamic reordering for the next run.

        ``threshold`` is the live-node count past which the engine should
        reorder its internal representation (``None`` switches the request
        off).  Must be called before :meth:`prepare`.  The default ignores
        the request and returns ``False``; engines declaring
        ``capabilities.supports_reordering`` override it and return
        ``True``.  Keeping this a no-op by default lets the front door pass
        one ``reorder=`` flag to every engine of a sweep without changing
        the engines that have nothing to reorder.
        """
        return False

    def configure_substrate(self, substrate: Optional[str]) -> bool:
        """Request a node-storage substrate for the next run.

        ``substrate`` is a backend name understood by
        :func:`repro.bdd.substrate.resolve_substrate` (``dict`` /
        ``array`` / ``compiled`` / ``auto``; ``None`` restores the
        default).  Must be called before :meth:`prepare`.  The default
        ignores the request and returns ``False``; engines declaring
        ``capabilities.supports_compiled_substrate`` override it and
        return ``True`` — the same contract as
        :meth:`configure_reordering`, and for the same reason: one
        ``substrate=`` flag must be safe to pass to every engine of a
        mixed sweep.
        """
        return False

    # -- session export / resume (prefix caching) ------------------------- #
    def export_session(self):
        """Export the engine's finished state for prefix retention.

        Engines declaring ``capabilities.supports_prefix_resume`` return a
        ``(payload, generation_probe)`` pair: ``payload`` is an opaque
        session object exposing ``fork()`` (a cheap, immutable-sharing copy
        the pool hands to later resumes), and ``generation_probe`` is a
        zero-argument callable whose value changing signals that the
        payload's substrate was touched externally and the session must be
        invalidated (:mod:`repro.cache.sessions`).  The default returns
        ``None`` — nothing is retained for engines without the capability.
        """
        return None

    def resume_session(self, payload, gates_already_applied: int = 0) -> None:
        """Adopt a forked session ``payload`` as the prepared state.

        Replaces :meth:`prepare` on a prefix-resumed run: the engine must
        behave exactly as if it had just executed the payload's gate prefix
        itself (``gates_already_applied`` seeds the gate counter so
        statistics match the equivalent cold run).  Engines without
        ``capabilities.supports_prefix_resume`` refuse.
        """
        raise UnsupportedGateError(
            f"engine {self.capabilities.name!r} does not support prefix "
            f"resume (Capabilities.supports_prefix_resume is False)")

    # -- crash-safe snapshots (checkpoint / resume) ------------------------ #
    def export_snapshot(self, path: str, extra=None) -> bool:
        """Write the engine's current state to a snapshot file.

        Engines declaring ``capabilities.supports_snapshots`` serialise
        their prepared state to ``path`` atomically (see
        :mod:`repro.snapshot`) and return ``True``; ``extra`` is an
        arbitrary JSON-compatible dict stored verbatim for the calling
        layer.  Safe only at a gate boundary.  The default ignores the
        request and returns ``False`` — the same graceful-degradation
        contract as :meth:`configure_reordering`, so one
        ``checkpoint_every=`` flag is safe to pass to every engine of a
        mixed sweep.
        """
        return False

    def restore_snapshot(self, path: str):
        """Adopt the snapshot at ``path`` as the prepared state.

        Replaces :meth:`prepare` on a resumed run: the engine must behave
        exactly as if it had just executed the snapshotted gate prefix
        itself.  Returns the ``extra`` dict given to
        :meth:`export_snapshot`.  Raises
        :class:`repro.snapshot.SnapshotCorruptError` on a damaged file
        (never restores garbage) and
        :class:`~repro.exceptions.UnsupportedGateError` on engines
        without ``capabilities.supports_snapshots``.
        """
        raise UnsupportedGateError(
            f"engine {self.capabilities.name!r} does not support snapshots "
            f"(Capabilities.supports_snapshots is False)")

    # -- statistics ------------------------------------------------------ #
    def statistics(self) -> Dict[str, float]:
        """Canonical run statistics; subclasses extend with engine extras."""
        return {
            "num_qubits": self.num_qubits,
            "gates_applied": self._gates_applied,
            "peak_memory_nodes": self.memory_nodes(),
            "elapsed_seconds": self.elapsed_seconds(),
        }

    @property
    @abc.abstractmethod
    def num_qubits(self) -> int:
        """Register size of the prepared circuit."""

    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since :meth:`prepare`."""
        if self._prepared_at is None:
            return 0.0
        return time.perf_counter() - self._prepared_at

    # -- helpers --------------------------------------------------------- #
    def ensure_supported(self, gate: Gate) -> None:
        """Raise :class:`UnsupportedGateError` unless ``gate`` is inside the
        declared capability set (convenience for engines whose native core
        does not police its own gate set)."""
        if not self.capabilities.supports_gate(gate):
            raise UnsupportedGateError(
                f"gate {gate.kind.value} (controls={len(gate.controls)}) is "
                f"outside the declared capabilities of engine "
                f"{self.capabilities.name!r}")

    def run(self, circuit: QuantumCircuit, limits=None, rng=None) -> "Engine":
        """Convenience: ``prepare`` then execute every instruction; returns
        ``self``.  Dynamic instructions (mid-circuit measurement, reset,
        ``if(c==v)`` conditions) are interpreted by the shared executor in
        :mod:`repro.engines.dynamic`, drawing from ``rng``; the final
        classical register is stored in :attr:`classical_bits`.
        Budget-enforced execution goes through
        :class:`~repro.engines.limits.LimitEnforcer` instead."""
        from repro.engines.dynamic import execute_program

        self.prepare(circuit, limits)
        self.classical_bits = execute_program(self, circuit, rng=rng)
        return self

    def _count_gate(self, gate: Gate) -> None:
        """Bump the applied-gate counter (measurement markers excluded)."""
        if gate.kind is not GateKind.MEASURE:
            self._gates_applied += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(engine={self.capabilities.name!r})"

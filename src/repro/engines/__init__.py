"""Unified engine API: protocol, capability-aware registry, front door.

This package is the one place the rest of the repository (and third-party
code) goes through to execute circuits:

* :class:`~repro.engines.base.Engine` — the abstract lifecycle every backend
  implements (``prepare`` / ``apply`` / ``probability`` / ``statistics``),
* :class:`~repro.engines.base.Capabilities` — the declarative descriptor
  feeding alias resolution and the ``"auto"`` selector,
* :mod:`~repro.engines.registry` — ``register_engine`` decorator, aliases,
  capability-based automatic engine selection,
* :mod:`~repro.engines.adapters` — the four built-in engines (bit-sliced
  BDD, QMDD, dense statevector, CHP stabilizer) behind the protocol,
* :mod:`~repro.engines.limits` — :class:`ResourceLimits` and the single
  TO/MO :class:`LimitEnforcer` wrapper shared by every engine,
* :mod:`~repro.engines.frontdoor` — :func:`run` and the parallel
  :func:`run_sweep` grid executor returning normalised
  :class:`~repro.engines.result.RunResult` records.

Importing this package registers the built-in engines.
"""

from repro.engines.base import (
    ALL_GATE_KINDS,
    BYTES_PER_NODE,
    CANONICAL_STATS_KEYS,
    CLIFFORD_GATE_KINDS,
    Capabilities,
    Engine,
)
from repro.engines.limits import LimitEnforcer, ResourceLimits
from repro.engines.registry import (
    AUTO_ENGINE,
    UnknownEngineError,
    available_engines,
    create_engine,
    engine_aliases,
    engine_capabilities,
    engine_labels,
    get_engine_class,
    register_engine,
    resolve_engine,
    resolve_engine_name,
    select_engine,
    unregister_engine,
)
from repro.engines import adapters as _adapters  # noqa: F401  (registers built-ins)
from repro.engines.adapters import (
    BitSliceEngine,
    QmddEngine,
    StabilizerEngine,
    StatevectorEngine,
)
from repro.engines.dynamic import classical_register_value, execute_program
from repro.engines.frontdoor import (
    FINAL_QUERY_QUBIT_CAP,
    derive_task_seed,
    final_query_qubits,
    run,
    run_sweep,
    run_tasks,
    sampling_qubits,
)
from repro.engines.sampling import (
    PROBABILITY_SNAP_BITS,
    counts_to_bitstrings,
    sample_by_descent,
    snap_probability,
)
from repro.engines.result import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    RunResult,
    summarise,
)

__all__ = [
    "ALL_GATE_KINDS",
    "AUTO_ENGINE",
    "BYTES_PER_NODE",
    "CANONICAL_STATS_KEYS",
    "CLIFFORD_GATE_KINDS",
    "FINAL_QUERY_QUBIT_CAP",
    "PROBABILITY_SNAP_BITS",
    "Capabilities",
    "Engine",
    "LimitEnforcer",
    "ResourceLimits",
    "RunResult",
    "UnknownEngineError",
    "BitSliceEngine",
    "QmddEngine",
    "StabilizerEngine",
    "StatevectorEngine",
    "STATUS_CRASH",
    "STATUS_ERROR",
    "STATUS_MEMORY",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_UNSUPPORTED",
    "available_engines",
    "classical_register_value",
    "counts_to_bitstrings",
    "create_engine",
    "derive_task_seed",
    "engine_aliases",
    "engine_capabilities",
    "engine_labels",
    "execute_program",
    "final_query_qubits",
    "get_engine_class",
    "register_engine",
    "resolve_engine",
    "resolve_engine_name",
    "run",
    "run_sweep",
    "run_tasks",
    "sample_by_descent",
    "sampling_qubits",
    "select_engine",
    "snap_probability",
    "summarise",
    "unregister_engine",
]

"""Resource budgets and the single limit-enforcement wrapper.

The paper's protocol gives every run a wall-clock budget (TO) and a memory
budget (MO).  Before the engine redesign each simulator policed its own
budgets with duplicated (and inconsistent — the dense engine ignored
``max_seconds`` entirely) checks; now :class:`LimitEnforcer` drives any
:class:`~repro.engines.base.Engine` gate by gate and applies both budgets
between gates, so every engine times out and memory-outs through the exact
same code path.

Long-lived processes (the ``repro.service`` server) reuse one enforcer for
many jobs, which makes the budget's *scope* part of the contract: budgets
are **per job, never per process**.  :meth:`LimitEnforcer.begin_job` opens
a job — it restarts the wall-clock and installs that job's cancel token,
discarding whatever the previous job left behind, so a session that has
been alive for an hour still gives every append the full ``max_seconds``
and a token fired to cancel job *N* can never leak into job *N + 1*.
:meth:`execute` / :meth:`execute_prepared` call it implicitly.

Cooperative cancellation rides the same rails as TO/MO: a ``cancel_token``
(any object with ``is_set()``, e.g. :class:`threading.Event`) passed to the
constructor or :meth:`begin_job` is polled by :meth:`check` between gates,
and a set token raises :class:`~repro.exceptions.JobCancelledError` — which
unwinds through the same ``finally`` blocks as a timeout, so held session
leases are always released.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import (
    JobCancelledError,
    SimulationMemoryExceeded,
    SimulationTimeout,
)
from repro.resilience.faults import FAULT_LIMITS_CHECK, maybe_fire


@dataclass(frozen=True)
class ResourceLimits:
    """Per-run budgets (``None`` disables a limit).

    ``max_nodes`` is measured in canonical node units (decision-diagram
    nodes for the symbolic engines; dense and tableau engines convert their
    byte footprints with
    :data:`~repro.engines.base.BYTES_PER_NODE`-equivalent factors), so one
    budget is comparable across engines.
    """

    max_seconds: Optional[float] = 60.0
    max_nodes: Optional[int] = 500_000
    #: Dense statevector cut-off, in qubits (its memory is 16 * 2**n bytes).
    max_dense_qubits: int = 24


class LimitEnforcer:
    """Run a circuit on an engine, enforcing TO/MO budgets between gates.

    The wrapper owns the clock: it starts timing when a job begins (so
    preparation cost counts, as in the paper's protocol) and checks
    ``max_seconds`` / ``max_nodes`` — and the job's cancel token — after
    preparation and after every gate.  Engines therefore do not need any
    budget plumbing of their own.

    One enforcer may be reused for many jobs (the service holds one per
    session); each :meth:`execute` / :meth:`execute_prepared` call — or an
    explicit :meth:`begin_job` — resets the budget clock and replaces the
    cancel token, so budgets and cancellation are always scoped to the
    current job, never to the process.
    """

    def __init__(self, engine, limits: Optional[ResourceLimits] = None,
                 cancel_token=None):
        self.engine = engine
        self.limits = limits or ResourceLimits()
        self._start_time: Optional[float] = None
        self._cancel_token = cancel_token
        #: Classical register after the last :meth:`execute` (clbit order).
        self.classical_bits: list = []

    def begin_job(self, cancel_token=None) -> None:
        """Open a new job: restart the budget clock, swap in ``cancel_token``.

        Must be called (directly, or implicitly via :meth:`execute` /
        :meth:`execute_prepared`) before each job on a reused enforcer.
        The previous job's elapsed time and cancel token are discarded —
        a token fired to cancel the last job cannot spuriously cancel this
        one, and a session alive for hours still gives every job its full
        ``max_seconds``.  Passing ``cancel_token=None`` clears cancellation
        for the job.
        """
        self._start_time = time.perf_counter()
        self._cancel_token = cancel_token

    def _gate_hook(self, after_gate):
        """The between-gates callback: always the budget/cancel poll, plus
        an optional caller hook (the front door's checkpoint writer) that
        runs *after* the poll, so a timed-out or cancelled run never writes
        one more checkpoint on the way out."""
        if after_gate is None:
            return self.check

        def hook():
            self.check()
            after_gate()

        return hook

    def execute(self, circuit: QuantumCircuit, rng=None, cancel_token=None,
                after_gate=None):
        """Prepare the engine for ``circuit`` and execute every instruction
        under the budgets; returns the engine for chaining.

        Opens a new job (see :meth:`begin_job`) — the clock restarts and
        ``cancel_token`` replaces any previous job's token.  Dynamic
        instructions (mid-circuit measurement / reset / classical
        conditions) are interpreted by
        :func:`repro.engines.dynamic.execute_program` drawing from ``rng``;
        the final classical register lands in :attr:`classical_bits`.
        ``after_gate`` is an optional zero-argument callable invoked at
        every gate boundary after the budget poll (the front door's
        checkpoint writer rides here).
        """
        from repro.engines.dynamic import execute_program

        self.begin_job(cancel_token
                       if cancel_token is not None else self._cancel_token)
        self.engine.prepare(circuit, self.limits)
        self.check()
        self.classical_bits = execute_program(self.engine, circuit, rng=rng,
                                              after_gate=self._gate_hook(
                                                  after_gate))
        return self.engine

    def execute_prepared(self, circuit: QuantumCircuit, rng=None,
                         cancel_token=None, after_gate=None):
        """Execute ``circuit``'s instructions on an engine that is *already*
        prepared, under the budgets; returns the engine for chaining.

        The prefix-resume path uses this: the engine adopted a retained
        session state via :meth:`~repro.engines.base.Engine.resume_session`
        (or a checkpoint via
        :meth:`~repro.engines.base.Engine.restore_snapshot`), so only the
        unexecuted suffix is driven here — re-preparing would throw the
        resumed state away.  Budgets are enforced exactly as in
        :meth:`execute` (a new job is opened on entry, both budgets and the
        cancel token are checked immediately and after every instruction),
        and ``after_gate`` hooks the same gate boundaries.
        """
        from repro.engines.dynamic import execute_program

        self.begin_job(cancel_token
                       if cancel_token is not None else self._cancel_token)
        self.check()
        self.classical_bits = execute_program(self.engine, circuit, rng=rng,
                                              after_gate=self._gate_hook(
                                                  after_gate))
        return self.engine

    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the current job began (0.0 before the
        first job)."""
        if self._start_time is None:
            return 0.0
        return time.perf_counter() - self._start_time

    def check(self) -> None:
        """Raise ``JobCancelledError`` when the job's cancel token is set,
        ``SimulationTimeout`` / ``SimulationMemoryExceeded`` when a budget
        is exhausted (also usable inside long engine queries)."""
        # Chaos hook: this poll runs between gates inside every limited
        # simulation, so an armed ``limits.check`` rule crashes a run
        # mid-circuit through the same unwind path a timeout takes.
        maybe_fire(FAULT_LIMITS_CHECK)
        token = self._cancel_token
        if token is not None and token.is_set():
            raise JobCancelledError(
                f"cancelled after {self.elapsed_seconds():.3f}s")
        limits = self.limits
        if limits.max_seconds is not None:
            elapsed = self.elapsed_seconds()
            if elapsed > limits.max_seconds:
                raise SimulationTimeout(elapsed, limits.max_seconds)
        if limits.max_nodes is not None:
            nodes = self.engine.memory_nodes()
            if nodes > limits.max_nodes:
                raise SimulationMemoryExceeded(nodes, limits.max_nodes)

"""Resource budgets and the single limit-enforcement wrapper.

The paper's protocol gives every run a wall-clock budget (TO) and a memory
budget (MO).  Before the engine redesign each simulator policed its own
budgets with duplicated (and inconsistent — the dense engine ignored
``max_seconds`` entirely) checks; now :class:`LimitEnforcer` drives any
:class:`~repro.engines.base.Engine` gate by gate and applies both budgets
between gates, so every engine times out and memory-outs through the exact
same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationMemoryExceeded, SimulationTimeout


@dataclass(frozen=True)
class ResourceLimits:
    """Per-run budgets (``None`` disables a limit).

    ``max_nodes`` is measured in canonical node units (decision-diagram
    nodes for the symbolic engines; dense and tableau engines convert their
    byte footprints with
    :data:`~repro.engines.base.BYTES_PER_NODE`-equivalent factors), so one
    budget is comparable across engines.
    """

    max_seconds: Optional[float] = 60.0
    max_nodes: Optional[int] = 500_000
    #: Dense statevector cut-off, in qubits (its memory is 16 * 2**n bytes).
    max_dense_qubits: int = 24


class LimitEnforcer:
    """Run a circuit on an engine, enforcing TO/MO budgets between gates.

    The wrapper owns the clock: it starts timing when :meth:`execute` is
    entered (so preparation cost counts, as in the paper's protocol) and
    checks ``max_seconds`` and ``max_nodes`` after preparation and after
    every gate.  Engines therefore do not need any budget plumbing of their
    own — including engines whose native classes historically had none.
    """

    def __init__(self, engine, limits: Optional[ResourceLimits] = None):
        self.engine = engine
        self.limits = limits or ResourceLimits()
        self._start_time: Optional[float] = None
        #: Classical register after the last :meth:`execute` (clbit order).
        self.classical_bits: list = []

    def execute(self, circuit: QuantumCircuit, rng=None):
        """Prepare the engine for ``circuit`` and execute every instruction
        under the budgets; returns the engine for chaining.

        Dynamic instructions (mid-circuit measurement / reset / classical
        conditions) are interpreted by
        :func:`repro.engines.dynamic.execute_program` drawing from ``rng``;
        the final classical register lands in :attr:`classical_bits`.
        """
        from repro.engines.dynamic import execute_program

        self._start_time = time.perf_counter()
        self.engine.prepare(circuit, self.limits)
        self.check()
        self.classical_bits = execute_program(self.engine, circuit, rng=rng,
                                              after_gate=self.check)
        return self.engine

    def execute_prepared(self, circuit: QuantumCircuit, rng=None):
        """Execute ``circuit``'s instructions on an engine that is *already*
        prepared, under the budgets; returns the engine for chaining.

        The prefix-resume path uses this: the engine adopted a retained
        session state via :meth:`~repro.engines.base.Engine.resume_session`,
        so only the unexecuted suffix is driven here — re-preparing would
        throw the resumed state away.  Budgets are enforced exactly as in
        :meth:`execute` (the clock starts on entry, both budgets are checked
        immediately and after every instruction).
        """
        from repro.engines.dynamic import execute_program

        self._start_time = time.perf_counter()
        self.check()
        self.classical_bits = execute_program(self.engine, circuit, rng=rng,
                                              after_gate=self.check)
        return self.engine

    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since :meth:`execute` was entered."""
        if self._start_time is None:
            return 0.0
        return time.perf_counter() - self._start_time

    def check(self) -> None:
        """Raise ``SimulationTimeout`` / ``SimulationMemoryExceeded`` when a
        budget is exhausted (also usable inside long engine queries)."""
        limits = self.limits
        if limits.max_seconds is not None:
            elapsed = self.elapsed_seconds()
            if elapsed > limits.max_seconds:
                raise SimulationTimeout(elapsed, limits.max_seconds)
        if limits.max_nodes is not None:
            nodes = self.engine.memory_nodes()
            if nodes > limits.max_nodes:
                raise SimulationMemoryExceeded(nodes, limits.max_nodes)

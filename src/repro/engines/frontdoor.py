"""The ``repro.run()`` front door and the parallel sweep executor.

:func:`run` is the one call that does what the benchmark harness does for a
single (engine, circuit) pair: resolve the engine (by name, alias, or
``"auto"`` capability selection), execute the circuit under the unified
TO/MO limit wrapper, answer the paper's end-of-run probability query, and
classify the outcome into the paper's status classes — returning a
normalised :class:`~repro.engines.result.RunResult`.

:func:`run_sweep` executes an (engine x circuit) grid, optionally across
``concurrent.futures`` process workers.  Results always come back in
deterministic task order regardless of worker scheduling, and the
deterministic serialisation (``RunResult.to_dict(timings=False)``) is
byte-identical between the serial and parallel paths — which is what lets
the harness regenerate the paper's Tables III-VI in parallel without
changing a single reported number.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.engines.limits import LimitEnforcer, ResourceLimits
from repro.engines.registry import AUTO_ENGINE, create_engine, resolve_engine
from repro.engines.result import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    RunResult,
)
from repro.exceptions import (
    NumericalError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)

#: Cap on the end-of-run joint-probability query width, keeping the query
#: linear-time on very wide registers.  The same cap applies to every
#: engine, so all engines answer the same question.
FINAL_QUERY_QUBIT_CAP = 64


def final_query_qubits(circuit: QuantumCircuit,
                       cap: int = FINAL_QUERY_QUBIT_CAP) -> List[int]:
    """Qubits for the end-of-run probability query (measured qubits if any,
    otherwise all qubits, capped to keep the query linear-time)."""
    qubits = circuit.measured_qubits or list(range(circuit.num_qubits))
    return qubits[:cap]


def run(circuit: QuantumCircuit, engine: str = AUTO_ENGINE,
        limits: Optional[ResourceLimits] = None) -> RunResult:
    """Run ``circuit`` on ``engine`` under ``limits``; classify the outcome.

    ``engine`` may be a canonical name (``"bitslice"``, ``"qmdd"``,
    ``"statevector"``, ``"stabilizer"``), a registered alias (``"bdd"``,
    ``"ddsim"``, ``"dense"``, ``"chp"``, ...), or ``"auto"`` to let the
    registry pick by capability.  After the circuit is applied the engine
    answers one final probability query (the all-zeros outcome on the
    measured qubits, or on all qubits when the circuit marks none), so the
    measured runtime includes the measurement machinery exactly as in the
    paper's runs.
    """
    limits = limits or ResourceLimits()
    resolved = resolve_engine(engine, circuit, limits)
    instance = create_engine(resolved)
    start = time.perf_counter()
    status = STATUS_OK
    detail = ""
    peak_memory_nodes = 0
    final_probability: Optional[float] = None
    extra = {}
    try:
        LimitEnforcer(instance, limits).execute(circuit)
        qubits = final_query_qubits(circuit)
        final_probability = instance.probability(qubits, [0] * len(qubits))
        stats = instance.statistics()
        peak_memory_nodes = int(stats.get("peak_memory_nodes", 0))
        # Engine-specific extras only: stats duplicating a first-class
        # RunResult field are dropped (notably the engine-internal
        # elapsed_seconds, which differs slightly from the front door's
        # clock and would otherwise shadow it in serialised reports).
        extra = {key: value for key, value in stats.items()
                 if key not in ("peak_memory_nodes", "elapsed_seconds",
                                "num_qubits")
                 and isinstance(value, (int, float))}
    except SimulationTimeout as exc:
        status, detail = STATUS_TIMEOUT, str(exc)
    except (SimulationMemoryExceeded, MemoryError) as exc:
        status, detail = STATUS_MEMORY, str(exc)
    except NumericalError as exc:
        status, detail = STATUS_ERROR, str(exc)
    except UnsupportedGateError as exc:
        status, detail = STATUS_UNSUPPORTED, str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        status, detail = STATUS_CRASH, f"recursion depth exceeded: {exc}"
    elapsed = time.perf_counter() - start
    if (status == STATUS_OK and limits.max_seconds is not None
            and elapsed > limits.max_seconds):
        # The engine finished right at the edge of the budget; classify as
        # timeout so the tables stay consistent with the budget.
        status = STATUS_TIMEOUT
        detail = (f"completed in {elapsed:.1f}s, over the "
                  f"{limits.max_seconds:.1f}s budget")
    return RunResult(
        engine=resolved,
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates,
        status=status,
        elapsed_seconds=elapsed,
        peak_memory_nodes=peak_memory_nodes,
        final_probability=final_probability,
        detail=detail,
        extra=extra,
        requested_engine=engine,
    )


def _run_task(task: Tuple[str, QuantumCircuit],
              limits: Optional[ResourceLimits]) -> RunResult:
    """Process-pool worker: one (engine, circuit) task."""
    engine, circuit = task
    return run(circuit, engine=engine, limits=limits)


def run_tasks(tasks: Sequence[Tuple[str, QuantumCircuit]],
              limits: Optional[ResourceLimits] = None,
              jobs: int = 1) -> List[RunResult]:
    """Execute (engine, circuit) tasks, optionally on process workers.

    ``jobs <= 1`` runs serially in-process.  With ``jobs > 1`` the tasks are
    distributed over a :class:`~concurrent.futures.ProcessPoolExecutor`;
    results are returned in task order either way, so downstream grouping
    and table rendering are independent of worker scheduling.

    Engines registered at import time (everything in :mod:`repro.engines`
    and any module imported before the pool starts) are available in the
    workers; engines registered dynamically inside a ``__main__`` script are
    only visible to forked workers (the POSIX default), not spawned ones.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [_run_task(task, limits) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(_run_task, task, limits) for task in tasks]
        return [future.result() for future in futures]


def run_sweep(circuits: Sequence[QuantumCircuit],
              engines: Sequence[str] = (AUTO_ENGINE,),
              limits: Optional[ResourceLimits] = None,
              jobs: int = 1) -> List[RunResult]:
    """Run every circuit on every engine (circuit-major order).

    Returns ``len(circuits) * len(engines)`` results ordered as
    ``(circuit[0], engines...), (circuit[1], engines...), ...`` —
    deterministic regardless of ``jobs``.
    """
    tasks = [(engine, circuit) for circuit in circuits for engine in engines]
    return run_tasks(tasks, limits=limits, jobs=jobs)

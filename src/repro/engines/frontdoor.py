"""The ``repro.run()`` front door and the parallel sweep executor.

:func:`run` is the one call that does what the benchmark harness does for a
single (engine, circuit) pair: resolve the engine (by name, alias, or
``"auto"`` capability selection), execute the circuit under the unified
TO/MO limit wrapper, answer the paper's end-of-run probability query, and
classify the outcome into the paper's status classes — returning a
normalised :class:`~repro.engines.result.RunResult`.

With ``shots=N`` the front door additionally samples measurement outcomes
from the executed circuit — by exact conditional-probability descent on
static circuits, by per-shot trajectory re-execution on dynamic circuits
(mid-circuit measurement / reset / classical feedback) — and returns the
counts on the :class:`~repro.engines.result.RunResult`.  A ``seed`` makes
the whole run (collapse draws and shot sampling alike) deterministic.

:func:`run_sweep` executes an (engine x circuit) grid, optionally across
``concurrent.futures`` process workers.  Results always come back in
deterministic task order regardless of worker scheduling, per-task RNG
seeds are derived deterministically from the sweep seed, and the
deterministic serialisation (``RunResult.to_dict(timings=False)``) is
byte-identical between the serial and parallel paths — which is what lets
the harness regenerate the paper's Tables III-VI (and now shot-sampling
sweeps) in parallel without changing a single reported number.

Cross-run amortisation is opt-in through two keyword arguments shared by
:func:`run`, :func:`run_tasks` and :func:`run_sweep`: ``cache=`` (a
:class:`repro.cache.ResultCache` — finished results replayed verbatim for
identical requests) and ``sessions=`` (a :class:`repro.cache.SessionPool`
— retained bit-sliced states resumed when a circuit extends a stored
gate-sequence prefix).  Both preserve the byte-identity guarantee above:
a hit or a resume serialises identically to the cold run it stands in
for.  See ``docs/caching.md``.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.fingerprint import gate_tokens
from repro.cache.result_cache import (
    ResultCache,
    cacheable_request,
    normalise_reorder,
    result_cache_key,
)
from repro.cache.sessions import SessionLease, SessionPool
from repro.circuit.circuit import QuantumCircuit
from repro.engines.base import DEFAULT_AUTO_REORDER_THRESHOLD
from repro.engines.dynamic import classical_register_value
from repro.engines.limits import LimitEnforcer, ResourceLimits
from repro.engines.registry import AUTO_ENGINE, create_engine, resolve_engine
from repro.engines.result import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    RunResult,
)
from repro.engines.sampling import remap_counts_to_clbits
from repro.exceptions import (
    JobCancelledError,
    NumericalError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)

#: Cap on the end-of-run joint-probability query width, keeping the query
#: linear-time on very wide registers.  The same cap applies to every
#: engine, so all engines answer the same question.
FINAL_QUERY_QUBIT_CAP = 64


def final_query_qubits(circuit: QuantumCircuit,
                       cap: int = FINAL_QUERY_QUBIT_CAP) -> List[int]:
    """Qubits for the end-of-run probability query (measured qubits if any,
    otherwise all qubits, capped to keep the query linear-time)."""
    qubits = circuit.measured_qubits or list(range(circuit.num_qubits))
    return qubits[:cap]


def sampling_qubits(circuit: QuantumCircuit) -> List[int]:
    """Qubits shot sampling draws jointly: the final-measurement markers in
    marker order (each qubit once, even when measured into several clbits),
    otherwise all qubits.

    Unlike :func:`final_query_qubits` there is *no* width cap: the descent
    sampler's cost scales with distinct outcomes, not register width, and a
    silent cap would report unsampled qubits as measured-0.
    """
    qubits = circuit.measured_qubits or list(range(circuit.num_qubits))
    return list(dict.fromkeys(qubits))


def _sample_static(instance, circuit: QuantumCircuit, shots: int,
                   rng) -> Tuple[Dict[int, int], int]:
    """Counts (and register width) for a static circuit: one exact descent.

    When the circuit measures into classical bits the counts are re-keyed
    onto the classical register (clbit 0 = least-significant bit); without
    measurement instructions they stay basis-state indices (qubit 0 = most
    significant bit).
    """
    qubits = sampling_qubits(circuit)
    raw = instance.sample(shots, qubits=qubits, rng=rng)
    if not circuit.measured_qubits:
        return raw, len(qubits)
    # One sampled bit per distinct qubit, fanned out to every clbit the
    # qubit is measured into (a qubit can appear in several markers).
    clbit_groups = [tuple(clbit for measured, clbit
                          in circuit.final_measurement_map()
                          if measured == qubit)
                    for qubit in qubits]
    return (remap_counts_to_clbits(raw, len(qubits), clbit_groups),
            max(circuit.num_clbits, 1))


def _sample_trajectories(instance, circuit: QuantumCircuit,
                         limits: ResourceLimits, shots: int,
                         rng, cancel=None) -> Dict[int, int]:
    """Counts for a dynamic circuit: one full re-execution per shot.

    Mid-circuit measurement makes each shot a fresh classical trajectory
    (collapse outcomes feed conditions), so the circuit is prepared and
    executed ``shots`` times; terminal measurement markers are then
    collapsed once per trajectory.  Counts are keyed by the classical
    register.  The wall-clock budget applies to the whole trajectory loop,
    and a set ``cancel`` token stops it at the next gate boundary.
    """
    counts: Dict[int, int] = {}
    start = time.perf_counter()
    final_map = circuit.final_measurement_map()
    for _ in range(shots):
        elapsed = time.perf_counter() - start
        if limits.max_seconds is not None and elapsed > limits.max_seconds:
            raise SimulationTimeout(elapsed, limits.max_seconds)
        enforcer = LimitEnforcer(instance, limits, cancel_token=cancel)
        enforcer.execute(circuit, rng=rng)
        classical = list(enforcer.classical_bits)
        if final_map:
            bits = instance.measure([qubit for qubit, _ in final_map], rng=rng)
            for (_, clbit), bit in zip(final_map, bits):
                while len(classical) <= clbit:
                    classical.append(0)
                classical[clbit] = bit
        key = classical_register_value(classical)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _suffix_circuit(circuit: QuantumCircuit, depth: int) -> QuantumCircuit:
    """The unexecuted tail of ``circuit`` after its first ``depth`` gates.

    Only what :func:`repro.engines.dynamic.execute_program` reads is
    carried — the gate stream and the classical register width.  Terminal
    measurement markers stay on the original circuit, which the front door
    keeps using for the final query and for sampling.
    """
    suffix = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit.gates[depth:]:
        suffix.append(gate)
    suffix.num_clbits = max(suffix.num_clbits, circuit.num_clbits)
    return suffix


def checkpoint_file(directory: Union[str, os.PathLike], key: str) -> str:
    """The deterministic checkpoint path for logical run ``key``.

    The filename embeds a sanitised prefix of the key (human-greppable) and
    a hash of the full key (collision-proof across keys that sanitise
    alike), so every process — the original run, a resumed run, a journal
    pointer written at dispatch — computes the same path without
    coordination.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", key)[:80] or "run"
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return os.path.join(os.fspath(directory), f"{safe}-{digest}.ckpt")


def _checkpoint_spec(checkpoint_every) -> Tuple[Optional[int],
                                                Optional[float]]:
    """Normalise ``checkpoint_every`` to ``(gate_interval, seconds_interval)``.

    An ``int`` checkpoints every N gates, a ``float`` every S wall-clock
    seconds, a 2-tuple ``(gates, seconds)`` on whichever triggers first
    (either element may be ``None``).
    """
    if isinstance(checkpoint_every, bool):
        raise ValueError("checkpoint_every must be an int (gates), float "
                         "(seconds) or (gates, seconds) tuple, not a bool")
    if isinstance(checkpoint_every, int):
        gates, seconds = checkpoint_every, None
    elif isinstance(checkpoint_every, float):
        gates, seconds = None, checkpoint_every
    elif isinstance(checkpoint_every, tuple) and len(checkpoint_every) == 2:
        gates, seconds = checkpoint_every
    else:
        raise ValueError("checkpoint_every must be an int (gates), float "
                         "(seconds) or (gates, seconds) tuple")
    if gates is not None and (isinstance(gates, bool)
                              or not isinstance(gates, int) or gates <= 0):
        raise ValueError("checkpoint gate interval must be a positive int")
    if seconds is not None and not (isinstance(seconds, (int, float))
                                    and not isinstance(seconds, bool)
                                    and seconds > 0):
        raise ValueError("checkpoint seconds interval must be positive")
    if gates is None and seconds is None:
        raise ValueError("checkpoint_every=(None, None) disables nothing — "
                         "pass checkpoint_every=None instead")
    return gates, None if seconds is None else float(seconds)


class _Checkpointer:
    """Gate-boundary checkpoint writer for one :func:`run` invocation.

    Rides the limit enforcer's ``after_gate`` hook (after the budget poll,
    so a timed-out or cancelled run never writes on the way out) and
    rewrites one crash-safe snapshot at ``path`` whenever the gate-count or
    wall-clock interval elapses.  The snapshot's ``extra`` carries the
    logical ``key``, the circuit ``fingerprint`` and ``gates_done``, which
    is everything a resuming run needs to validate the file against its
    own request before trusting it.
    """

    def __init__(self, instance, path: str, key: str, fingerprint: str,
                 gate_interval: Optional[int],
                 seconds_interval: Optional[float]):
        self.instance = instance
        self.path = path
        self.key = key
        self.fingerprint = fingerprint
        self.gate_interval = gate_interval
        self.seconds_interval = seconds_interval
        self.gates_done = 0
        self.written = 0
        self._last_gates = 0
        self._last_time = time.perf_counter()

    def seed_depth(self, depth: int) -> None:
        """Start gate accounting at ``depth`` (checkpoint/session resume)."""
        self.gates_done = depth
        self._last_gates = depth

    def after_gate(self) -> None:
        self.gates_done += 1
        due = (self.gate_interval is not None
               and self.gates_done - self._last_gates >= self.gate_interval)
        if not due and self.seconds_interval is not None:
            due = (time.perf_counter() - self._last_time
                   >= self.seconds_interval)
        if not due:
            return
        if self.instance.export_snapshot(self.path, extra={
                "key": self.key, "fingerprint": self.fingerprint,
                "gates_done": self.gates_done}):
            self.written += 1
        self._last_gates = self.gates_done
        self._last_time = time.perf_counter()

    def discard(self) -> None:
        """Remove the checkpoint file (the run reached a result; the
        snapshot is now a stale prefix of a finished computation)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


def _materialise_hit(hit: RunResult, circuit: QuantumCircuit,
                     requested_engine: str, elapsed: float) -> RunResult:
    """Rebrand a cache hit as the answer to *this* request.

    The stored entry keeps the populating run's identity fields; the hit
    reports the requesting circuit's name and gate count (two circuits can
    share a fingerprint across a SWAP-expansion representation choice), the
    caller's engine request string, and the actual (near-zero) service
    time.  Every deterministic field is untouched.
    """
    hit.circuit_name = circuit.name
    hit.num_qubits = circuit.num_qubits
    hit.num_gates = circuit.num_gates
    hit.requested_engine = requested_engine
    hit.elapsed_seconds = elapsed
    return hit


def run(circuit: QuantumCircuit, engine: str = AUTO_ENGINE,
        limits: Optional[ResourceLimits] = None,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        reorder: Union[bool, int, None] = None,
        substrate: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        sessions: Optional[SessionPool] = None,
        cancel=None,
        checkpoint_every=None,
        checkpoint_dir: Union[str, os.PathLike, None] = None,
        checkpoint_key: Optional[str] = None) -> RunResult:
    """Run ``circuit`` on ``engine`` under ``limits``; classify the outcome.

    ``engine`` may be a canonical name (``"bitslice"``, ``"qmdd"``,
    ``"statevector"``, ``"stabilizer"``), a registered alias (``"bdd"``,
    ``"ddsim"``, ``"dense"``, ``"chp"``, ...), or ``"auto"`` to let the
    registry pick by capability.  After the circuit is applied the engine
    answers one final probability query (the all-zeros outcome on the
    measured qubits, or on all qubits when the circuit marks none), so the
    measured runtime includes the measurement machinery exactly as in the
    paper's runs.

    ``shots=N`` additionally samples ``N`` measurement outcomes into
    ``RunResult.counts``: static circuits sample the final state exactly by
    conditional-probability descent (cost scales with *distinct* outcomes,
    not with ``N``); dynamic circuits re-execute once per shot so classical
    feedback sees fresh collapse outcomes (such trajectory runs report
    their distribution through ``counts`` only — ``final_probability`` is
    ``None``, since the engine ends in one shot's collapsed state).  With a
    ``seed`` the counts are
    reproducible — identical across repeated runs and across serial vs
    parallel sweeps, and identical *across engines* wherever the engines
    agree on the distribution (e.g. Clifford circuits), because every
    engine shares one descent and RNG protocol
    (:mod:`repro.engines.sampling`).

    ``reorder`` enables growth-triggered dynamic reordering on engines that
    support it (``Capabilities.supports_reordering`` — the bit-sliced BDD
    engine sifts its variables in place once the node store passes the
    threshold): ``True`` uses
    :data:`~repro.engines.base.DEFAULT_AUTO_REORDER_THRESHOLD`, an integer
    sets the threshold directly.  Engines without reordering ignore the
    flag, so mixed-engine sweeps can pass it uniformly; reordering never
    changes an engine's results (probabilities and fixed-seed counts are
    invariant), only its node counts and timings.

    ``substrate`` selects the node-storage backend on engines that support
    it (``Capabilities.supports_compiled_substrate`` — the bit-sliced
    engine's ``dict`` / ``array`` / ``compiled`` / ``auto`` BDD backends,
    see :mod:`repro.bdd.substrate`).  Every backend produces node-for-node
    identical DAGs, so the knob changes timings only — which is why it is
    deliberately *excluded* from the result-cache key and from session-pool
    matching: a cached or resumed answer is valid regardless of the backend
    that produced it.  Engines without the capability ignore the flag, so
    mixed-engine sweeps can pass it uniformly.

    ``cache`` memoises finished results: a request whose
    :func:`~repro.cache.result_cache.result_cache_key` matches a stored
    entry is answered from the cache without touching an engine (the hit
    carries ``extra["cache_hit"] = 1`` and this request's actual service
    time; every deterministic field replays the cold run verbatim).
    Unseeded sampling requests bypass the cache in both directions, and
    only ``ok`` / ``unsupported`` outcomes are stored — TO/MO depend on
    wall-clock scheduling.

    ``sessions`` enables gate-sequence **prefix reuse** on engines
    declaring ``Capabilities.supports_prefix_resume`` (the bit-sliced
    engine): when the circuit's gate stream extends a pool-retained
    sequence, the engine resumes from the stored slice roots and executes
    only the suffix (``extra["resumed_from_depth"]`` records the skipped
    depth), and successful static runs deposit their final state back into
    the pool.  Dynamic circuits never match or deposit — collapse makes
    their states trajectory-dependent.

    ``cancel`` (any object with ``is_set()``, e.g. a ``threading.Event``)
    enables cooperative cancellation: the limit enforcer polls the token
    between gates, and a set token raises
    :class:`~repro.exceptions.JobCancelledError` *out of this function* —
    cancellation is a fact about the request, not an outcome class of the
    run, so no :class:`RunResult` is fabricated.  Any held session lease is
    released on the way out (the ``repro.service`` scheduler relies on
    this to cancel queued and running jobs without poisoning the session
    pool).

    ``checkpoint_every`` makes the run **crash-safe** on engines declaring
    ``Capabilities.supports_snapshots`` (the bit-sliced engine): an ``int``
    writes a versioned, checksummed snapshot of the live state to
    ``checkpoint_dir`` every N gates, a ``float`` every S wall-clock
    seconds, a ``(gates, seconds)`` tuple on whichever elapses first.  A
    later identical request finding a valid checkpoint (same circuit
    fingerprint, plausible depth) restores it and executes only the
    unexecuted suffix — with the same ``seed`` the resumed result's
    ``to_dict(timings=False)`` is byte-identical to an uninterrupted run,
    sampled counts included.  A torn or corrupt checkpoint is *skipped*
    (``extra["checkpoint_corrupt_skipped"]``), never fatal and never
    restored as garbage; engines without the capability, and dynamic
    circuits (whose trajectories are collapse-dependent), degrade
    gracefully to ordinary uncheckpointed runs.  ``checkpoint_key`` names
    the logical run (defaulting to the circuit fingerprint) — sweeps pass
    their journal task key so each task owns one file; the file is removed
    once the run reaches ``ok``, and kept on TO/MO so a retry under a
    bigger budget resumes instead of restarting.  Provenance lands in
    ``extra`` (``resumed_from_checkpoint``, ``checkpoints_written``),
    excluded from deterministic serialisation.  See
    ``docs/checkpointing.md``.
    """
    limits = limits or ResourceLimits()
    if shots is not None and shots < 0:
        raise ValueError("shots must be non-negative")
    entered = time.perf_counter()
    resolved = resolve_engine(engine, circuit, limits)
    cache_key = None
    if cache is not None and cacheable_request(shots, seed):
        cache_key = result_cache_key(circuit, resolved, seed, shots, reorder,
                                     limits)
        hit = cache.lookup(cache_key)
        if hit is not None:
            return _materialise_hit(hit, circuit, engine,
                                    time.perf_counter() - entered)
    instance = create_engine(resolved)
    if reorder is not None and reorder is not False:
        threshold = (DEFAULT_AUTO_REORDER_THRESHOLD if reorder is True
                     else int(reorder))
        instance.configure_reordering(threshold)
    if substrate is not None:
        instance.configure_substrate(substrate)
    ckpt: Optional[_Checkpointer] = None
    resume_depth: Optional[int] = None
    corrupt_skipped = 0
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        gate_interval, seconds_interval = _checkpoint_spec(checkpoint_every)
        if (instance.capabilities.supports_snapshots
                and not circuit.has_dynamic_ops()):
            from repro.cache.fingerprint import circuit_fingerprint
            from repro.snapshot import SnapshotCorruptError

            fingerprint = circuit_fingerprint(circuit)
            key = checkpoint_key if checkpoint_key is not None else fingerprint
            os.makedirs(checkpoint_dir, exist_ok=True)
            path = checkpoint_file(checkpoint_dir, key)
            ckpt = _Checkpointer(instance, path, key, fingerprint,
                                 gate_interval, seconds_interval)
            if os.path.exists(path):
                try:
                    loaded = instance.restore_snapshot(path)
                except SnapshotCorruptError:
                    # A torn or bit-flipped checkpoint is skipped, never
                    # fatal and never restored as garbage: the run simply
                    # starts cold and overwrites it at the next interval.
                    corrupt_skipped = 1
                else:
                    depth = (loaded.get("gates_done")
                             if isinstance(loaded, dict) else None)
                    if (isinstance(loaded, dict)
                            and loaded.get("fingerprint") == fingerprint
                            and isinstance(depth, int)
                            and not isinstance(depth, bool)
                            and 0 <= depth <= circuit.num_gates):
                        resume_depth = depth
                        ckpt.seed_depth(depth)
                    # A stale checkpoint (another circuit's, or deeper than
                    # this circuit) is ignored; prepare() below discards
                    # the restored state.
    prefix_eligible = (sessions is not None
                       and instance.capabilities.supports_prefix_resume
                       and not circuit.has_dynamic_ops())
    tokens = gate_tokens(circuit) if prefix_eligible else ()
    norm_reorder = normalise_reorder(reorder)
    lease: Optional[SessionLease] = None
    if prefix_eligible and resume_depth is None:
        # A valid checkpoint beats a session match: it resumes *this exact
        # run* at full depth, not a shared prefix.
        lease = sessions.match(circuit.num_qubits, tokens, norm_reorder)
    rng = None
    if shots is not None or circuit.has_dynamic_ops():
        import numpy as np

        rng = np.random.default_rng(seed)
    start = time.perf_counter()
    status = STATUS_OK
    detail = ""
    peak_memory_nodes = 0
    final_probability: Optional[float] = None
    counts: Optional[Dict[int, int]] = None
    extra = {}
    counts_width: Optional[int] = None
    trajectory_mode = bool(shots) and circuit.has_dynamic_ops()
    try:
        try:
            if trajectory_mode:
                counts = _sample_trajectories(instance, circuit, limits,
                                              shots, rng, cancel=cancel)
                counts_width = max(circuit.num_clbits, 1)
            else:
                enforcer = LimitEnforcer(instance, limits, cancel_token=cancel)
                after_gate = ckpt.after_gate if ckpt is not None else None
                if resume_depth is not None:
                    # The checkpoint restore above already installed the
                    # prefix's exact state (gate and peak-node accounting
                    # included); drive only the unexecuted suffix.
                    enforcer.execute_prepared(
                        _suffix_circuit(circuit, resume_depth), rng=rng,
                        after_gate=after_gate)
                elif lease is not None:
                    # Resume from the leased fork and execute only the
                    # unexecuted suffix — the fork carries the prefix's
                    # cumulative gate and peak-node accounting, so the
                    # statistics below match the equivalent cold run.
                    instance.resume_session(lease.fork,
                                            gates_already_applied=lease.depth)
                    if ckpt is not None:
                        ckpt.seed_depth(lease.depth)
                    enforcer.execute_prepared(
                        _suffix_circuit(circuit, lease.depth), rng=rng,
                        after_gate=after_gate)
                else:
                    enforcer.execute(circuit, rng=rng, after_gate=after_gate)
                if shots is not None:
                    counts, counts_width = _sample_static(instance, circuit,
                                                          shots, rng)
            if counts is None and shots is not None:
                counts = {}
            if not trajectory_mode:
                # After per-shot trajectory sampling the engine holds the
                # *last* shot's fully collapsed state, on which the
                # all-zeros query would be a random 0/1 artifact — so
                # trajectory runs report their distribution through
                # ``counts`` only.
                qubits = final_query_qubits(circuit)
                final_probability = instance.probability(qubits,
                                                         [0] * len(qubits))
            stats = instance.statistics()
            peak_memory_nodes = int(stats.get("peak_memory_nodes", 0))
            # Engine-specific extras only: stats duplicating a first-class
            # RunResult field are dropped (notably the engine-internal
            # elapsed_seconds, which differs slightly from the front door's
            # clock and would otherwise shadow it in serialised reports).
            extra = {key: value for key, value in stats.items()
                     if key not in ("peak_memory_nodes", "elapsed_seconds",
                                    "num_qubits")
                     and isinstance(value, (int, float))}
            if lease is not None:
                extra["resumed_from_depth"] = lease.depth
            if resume_depth is not None:
                extra["resumed_from_checkpoint"] = resume_depth
        except SimulationTimeout as exc:
            status, detail = STATUS_TIMEOUT, str(exc)
        except (SimulationMemoryExceeded, MemoryError) as exc:
            status, detail = STATUS_MEMORY, str(exc)
        except NumericalError as exc:
            status, detail = STATUS_ERROR, str(exc)
        except UnsupportedGateError as exc:
            status, detail = STATUS_UNSUPPORTED, str(exc)
        except RecursionError as exc:  # pragma: no cover - defensive
            status, detail = STATUS_CRASH, f"recursion depth exceeded: {exc}"
        elapsed = time.perf_counter() - start
        if (status == STATUS_OK and limits.max_seconds is not None
                and elapsed > limits.max_seconds):
            # The engine finished right at the edge of the budget; classify
            # as timeout so the tables stay consistent with the budget.
            status = STATUS_TIMEOUT
            detail = (f"completed in {elapsed:.1f}s, over the "
                      f"{limits.max_seconds:.1f}s budget")
        if ckpt is not None:
            if ckpt.written:
                extra["checkpoints_written"] = ckpt.written
            if corrupt_skipped:
                extra["checkpoint_corrupt_skipped"] = corrupt_skipped
            if status == STATUS_OK:
                # The run has its answer; the checkpoint is a stale prefix.
                # TO/MO keep theirs — a retry under a bigger budget resumes
                # from the deepest checkpoint instead of restarting.
                ckpt.discard()
        if status == STATUS_OK and prefix_eligible:
            exported = instance.export_session()
            if exported is not None:
                payload, generation_probe = exported
                # A resumed run's state shares its manager with the matched
                # entry, so the deposit reuses the lease's chain lock; cold
                # runs start a fresh serialisation chain.
                sessions.deposit(
                    circuit.num_qubits, tokens, norm_reorder, payload,
                    generation_probe,
                    chain_lock=lease.chain_lock if lease is not None else None)
    finally:
        if lease is not None:
            lease.release()
    result = RunResult(
        engine=resolved,
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates,
        status=status,
        elapsed_seconds=elapsed,
        peak_memory_nodes=peak_memory_nodes,
        final_probability=final_probability,
        detail=detail,
        extra=extra,
        requested_engine=engine,
        shots=shots,
        seed=seed,
        counts=counts,
        counts_width=counts_width,
    )
    if cache_key is not None:
        cache.store(cache_key, result)
    return result


def derive_task_seed(seed: Optional[int], index: int) -> Optional[int]:
    """Deterministic per-task seed for sweep task ``index``.

    Computed from the task's position *before* dispatch, so serial and
    parallel executions of the same task list see identical seeds (and
    therefore identical sampled counts).
    """
    if seed is None:
        return None
    return seed * 1_000_003 + index


def _run_task(task: Tuple[str, QuantumCircuit, Optional[int], Optional[int]],
              limits: Optional[ResourceLimits],
              reorder: Union[bool, int, None] = None,
              substrate: Optional[str] = None,
              checkpoint_every=None,
              checkpoint_dir=None,
              checkpoint_key: Optional[str] = None) -> RunResult:
    """Process-pool worker: one (engine, circuit, shots, seed) task."""
    engine, circuit, shots, seed = task
    return run(circuit, engine=engine, limits=limits, shots=shots, seed=seed,
               reorder=reorder, substrate=substrate,
               checkpoint_every=checkpoint_every,
               checkpoint_dir=checkpoint_dir, checkpoint_key=checkpoint_key)


def run_tasks(tasks: Sequence[Tuple[str, QuantumCircuit]],
              limits: Optional[ResourceLimits] = None,
              jobs: int = 1,
              shots: Optional[int] = None,
              seed: Optional[int] = None,
              reorder: Union[bool, int, None] = None,
              substrate: Optional[str] = None,
              cache: Optional[ResultCache] = None,
              sessions: Optional[SessionPool] = None,
              journal=None,
              cancel=None,
              checkpoint_every=None,
              checkpoint_dir: Union[str, os.PathLike, None] = None
              ) -> List[RunResult]:
    """Execute (engine, circuit) tasks, optionally on process workers.

    ``jobs <= 1`` runs serially in-process.  With ``jobs > 1`` the tasks are
    distributed over a :class:`~concurrent.futures.ProcessPoolExecutor`;
    results are returned in task order either way, so downstream grouping
    and table rendering are independent of worker scheduling.

    ``shots`` / ``seed`` apply to every task; each task samples with its own
    seed derived via :func:`derive_task_seed` from its position, so the
    counts of every task — and the ``to_dict(timings=False)``
    serialisations — are byte-identical between serial and parallel runs.

    ``reorder`` applies uniformly to every task (engines without reordering
    support ignore it), exactly like :func:`run`'s flag; so does
    ``substrate`` (a performance-only backend choice, excluded from cache
    and journal keys because every backend produces identical results).

    ``cache`` / ``sessions`` amortise repeated work exactly as in
    :func:`run`.  On the parallel path the cache is consulted and filled in
    the *parent* process (hits never dispatch a worker, duplicate keys
    within one task list dispatch a single worker and share its stored
    result), while ``sessions`` is serial-only and ignored under
    ``jobs > 1`` — live BDD session state cannot cross process boundaries.

    ``journal`` (a path or a :class:`~repro.resilience.journal.SweepJournal`)
    makes the task list **crash-safe**: every terminal result is appended
    to the manifest before the next task dispatches, and re-running the
    same task list against the same manifest replays journalled tasks
    verbatim (``extra["journal_replayed"]``, a provenance marker excluded
    from deterministic serialisation) and executes only the missing ones —
    so a killed sweep, resumed, produces ``to_dict(timings=False)`` output
    byte-identical to an uninterrupted run.  Journalling composes with
    ``cache`` (hits and aliases are journalled too) and with ``jobs > 1``
    (journalled tasks never dispatch a worker; completions are journalled
    in deterministic task order as futures resolve).

    ``cancel`` cancels the task list cooperatively, exactly as in
    :func:`run`: the serial path polls the token between gates, the
    parallel path between task dispatches (an in-flight process worker
    finishes its current task before the cancellation surfaces).  A
    journalled sweep that is cancelled — or killed outright — resumes from
    its manifest.

    ``checkpoint_every`` / ``checkpoint_dir`` checkpoint each *in-flight*
    task mid-circuit exactly as in :func:`run` — complementing the
    journal's per-task granularity with per-gate granularity: a sweep
    SIGKILLed 4 000 gates into task 7 resumes by replaying tasks 0-6 from
    the manifest *and* restoring task 7's snapshot rather than re-running
    its prefix.  Every task gets its own deterministic checkpoint file,
    keyed by the same ``index:engine:fingerprint:...`` key the journal
    uses; with a journal, pointer records
    (:meth:`~repro.resilience.journal.SweepJournal.record_checkpoint`) make
    the manifest name each in-flight task's snapshot.  The resumed sweep's
    deterministic serialisation stays byte-identical to an uninterrupted
    run.

    Engines registered at import time (everything in :mod:`repro.engines`
    and any module imported before the pool starts) are available in the
    workers; engines registered dynamically inside a ``__main__`` script are
    only visible to forked workers (the POSIX default), not spawned ones.
    """
    if checkpoint_every is not None and checkpoint_dir is None:
        raise ValueError("checkpoint_every requires checkpoint_dir")
    checkpointing = checkpoint_every is not None
    specs = [(engine, circuit, shots, derive_task_seed(seed, index))
             for index, (engine, circuit) in enumerate(tasks)]
    results: List[Optional[RunResult]] = [None] * len(specs)
    task_keys: List[Optional[str]] = [None] * len(specs)
    if journal is not None or checkpointing:
        # Imported lazily: journalling is opt-in and the resilience package
        # sits above the engines in the dependency order.  Checkpointing
        # borrows the journal's task key so each task owns one
        # deterministic checkpoint file across crashed and resumed sweeps.
        from repro.resilience.journal import open_journal, task_key

        for index, (engine_name, circuit, task_shots, task_seed) \
                in enumerate(specs):
            task_keys[index] = task_key(index, engine_name, circuit,
                                        task_shots, task_seed, reorder)
    if journal is not None:
        journal = open_journal(journal)
        for index in range(len(specs)):
            results[index] = journal.lookup(task_keys[index])

    def note_dispatch(index: int) -> None:
        # A pointer record lands in the manifest before the task runs, so
        # a crash mid-task leaves the journal naming the snapshot that the
        # resumed sweep will restore instead of re-running the prefix.
        if journal is not None and checkpointing:
            journal.record_checkpoint(
                task_keys[index],
                checkpoint_file(checkpoint_dir, task_keys[index]))

    if jobs <= 1 or len(specs) <= 1:
        for index, (engine_name, circuit, task_shots, task_seed) \
                in enumerate(specs):
            if results[index] is not None:
                continue
            note_dispatch(index)
            result = run(circuit, engine=engine_name, limits=limits,
                         shots=task_shots, seed=task_seed, reorder=reorder,
                         substrate=substrate, cache=cache, sessions=sessions,
                         cancel=cancel,
                         checkpoint_every=checkpoint_every,
                         checkpoint_dir=checkpoint_dir,
                         checkpoint_key=task_keys[index])
            if journal is not None:
                journal.record(task_keys[index], result)
            results[index] = result
        return results
    keys: List[Optional[object]] = [None] * len(specs)
    pending: List[int] = []
    aliases: List[Tuple[int, object]] = []
    if cache is not None:
        owners: Dict[object, int] = {}
        for index, (engine_name, circuit, task_shots, task_seed) \
                in enumerate(specs):
            if results[index] is not None:
                continue  # journal replay: never dispatched
            key = None
            if cacheable_request(task_shots, task_seed):
                try:
                    resolved = resolve_engine(engine_name, circuit,
                                              limits or ResourceLimits())
                    key = result_cache_key(circuit, resolved, task_seed,
                                           task_shots, reorder, limits)
                except Exception:
                    # Engine resolution failures reproduce identically in
                    # the worker, where they classify the task's outcome.
                    key = None
            if key is None:
                pending.append(index)
                continue
            hit = cache.lookup(key)
            if hit is not None:
                results[index] = _materialise_hit(hit, circuit, engine_name,
                                                  0.0)
                if journal is not None:
                    journal.record(task_keys[index], results[index])
                continue
            if key in owners:
                aliases.append((index, key))
                continue
            owners[key] = index
            keys[index] = key
            pending.append(index)
    else:
        pending = [index for index in range(len(specs))
                   if results[index] is None]
    if pending:
        if cancel is not None and cancel.is_set():
            raise JobCancelledError("cancelled before parallel dispatch")
        for index in pending:
            note_dispatch(index)
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [(index, pool.submit(_run_task, specs[index], limits,
                                           reorder, substrate,
                                           checkpoint_every, checkpoint_dir,
                                           task_keys[index]))
                       for index in pending]
            for index, future in futures:
                result = future.result()
                if keys[index] is not None:
                    cache.store(keys[index], result)
                if journal is not None:
                    journal.record(task_keys[index], result)
                results[index] = result
    for index, key in aliases:
        engine_name, circuit, _, _ = specs[index]
        hit = cache.lookup(key)
        if hit is not None:
            results[index] = _materialise_hit(hit, circuit, engine_name, 0.0)
        else:
            # The owning task finished with a non-cacheable outcome (TO/MO);
            # reproduce it for this request the ordinary way.
            results[index] = _run_task(specs[index], limits, reorder,
                                       substrate, checkpoint_every,
                                       checkpoint_dir, task_keys[index])
        if journal is not None:
            journal.record(task_keys[index], results[index])
    return results


def run_sweep(circuits: Sequence[QuantumCircuit],
              engines: Sequence[str] = (AUTO_ENGINE,),
              limits: Optional[ResourceLimits] = None,
              jobs: int = 1,
              shots: Optional[int] = None,
              seed: Optional[int] = None,
              reorder: Union[bool, int, None] = None,
              substrate: Optional[str] = None,
              cache: Optional[ResultCache] = None,
              sessions: Optional[SessionPool] = None,
              journal=None,
              cancel=None,
              checkpoint_every=None,
              checkpoint_dir: Union[str, os.PathLike, None] = None
              ) -> List[RunResult]:
    """Run every circuit on every engine (circuit-major order).

    Returns ``len(circuits) * len(engines)`` results ordered as
    ``(circuit[0], engines...), (circuit[1], engines...), ...`` —
    deterministic regardless of ``jobs``.  ``shots`` / ``seed`` sample
    measurement counts per run exactly as in :func:`run_tasks`, ``reorder``
    enables dynamic reordering on capable engines per run, ``substrate``
    selects the node-storage backend on capable engines (performance-only;
    results are backend-invariant), ``cache`` /
    ``sessions`` amortise repeated work across the grid, ``journal``
    makes the grid crash-safe (a killed sweep resumes byte-identically
    from its manifest), ``checkpoint_every`` / ``checkpoint_dir``
    additionally checkpoint each in-flight run mid-circuit (a SIGKILLed
    grid resumes the interrupted task from its snapshot rather than
    re-running its prefix), and ``cancel`` cancels the grid cooperatively
    — all exactly as in :func:`run_tasks`.
    """
    tasks = [(engine, circuit) for circuit in circuits for engine in engines]
    return run_tasks(tasks, limits=limits, jobs=jobs, shots=shots, seed=seed,
                     reorder=reorder, substrate=substrate, cache=cache,
                     sessions=sessions, journal=journal, cancel=cancel,
                     checkpoint_every=checkpoint_every,
                     checkpoint_dir=checkpoint_dir)

"""The normalised :class:`RunResult` record and outcome classification.

One canonical schema for every engine: ``status`` (the paper's outcome
classes), ``elapsed_seconds``, ``peak_memory_nodes``, ``final_probability``
and an ``extra`` mapping carrying engine-specific counters (e.g. the BDD
substrate's ``substrate_*`` series).  The pre-redesign per-engine key
remapping (``peak_bdd_nodes`` vs ``peak_dd_nodes`` vs ``tableau_bytes``)
lives in the engine adapters now; nothing downstream of
:func:`repro.engines.frontdoor.run` ever sees an engine-specific spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.engines.base import BYTES_PER_NODE

#: Outcome classes, matching the paper's table annotations.
STATUS_OK = "ok"
STATUS_TIMEOUT = "TO"
STATUS_MEMORY = "MO"
STATUS_ERROR = "error"
STATUS_UNSUPPORTED = "unsupported"
STATUS_CRASH = "crash"

ALL_STATUSES = (STATUS_OK, STATUS_TIMEOUT, STATUS_MEMORY, STATUS_ERROR,
                STATUS_UNSUPPORTED, STATUS_CRASH)

#: ``extra`` keys that describe *how much work the process performed*, not
#: what the run computed: cache / prefix-resume provenance markers, the
#: substrate's computed-table and GC counters, live-node gauges of a
#: (possibly shared) manager, and the applied-gate tally.  Result caching
#: and prefix resume legitimately change all of these while leaving every
#: semantic output untouched, so ``to_dict(timings=False)`` — the
#: serialisation pinned byte-identical between cold, cached and resumed
#: runs — excludes them alongside the wall-clock entries.
PROVENANCE_EXTRA_KEYS = frozenset({
    "cache_hit",
    "resumed_from_depth",
    "manager_live_nodes",
    "gates_applied",
    "journal_replayed",
    "resumed_from_checkpoint",
    "checkpoints_written",
    "checkpoint_corrupt_skipped",
})

#: Prefix marking the BDD substrate's per-manager work counters in
#: ``extra`` (computed-table hits / misses, unique-table traffic, GC and
#: reorder activity) — work accounting, excluded with
#: :data:`PROVENANCE_EXTRA_KEYS` from the deterministic serialisation.
WORK_COUNTER_PREFIX = "substrate_"


def _deterministic_extra_key(key: str) -> bool:
    """True when an ``extra`` entry belongs in the deterministic
    serialisation (no wall-clock, work-counter or provenance entries)."""
    return not (key.endswith("_seconds") or key in PROVENANCE_EXTRA_KEYS
                or key.startswith(WORK_COUNTER_PREFIX))


@dataclass
class RunResult:
    """Outcome of one (engine, circuit) run in the canonical stats schema."""

    engine: str
    circuit_name: str
    num_qubits: int
    num_gates: int
    status: str
    elapsed_seconds: float = 0.0
    peak_memory_nodes: int = 0
    final_probability: Optional[float] = None
    detail: str = ""
    extra: Dict[str, float] = field(default_factory=dict)
    #: What the caller asked for ("auto" runs record the request here and
    #: the resolved engine in :attr:`engine`).
    requested_engine: str = ""
    #: Number of measurement shots requested (``None`` = no sampling).
    shots: Optional[int] = None
    #: RNG seed the run was executed with (``None`` = unseeded).
    seed: Optional[int] = None
    #: Outcome counts when ``shots`` were requested.  Keys are classical
    #: register values when the circuit measures into clbits (clbit 0 =
    #: least-significant bit, the OpenQASM convention); for circuits without
    #: measurement instructions they are basis-state indices (qubit 0 = most
    #: significant bit, the paper's convention).
    counts: Optional[Dict[int, int]] = None
    #: Bit width of the sampled register (the classical register width, or
    #: the number of sampled qubits for circuits without measurement
    #: instructions) — what :meth:`counts_bitstrings` pads to, so outcomes
    #: with leading-zero high bits keep their full width.
    counts_width: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        """True when the run completed without TO/MO/error."""
        return self.status == STATUS_OK

    @property
    def memory_mb(self) -> float:
        """Approximate memory footprint in MB (node count based)."""
        return self.peak_memory_nodes * BYTES_PER_NODE / (1024.0 * 1024.0)

    # -- compatibility aliases (pre-redesign field names) ----------------- #
    @property
    def runtime_seconds(self) -> float:
        """Deprecated alias of :attr:`elapsed_seconds`."""
        return self.elapsed_seconds

    @property
    def memory_nodes(self) -> int:
        """Deprecated alias of :attr:`peak_memory_nodes`."""
        return self.peak_memory_nodes

    # -- sampling helpers ------------------------------------------------- #
    def counts_bitstrings(self, width: Optional[int] = None) -> Dict[str, int]:
        """The :attr:`counts` re-keyed as zero-padded bitstrings.

        Classical-register keys render with clbit 0 as the right-most
        character (basis-state keys with qubit 0 left-most) — both simply
        "most-significant bit first".  ``width`` defaults to
        :attr:`counts_width` (the sampled register's full width, so
        always-zero high bits are not truncated).  Returns an empty dict
        when no shots were sampled.
        """
        from repro.engines.sampling import counts_to_bitstrings

        if not self.counts:
            return {}
        return counts_to_bitstrings(self.counts,
                                    width if width is not None
                                    else self.counts_width)

    # -- serialisation --------------------------------------------------- #
    def to_dict(self, timings: bool = True) -> Dict[str, object]:
        """Plain-dict form of the result.

        With ``timings=False`` every wall-clock-derived entry (the
        ``elapsed_seconds`` field, any ``*_seconds`` extra, and the free-form
        ``detail`` text, which embeds elapsed times in TO messages) is
        dropped, along with the work / provenance extras
        (:data:`PROVENANCE_EXTRA_KEYS` and the ``substrate_*`` counters),
        leaving only deterministic fields: two runs of the same
        (engine, circuit, limits, shots, seed) tuple — serial or parallel,
        any worker, cold or served from a :class:`repro.cache.ResultCache`
        hit or a prefix resume — produce byte-identical serialisations of
        this form (sampled ``counts`` included, provided a ``seed`` was
        given).
        """
        data: Dict[str, object] = {
            "engine": self.engine,
            "circuit": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "status": self.status,
            "peak_memory_nodes": self.peak_memory_nodes,
            "memory_mb": self.memory_mb,
            "final_probability": self.final_probability,
        }
        if self.shots is not None:
            data["shots"] = self.shots
            data["seed"] = self.seed
            data["counts_width"] = self.counts_width
            data["counts"] = {str(key): value
                              for key, value in sorted((self.counts or {}).items())}
        if timings:
            data["elapsed_seconds"] = self.elapsed_seconds
            data["detail"] = self.detail
        extra = {key: value for key, value in sorted(self.extra.items())
                 if timings or _deterministic_extra_key(key)}
        data["extra"] = extra
        return data

    # -- wire codec (service protocol, sweep journal) --------------------- #
    def to_wire(self) -> Dict[str, object]:
        """Every raw field as a JSON-safe dict (counts keys become strings —
        JSON objects cannot have integer keys).  Unlike :meth:`to_dict` this
        is a lossless transport form: :meth:`from_wire` rebuilds an
        equivalent result, and the round trip reproduces
        ``to_dict(timings=False)`` byte-identically.  Both the service wire
        protocol and the crash-safe sweep journal serialise through here.
        """
        data: Dict[str, object] = {
            "engine": self.engine,
            "circuit_name": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "status": self.status,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_nodes": self.peak_memory_nodes,
            "final_probability": self.final_probability,
            "detail": self.detail,
            "extra": dict(self.extra),
            "requested_engine": self.requested_engine,
            "shots": self.shots,
            "seed": self.seed,
            "counts_width": self.counts_width,
        }
        if self.counts is not None:
            data["counts"] = {str(key): value
                              for key, value in self.counts.items()}
        return data

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_wire` output; raises
        ``ValueError`` on a malformed payload."""
        counts = data.get("counts")
        if counts is not None:
            counts = {int(key): int(value) for key, value in counts.items()}
        try:
            return cls(
                engine=data["engine"],
                circuit_name=data["circuit_name"],
                num_qubits=int(data["num_qubits"]),
                num_gates=int(data["num_gates"]),
                status=data["status"],
                elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
                peak_memory_nodes=int(data.get("peak_memory_nodes", 0)),
                final_probability=data.get("final_probability"),
                detail=str(data.get("detail", "")),
                extra=dict(data.get("extra") or {}),
                requested_engine=str(data.get("requested_engine", "")),
                shots=data.get("shots"),
                seed=data.get("seed"),
                counts=counts,
                counts_width=data.get("counts_width"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad result payload: {exc}") from exc


def summarise(results: Sequence[RunResult]) -> Dict[str, float]:
    """Aggregate a result list the way the paper's table rows do.

    Returns average runtime over successes, the failure counts per class and
    the average memory (MB) over all runs.
    """
    successes = [result for result in results if result.succeeded]
    summary = {
        "runs": len(results),
        "successes": len(successes),
        "avg_runtime": (sum(r.elapsed_seconds for r in successes) / len(successes)
                        if successes else float("nan")),
        "avg_memory_mb": (sum(r.memory_mb for r in results) / len(results)
                          if results else 0.0),
        "timeouts": sum(1 for r in results if r.status == STATUS_TIMEOUT),
        "memouts": sum(1 for r in results if r.status == STATUS_MEMORY),
        "errors": sum(1 for r in results if r.status == STATUS_ERROR),
        "unsupported": sum(1 for r in results if r.status == STATUS_UNSUPPORTED),
        "crashes": sum(1 for r in results if r.status == STATUS_CRASH),
    }
    # Substrate-instrumented engines report computed-table effectiveness in
    # their extras; surface the average hit rate next to the runtime columns.
    hit_rates = [r.extra["substrate_cache_hit_rate"] for r in successes
                 if "substrate_cache_hit_rate" in r.extra]
    if hit_rates:
        summary["avg_cache_hit_rate"] = sum(hit_rates) / len(hit_rates)
    return summary

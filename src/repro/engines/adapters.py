"""Adapters exposing the four native simulators through the Engine protocol.

The rich native classes (:class:`~repro.core.simulator.BitSliceSimulator`,
:class:`~repro.baselines.qmdd.QmddSimulator`,
:class:`~repro.baselines.statevector.StatevectorSimulator`,
:class:`~repro.baselines.stabilizer.StabilizerSimulator`) stay public and
fully featured; each adapter here is a thin lifecycle shim that

* constructs the native simulator in :meth:`prepare` *without* any budget
  plumbing (TO/MO enforcement is the
  :class:`~repro.engines.limits.LimitEnforcer`'s job now),
* normalises the statistics to the canonical schema — the historical
  per-engine peak-memory spellings (``peak_bdd_nodes`` / ``peak_dd_nodes`` /
  ``tableau_bytes``) are rewritten to ``peak_memory_nodes`` here and nowhere
  else, and
* answers the uniform joint-probability query (the stabilizer engine now
  answers the full multi-qubit query via the tableau rank method, like every
  other engine).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.baselines.qmdd import QmddSimulator
from repro.baselines.stabilizer import StabilizerSimulator
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.exceptions import UnsupportedGateError
from repro.core.simulator import BitSliceSimulator
from repro.engines.base import (
    ALL_GATE_KINDS,
    BYTES_PER_NODE,
    CLIFFORD_GATE_KINDS,
    Capabilities,
    Engine,
    dense_memory_nodes,
)
from repro.engines.limits import ResourceLimits
from repro.engines.registry import register_engine


def _reject_stream_dynamic(gate: Gate) -> None:
    """``RESET`` (and friends) are dynamic instructions interpreted by
    :mod:`repro.engines.dynamic`; they must never reach ``Engine.apply``,
    which only understands unitaries (``MEASURE`` markers stay no-ops for
    backwards compatibility)."""
    if gate.kind is GateKind.RESET:
        raise UnsupportedGateError(
            "reset is a dynamic instruction; run the circuit through "
            "Engine.run or the LimitEnforcer instead of applying it directly")


@register_engine("bitslice", aliases=("bdd", "sliqsim"))
class BitSliceEngine(Engine):
    """The paper's exact bit-sliced BDD engine."""

    capabilities = Capabilities(
        name="bitslice",
        label="Ours (bit-sliced BDD)",
        supported_gates=ALL_GATE_KINDS,
        exact=True,
        selection_priority=20,
        supports_reordering=True,
        supports_prefix_resume=True,
        supports_compiled_substrate=True,
        supports_snapshots=True,
        description="Exact algebraic amplitudes in bit-sliced BDDs "
                    "(SliQSim); unbounded qubit counts, memory scales with "
                    "state structure.",
    )

    def __init__(self) -> None:
        super().__init__()
        self._simulator: Optional[BitSliceSimulator] = None
        self._sampler_stats: dict = {}
        self._reorder_threshold: Optional[int] = None
        self._substrate: Optional[str] = None

    def configure_reordering(self, threshold: Optional[int]) -> bool:
        """Enable growth-triggered in-place BDD variable reordering: once
        the substrate's live node count passes ``threshold``, a sift runs
        at the next gate boundary (with geometric back-off; the
        ``substrate_reorder_*`` counters in :meth:`statistics` record the
        activity).  Takes effect at the next :meth:`prepare`."""
        self._reorder_threshold = threshold
        return True

    def configure_substrate(self, substrate: Optional[str]) -> bool:
        """Select the BDD node-storage backend (``dict`` / ``array`` /
        ``compiled`` / ``auto``) for the next :meth:`prepare`.  All backends
        produce node-for-node identical DAGs — this is purely a performance
        knob; the selection the manager actually resolved to shows up as the
        ``substrate_backend`` gauge in :meth:`statistics`."""
        self._substrate = substrate
        return True

    def prepare(self, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> None:
        super().prepare(circuit, limits)
        self._simulator = BitSliceSimulator(
            circuit.num_qubits, auto_reorder_threshold=self._reorder_threshold,
            substrate=self._substrate)
        self._sampler_stats = {}

    def export_session(self):
        """The live :class:`BitSliceSimulator` as a resumable session.

        The payload is the simulator itself (its ``fork()`` is the cheap
        immutable-sharing copy the pool's contract requires); the
        generation probe is the owning manager's ``cache_generation``, so a
        GC / reorder / explicit clear performed outside the session chain
        invalidates retained entries rather than being resumed over.
        """
        simulator = self._simulator
        if simulator is None:
            return None
        manager = simulator.state.manager
        return simulator, (lambda: manager.cache_generation)

    def resume_session(self, payload, gates_already_applied: int = 0) -> None:
        """Adopt a forked :class:`BitSliceSimulator` in place of
        :meth:`prepare`: the engine continues from the fork's state, with
        the gate counter seeded so ``statistics()`` reports the same
        ``gates_applied`` (and, via the fork's carried ``peak_nodes``, the
        same peak memory) as the equivalent cold run."""
        self._prepared_at = time.perf_counter()
        self._gates_applied = gates_already_applied
        self._simulator = payload
        self._sampler_stats = {}

    def export_snapshot(self, path: str, extra=None) -> bool:
        """Serialise the live :class:`BitSliceSimulator` to ``path``
        atomically (see :func:`repro.snapshot.dump_simulator`); the
        restored manager storage is column-for-column identical, which is
        what makes a resumed run byte-identical to an uninterrupted one.
        Returns ``False`` when nothing is prepared yet."""
        if self._simulator is None:
            return False
        from repro.snapshot import dump_simulator

        dump_simulator(self._simulator, path, extra=extra)
        return True

    def restore_snapshot(self, path: str):
        """Adopt the simulator snapshot at ``path`` in place of
        :meth:`prepare` and return the caller's ``extra`` dict.  A damaged
        file raises :class:`repro.snapshot.SnapshotCorruptError` and
        leaves the engine untouched."""
        from repro.snapshot import load_simulator

        simulator, extra = load_simulator(path)
        self._prepared_at = time.perf_counter()
        self._gates_applied = simulator.gates_applied
        self._simulator = simulator
        self._sampler_stats = {}
        return extra

    def apply(self, gate: Gate) -> None:
        _reject_stream_dynamic(gate)
        self._simulator.apply_gate(gate)
        self._count_gate(gate)

    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        return self._simulator.probability_of_outcome(qubits, bits)

    def collapse(self, qubit: int, outcome: int) -> None:
        self._simulator.measure_qubit(qubit, forced_outcome=outcome)

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None,
               rng=None):
        """Exact shot sampling by slice restriction (no hyper-function).

        Overrides the generic probability-query descent with
        :class:`repro.core.sampling.SliceSampler` — cofactor restrictions of
        the 4r slice BDDs per sampled bit, batched through the substrate's
        :class:`~repro.bdd.manager.BatchApplier`, with exact Gram-matrix
        probability masses — while honouring the same descent/RNG protocol,
        so counts agree bit-for-bit with every other engine at equal seeds.
        """
        from repro.core.sampling import SliceSampler
        from repro.engines.sampling import sample_by_descent

        if qubits is None:
            qubits = list(range(self.num_qubits))
        qubits = list(qubits)
        if rng is None:
            import numpy as np

            rng = np.random.default_rng()
        sampler = SliceSampler(self._simulator.state, qubits)
        counts = sample_by_descent(sampler.branch_probability, len(qubits),
                                   shots, rng)
        self._sampler_stats = sampler.statistics()
        return counts

    def memory_nodes(self) -> int:
        return self._simulator.state.num_nodes()

    @property
    def num_qubits(self) -> int:
        return self._simulator.num_qubits

    def statistics(self):
        stats = self._simulator.statistics()
        stats["peak_memory_nodes"] = stats.pop("peak_bdd_nodes")
        stats["elapsed_seconds"] = self.elapsed_seconds()
        stats["gates_applied"] = self._gates_applied
        stats.update(self._sampler_stats)
        return stats


@register_engine("qmdd", aliases=("ddsim",))
class QmddEngine(Engine):
    """Float-weighted decision-diagram comparison engine (DDSIM stand-in)."""

    capabilities = Capabilities(
        name="qmdd",
        label="QMDD (DDSIM-style)",
        supported_gates=ALL_GATE_KINDS,
        exact=False,
        selection_priority=30,
        description="Edge-weighted decision diagrams with tolerance-interned "
                    "complex weights; fast on shallow circuits, loses "
                    "precision on deep superpositions.",
    )

    def __init__(self) -> None:
        super().__init__()
        self._simulator: Optional[QmddSimulator] = None

    def prepare(self, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> None:
        super().prepare(circuit, limits)
        self._simulator = QmddSimulator(circuit.num_qubits)

    def apply(self, gate: Gate) -> None:
        _reject_stream_dynamic(gate)
        self._simulator.apply_gate(gate)
        self._count_gate(gate)

    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        return self._simulator.probability_of_outcome(qubits, bits)

    def collapse(self, qubit: int, outcome: int) -> None:
        self._simulator.measure_qubit(qubit, forced_outcome=outcome)

    def memory_nodes(self) -> int:
        return self._simulator.num_nodes()

    @property
    def num_qubits(self) -> int:
        return self._simulator.num_qubits

    def statistics(self):
        stats = self._simulator.statistics()
        stats["peak_memory_nodes"] = stats.pop("peak_dd_nodes")
        stats["elapsed_seconds"] = self.elapsed_seconds()
        stats["gates_applied"] = self._gates_applied
        return stats


@register_engine("statevector", aliases=("dense", "sv"))
class StatevectorEngine(Engine):
    """Dense numpy statevector comparison engine (the memory-wall baseline)."""

    capabilities = Capabilities(
        name="statevector",
        label="Dense statevector",
        supported_gates=ALL_GATE_KINDS,
        exact=False,
        dense=True,
        max_practical_qubits=26,
        selection_priority=10,
        description="Full 2**n complex vector; fastest per gate while the "
                    "vector fits in memory, impossible beyond ~26 qubits.",
    )

    def __init__(self) -> None:
        super().__init__()
        self._simulator: Optional[StatevectorSimulator] = None

    def prepare(self, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> None:
        super().prepare(circuit, limits)
        limits = limits or ResourceLimits()
        self._simulator = StatevectorSimulator(circuit.num_qubits,
                                               max_qubits=limits.max_dense_qubits)

    def apply(self, gate: Gate) -> None:
        _reject_stream_dynamic(gate)
        self._simulator.apply_gate(gate)
        self._count_gate(gate)

    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        return self._simulator.probability_of_outcome(qubits, bits)

    def collapse(self, qubit: int, outcome: int) -> None:
        self._simulator.measure_qubit(qubit, forced_outcome=outcome)

    def memory_nodes(self) -> int:
        return dense_memory_nodes(self._simulator.num_qubits)

    @property
    def num_qubits(self) -> int:
        return self._simulator.num_qubits

    def statistics(self):
        stats = super().statistics()
        stats["norm"] = self._simulator.norm()
        return stats


@register_engine("stabilizer", aliases=("chp", "tableau"))
class StabilizerEngine(Engine):
    """CHP stabilizer-tableau comparison engine (Clifford circuits only)."""

    capabilities = Capabilities(
        name="stabilizer",
        label="CHP stabilizer",
        supported_gates=CLIFFORD_GATE_KINDS,
        exact=True,
        clifford_only=True,
        selection_priority=0,
        description="Aaronson-Gottesman tableau; polynomial time and memory, "
                    "restricted to Clifford gates.",
    )

    def __init__(self) -> None:
        super().__init__()
        self._simulator: Optional[StabilizerSimulator] = None

    def prepare(self, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> None:
        super().prepare(circuit, limits)
        self._simulator = StabilizerSimulator(circuit.num_qubits)

    def apply(self, gate: Gate) -> None:
        # The native tableau rejects non-Clifford gates itself; pre-checking
        # through the declared capabilities keeps the error message uniform
        # for kinds the tableau has no branch for at all.
        _reject_stream_dynamic(gate)
        self.ensure_supported(gate)
        self._simulator.apply_gate(gate)
        self._count_gate(gate)

    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        return self._simulator.probability_of_outcome(qubits, bits)

    def collapse(self, qubit: int, outcome: int) -> None:
        self._simulator.measure_qubit(qubit, forced_outcome=outcome)

    def memory_nodes(self) -> int:
        stats = self._simulator.statistics()
        return max(1, int(stats["tableau_bytes"]) // BYTES_PER_NODE)

    @property
    def num_qubits(self) -> int:
        return self._simulator.num_qubits

    def statistics(self):
        stats = self._simulator.statistics()
        stats["peak_memory_nodes"] = max(
            1, int(stats.pop("tableau_bytes")) // BYTES_PER_NODE)
        stats["elapsed_seconds"] = self.elapsed_seconds()
        stats["gates_applied"] = self._gates_applied
        return stats

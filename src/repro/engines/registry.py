"""Capability-aware engine registry with aliases and automatic selection.

Engines register themselves with the :func:`register_engine` decorator::

    @register_engine("bitslice", aliases=("bdd", "sliqsim"))
    class BitSliceEngine(Engine):
        capabilities = Capabilities(...)

The registry resolves aliases, instantiates engines by name, and implements
the ``"auto"`` selector: given a circuit's gate profile and the resource
limits, it picks the best-fitting registered engine by capability —
the polynomial-time tableau for pure-Clifford circuits, the dense vector
below the dense cut-off, the exact bit-sliced engine otherwise.  Third-party
engines that register with honest capabilities participate in selection
automatically (see ``examples/custom_engine.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.circuit.circuit import QuantumCircuit
from repro.engines.base import Capabilities, Engine, dense_memory_nodes
from repro.engines.limits import ResourceLimits

#: The pseudo-engine name that triggers capability-based selection.
AUTO_ENGINE = "auto"

_REGISTRY: Dict[str, Type[Engine]] = {}
_ALIASES: Dict[str, str] = {}


class UnknownEngineError(KeyError):
    """Raised when an engine name (or alias) is not registered."""

    def __init__(self, name: str, message: Optional[str] = None):
        if message is None:
            available = ", ".join(sorted(_REGISTRY))
            aliases = ", ".join(sorted(_ALIASES))
            message = (f"unknown engine {name!r}; registered engines: {available}"
                       + (f"; aliases: {aliases}" if aliases else ""))
        super().__init__(message)
        self.name = name


def register_engine(name: str, *, aliases: Tuple[str, ...] = (),
                    replace: bool = False):
    """Class decorator registering an :class:`Engine` subclass under
    ``name`` (plus optional ``aliases``).

    The class must carry a ``capabilities`` descriptor whose ``name`` matches
    the registered name.  Re-registering an existing name raises unless
    ``replace=True`` (useful in tests and notebooks).
    """
    if name == AUTO_ENGINE:
        raise ValueError(f"{AUTO_ENGINE!r} is reserved for automatic selection")

    def decorator(cls: Type[Engine]) -> Type[Engine]:
        capabilities = getattr(cls, "capabilities", None)
        if not isinstance(capabilities, Capabilities):
            raise TypeError(
                f"engine class {cls.__name__} must declare a Capabilities "
                f"descriptor in its 'capabilities' attribute")
        if capabilities.name != name:
            raise ValueError(
                f"capabilities.name {capabilities.name!r} does not match the "
                f"registered name {name!r}")
        taken = set(_REGISTRY) | set(_ALIASES)
        if not replace:
            for candidate in (name,) + tuple(aliases):
                if candidate in taken:
                    raise ValueError(
                        f"engine name {candidate!r} is already registered "
                        f"(pass replace=True to override)")
        _REGISTRY[name] = cls
        for alias in aliases:
            if alias == AUTO_ENGINE:
                raise ValueError(f"{AUTO_ENGINE!r} is reserved for automatic selection")
            _ALIASES[alias] = name
        return cls

    return decorator


def unregister_engine(name: str) -> None:
    """Remove an engine (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    _REGISTRY.pop(canonical, None)
    for alias in [alias for alias, target in _ALIASES.items() if target == canonical]:
        del _ALIASES[alias]


def resolve_engine_name(name: str) -> str:
    """Canonical engine name for ``name`` (resolving aliases); raises
    :class:`UnknownEngineError` for unregistered names."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise UnknownEngineError(name)
    return canonical


def get_engine_class(name: str) -> Type[Engine]:
    """The registered engine class for ``name`` or an alias of it."""
    return _REGISTRY[resolve_engine_name(name)]


def create_engine(name: str) -> Engine:
    """Instantiate a fresh engine by name or alias."""
    return get_engine_class(name)()


def available_engines() -> Tuple[str, ...]:
    """Sorted canonical names of every registered engine."""
    return tuple(sorted(_REGISTRY))


def engine_aliases() -> Dict[str, str]:
    """Mapping of alias -> canonical engine name."""
    return dict(_ALIASES)


def engine_capabilities(name: str) -> Capabilities:
    """The :class:`Capabilities` descriptor of a registered engine."""
    return get_engine_class(name).capabilities


def engine_labels() -> Dict[str, str]:
    """Mapping of canonical engine name -> human-readable table label."""
    return {name: cls.capabilities.label for name, cls in _REGISTRY.items()}


def select_engine(circuit: QuantumCircuit,
                  limits: Optional[ResourceLimits] = None) -> str:
    """Pick the best registered engine for ``circuit`` under ``limits``.

    Eligibility is purely capability-driven: an engine qualifies when its
    declared gate set supports every gate of the circuit and the register
    fits under its practical qubit ceiling (dense engines are additionally
    capped by ``limits.max_dense_qubits``).  Among eligible engines the one
    with the lowest ``selection_priority`` wins (name order breaks ties), so
    a pure-Clifford circuit lands on the tableau, a small non-Clifford
    circuit on the dense vector, and a wide non-Clifford circuit on the
    exact bit-sliced engine.
    """
    limits = limits or ResourceLimits()
    best: Optional[Tuple[int, str]] = None
    for name in available_engines():
        capabilities = _REGISTRY[name].capabilities
        ceiling = capabilities.max_practical_qubits
        if capabilities.dense:
            ceiling = (limits.max_dense_qubits if ceiling is None
                       else min(ceiling, limits.max_dense_qubits))
            # A dense engine whose fixed 2**n footprint already blows the
            # node budget would MO on its first limit check; never pick it.
            if (limits.max_nodes is not None
                    and dense_memory_nodes(circuit.num_qubits) > limits.max_nodes):
                continue
        if ceiling is not None and circuit.num_qubits > ceiling:
            continue
        if not capabilities.supports_circuit(circuit):
            continue
        key = (capabilities.selection_priority, name)
        if best is None or key < best:
            best = key
    if best is None:
        raise UnknownEngineError(
            AUTO_ENGINE,
            message=f"no registered engine supports circuit {circuit.name!r}")
    return best[1]


def resolve_engine(name: str, circuit: QuantumCircuit,
                   limits: Optional[ResourceLimits] = None) -> str:
    """Resolve ``name`` to a canonical engine, treating ``"auto"`` as a
    request for capability-based selection."""
    if name == AUTO_ENGINE:
        return select_engine(circuit, limits)
    return resolve_engine_name(name)

"""repro — Bit-slicing the Hilbert space: exact BDD-based quantum simulation.

A from-scratch Python reproduction of "Bit-Slicing the Hilbert Space: Scaling
Up Accurate Quantum Circuit Simulation" (Tsai, Jiang, Jhang — DAC 2021; the
SliQSim simulator), together with every substrate it depends on:

* :mod:`repro.bdd` — a pure-Python ROBDD package (the CUDD substitute),
* :mod:`repro.perf` — substrate performance counters, spans and JSON reports,
* :mod:`repro.algebra` — exact algebraic complex amplitudes over
  ``w = exp(i*pi/4)``,
* :mod:`repro.circuit` — circuit IR plus QASM / RevLib ``.real`` / GRCS
  formats,
* :mod:`repro.core` — the bit-sliced simulator itself (the paper's
  contribution),
* :mod:`repro.baselines` — dense statevector, QMDD-style (DDSIM stand-in) and
  CHP stabilizer comparators,
* :mod:`repro.workloads` — generators for the paper's four benchmark
  families,
* :mod:`repro.harness` — the experiment runner that regenerates the paper's
  Tables III–VI.

The most common entry points are re-exported here::

    from repro import BitSliceSimulator, QuantumCircuit

    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    result = BitSliceSimulator.simulate(circuit)
    result.measurement_distribution()     # {0b00: 0.5, 0b11: 0.5}
"""

from repro.algebra import AlgebraicComplex, AlgebraicVector
from repro.circuit import Gate, GateKind, QuantumCircuit
from repro.core import BitSliceSimulator, BitSlicedState
from repro.baselines import QmddSimulator, StabilizerSimulator, StatevectorSimulator
from repro.exceptions import (
    NumericalError,
    SimulationError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)

__version__ = "0.1.0"

__all__ = [
    "AlgebraicComplex",
    "AlgebraicVector",
    "Gate",
    "GateKind",
    "QuantumCircuit",
    "BitSliceSimulator",
    "BitSlicedState",
    "QmddSimulator",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "NumericalError",
    "SimulationError",
    "SimulationMemoryExceeded",
    "SimulationTimeout",
    "UnsupportedGateError",
    "__version__",
]

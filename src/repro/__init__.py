"""repro — Bit-slicing the Hilbert space: exact BDD-based quantum simulation.

A from-scratch Python reproduction of "Bit-Slicing the Hilbert Space: Scaling
Up Accurate Quantum Circuit Simulation" (Tsai, Jiang, Jhang — DAC 2021; the
SliQSim simulator), together with every substrate it depends on:

* :mod:`repro.bdd` — a pure-Python ROBDD package (the CUDD substitute),
* :mod:`repro.perf` — substrate performance counters, spans and JSON reports,
* :mod:`repro.algebra` — exact algebraic complex amplitudes over
  ``w = exp(i*pi/4)``,
* :mod:`repro.circuit` — circuit IR plus QASM / RevLib ``.real`` / GRCS
  formats,
* :mod:`repro.core` — the bit-sliced simulator itself (the paper's
  contribution),
* :mod:`repro.baselines` — dense statevector, QMDD-style (DDSIM stand-in) and
  CHP stabilizer comparators,
* :mod:`repro.workloads` — generators for the paper's four benchmark
  families,
* :mod:`repro.harness` — the experiment runner that regenerates the paper's
  Tables III–VI.

* :mod:`repro.engines` — the unified engine API: ``Engine`` protocol,
  capability-aware registry with aliases and ``"auto"`` selection, the
  ``repro.run()`` front door and the parallel ``run_sweep()`` executor.

* :mod:`repro.cache` — cross-run amortisation: canonical circuit
  fingerprints, the ``ResultCache`` memoising finished runs, and the
  ``SessionPool`` resuming the bit-sliced engine from retained
  gate-sequence prefixes (``repro.run(..., cache=..., sessions=...)``).

* :mod:`repro.service` — the persistent simulation server (``repro-serve``):
  newline-delimited JSON over TCP / unix sockets, a bounded job queue with
  structured backpressure, warm server-side sessions and the ``repro-watch``
  admin stream — with sync (``Client``) and asyncio (``AsyncClient``)
  clients.

* :mod:`repro.resilience` — the robustness layer: deterministic fault
  injection for reproducible chaos tests, retry/backoff with decorrelated
  jitter, and the crash-safe sweep journal (``run_sweep(journal=...)``).

* :mod:`repro.snapshot` — versioned, checksummed state snapshots: the
  serialisation behind ``run(..., checkpoint_every=...)`` resumable runs
  and the server's restart-surviving sessions
  (``Server(checkpoint_dir=...)``); see ``docs/checkpointing.md``.

The most common entry points are re-exported here::

    import repro
    from repro import QuantumCircuit

    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    result = repro.run(circuit, engine="auto")    # -> RunResult
    result.status, result.final_probability       # 'ok', 0.5

    # Exact, reproducible shot sampling (identical counts across engines
    # at equal seeds; see docs/sampling.md):
    sampled = repro.run(circuit.measure_all(), shots=1024, seed=0)
    sampled.counts_bitstrings()                   # {'00': 533, '11': 491}

    # Rich native simulator classes stay public:
    from repro import BitSliceSimulator
    BitSliceSimulator.simulate(circuit).measurement_distribution()
"""

from repro.algebra import AlgebraicComplex, AlgebraicVector
from repro.circuit import Gate, GateKind, QuantumCircuit
from repro.core import BitSliceSimulator, BitSlicedState
from repro.baselines import QmddSimulator, StabilizerSimulator, StatevectorSimulator
from repro.exceptions import (
    NumericalError,
    SimulationError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)
from repro.engines import (
    Capabilities,
    Engine,
    ResourceLimits,
    RunResult,
    UnknownEngineError,
    available_engines,
    register_engine,
    run,
    run_sweep,
    select_engine,
)

# Imported after :mod:`repro.engines`: the cache package's modules depend on
# ``engines.base`` / ``engines.result``, and the engines front door depends
# on the cache modules — resolving the engines package first lets both
# import orders (``import repro.cache`` included) settle without a cycle.
from repro.cache import ResultCache, SessionPool, circuit_fingerprint

# Imported last: the service builds on the engines front door and the cache
# layer (its server embeds a ResultCache and a SessionPool).
from repro.exceptions import JobCancelledError
from repro.service import (
    AsyncClient,
    Client,
    Server,
    ServiceError,
    serve_background,
)

# Resilience rides on everything above (the journal keys via the cache's
# fingerprints, the retry policy classifies service error codes).
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, SweepJournal

# Snapshots serialise live engine state; the module depends only on the
# BDD substrate and the core simulator, but is grouped with the
# robustness surface it powers (checkpointed runs, restartable sessions).
from repro.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotCorruptError,
    dump_manager,
    dump_simulator,
    load_manager,
    load_simulator,
    snapshot_info,
)

__version__ = "0.1.0"

__all__ = [
    "AlgebraicComplex",
    "AlgebraicVector",
    "Gate",
    "GateKind",
    "QuantumCircuit",
    "BitSliceSimulator",
    "BitSlicedState",
    "QmddSimulator",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "Capabilities",
    "Engine",
    "ResourceLimits",
    "ResultCache",
    "SessionPool",
    "circuit_fingerprint",
    "RunResult",
    "UnknownEngineError",
    "available_engines",
    "register_engine",
    "run",
    "run_sweep",
    "select_engine",
    "AsyncClient",
    "Client",
    "Server",
    "ServiceError",
    "serve_background",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "SweepJournal",
    "SNAPSHOT_VERSION",
    "SnapshotCorruptError",
    "dump_manager",
    "dump_simulator",
    "load_manager",
    "load_simulator",
    "snapshot_info",
    "JobCancelledError",
    "NumericalError",
    "SimulationError",
    "SimulationMemoryExceeded",
    "SimulationTimeout",
    "UnsupportedGateError",
    "__version__",
]

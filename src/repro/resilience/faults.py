"""Deterministic fault injection: named fault points armed by a seeded plan.

Chaos testing is only useful when a failing schedule can be replayed: a
fault that fires "sometimes" produces flakes, not regressions.  This module
therefore separates *where* faults can happen from *when* they do:

* **Fault points** are named call sites threaded through the hot paths of
  the stack — the scheduler worker loop, the service session append, the
  :meth:`~repro.engines.limits.LimitEnforcer.check` gate-boundary poll, the
  server/client socket paths and the sweep journal writer.  Each site calls
  :func:`maybe_fire` with its name; with no plan installed that is a single
  attribute read and compare, so production traffic pays nothing.
* A :class:`FaultPlan` arms a set of :class:`FaultRule` triggers — fire on
  the *N*-th hit of a point, or with probability ``p`` per hit from a
  seeded RNG — so a chaos test's entire fault schedule is a pure function
  of ``(rules, seed)`` and every run of the test injects the same faults at
  the same hits.

Install a plan process-wide with :func:`install` / :func:`uninstall`, or
scope it to a test body with the :func:`active` context manager.  The plan
counts every hit and fire per point (:meth:`FaultPlan.fires`) and mirrors
fires into an optional :class:`~repro.perf.counters.PerfCounters` bag as
``fault_fires_total`` / ``fault_fires_<point>``.

Determinism caveat: a plan's *rule evaluation* is deterministic per point,
but when several threads hit the same point concurrently the interleaving
decides which thread observes the firing hit.  Chaos tests that pin
byte-identical outputs should therefore use single-worker servers or
place ``on_hit`` rules on naturally serialised paths.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.exceptions import SimulationError
from repro.perf.counters import PerfCounters

# --------------------------------------------------------------------- #
# fault-point catalogue
# --------------------------------------------------------------------- #
#: Scheduler worker, between claiming a job and invoking its function —
#: *outside* the job's own try block, so a firing simulates the worker
#: loop machinery itself crashing (the hardened loop must survive it).
FAULT_WORKER_LOOP = "scheduler.worker.loop"

#: Scheduler worker, inside the job execution — equivalent to the job
#: function raising unexpectedly (the server must reply a structured
#: ``internal`` error and the worker must keep serving).
FAULT_WORKER_JOB = "scheduler.worker.job"

#: Service session append, on the worker under the session lock, before
#: the cumulative circuit is run — a crash here must leave the session
#: un-advanced and its lock released.
FAULT_SESSION_APPEND = "service.session.append"

#: :meth:`LimitEnforcer.check <repro.engines.limits.LimitEnforcer.check>`,
#: polled between gates — fires *inside* a simulation, where a timeout
#: would fire, simulating an engine crash mid-circuit.
FAULT_LIMITS_CHECK = "limits.check"

#: Server reply path (the per-connection ``send``) — arm with a
#: ``ConnectionResetError`` to simulate the socket dropping mid-reply.
FAULT_SERVER_SEND = "server.send"

#: Client request path (``Client``/``AsyncClient`` writes).
FAULT_CLIENT_SEND = "client.send"

#: Client reply path (``Client``/``AsyncClient`` reads).
FAULT_CLIENT_RECV = "client.recv"

#: Sweep journal, before an entry is appended — a crash here loses the
#: task's journal line but must never corrupt the preceding entries.
FAULT_JOURNAL_WRITE = "journal.write"

#: Every named fault point, for the catalogue in ``docs/resilience.md``.
FAULT_POINTS = (
    FAULT_WORKER_LOOP,
    FAULT_WORKER_JOB,
    FAULT_SESSION_APPEND,
    FAULT_LIMITS_CHECK,
    FAULT_SERVER_SEND,
    FAULT_CLIENT_SEND,
    FAULT_CLIENT_RECV,
    FAULT_JOURNAL_WRITE,
)


class InjectedFault(SimulationError):
    """The default exception a fired fault point raises.

    Deliberately *outside* the classified outcome hierarchy (TO/MO/
    unsupported/numerical): an injected crash must propagate like a real
    unexpected failure — surfacing as a ``crash``-style error, a structured
    ``internal`` service reply, or a dead sweep — never be absorbed into a
    benign status class.
    """

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class FaultRule:
    """One trigger: fire at a fault ``point`` on the *N*-th hit or with
    probability ``p`` per hit.

    Exactly one of ``on_hit`` (1-based hit ordinal) and ``probability``
    must be set.  ``times`` caps how often the rule fires (``None`` =
    unlimited; an ``on_hit`` rule fires on every ``times``-capped hit at or
    after the ordinal when ``repeat`` is true, else exactly once).
    ``exception`` builds the raised instance — default
    :class:`InjectedFault`; use e.g. ``ConnectionResetError`` at the socket
    points to simulate a transport drop.
    """

    point: str
    on_hit: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = 1
    repeat: bool = False
    exception: Optional[Callable[[str], BaseException]] = None
    fired: int = field(default=0, init=False)
    hits: int = field(default=0, init=False)

    def __post_init__(self):
        if (self.on_hit is None) == (self.probability is None):
            raise ValueError("set exactly one of on_hit / probability")
        if self.on_hit is not None and self.on_hit < 1:
            raise ValueError("on_hit is a 1-based hit ordinal")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def build_exception(self) -> BaseException:
        """The exception instance this rule raises when it fires."""
        if self.exception is None:
            return InjectedFault(self.point)
        return self.exception(self.point)

    def should_fire(self, rng: random.Random) -> bool:
        """Record one hit and decide whether the rule fires on it."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.on_hit is not None:
            fire = (self.hits == self.on_hit
                    or (self.repeat and self.hits > self.on_hit))
        else:
            fire = rng.random() < self.probability
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A seeded, replayable fault schedule over the named fault points.

    ``rules`` arm the plan; ``seed`` fixes the RNG driving every
    probability rule (each point draws from its own stream, derived
    deterministically from ``(seed, point)``, so adding a rule for one
    point never perturbs another point's schedule).  All methods are
    thread-safe — fault points fire on worker threads and the event loop
    alike.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0,
                 counters: Optional[PerfCounters] = None):
        self.seed = seed
        self.counters = counters
        self._lock = threading.Lock()
        self._rules: Dict[str, list] = {}
        self._rngs: Dict[str, random.Random] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)

    def _rng_for(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = random.Random(f"fault-plan:{self.seed}:{point}")
            self._rngs[point] = rng
        return rng

    def hit(self, point: str) -> Optional[BaseException]:
        """Record one hit of ``point``; return the exception to raise when
        a rule fires, else ``None``."""
        with self._lock:
            rules = self._rules.get(point)
            if not rules:
                return None
            rng = self._rng_for(point)
            for rule in rules:
                if rule.should_fire(rng):
                    if self.counters is not None:
                        self.counters.add("fault_fires_total")
                        self.counters.add(f"fault_fires_{point}")
                    return rule.build_exception()
            return None

    def fires(self) -> Dict[str, int]:
        """Fired counts per point (points that never fired are omitted)."""
        with self._lock:
            out: Dict[str, int] = {}
            for point, rules in self._rules.items():
                total = sum(rule.fired for rule in rules)
                if total:
                    out[point] = total
            return out

    def hit_counts(self) -> Dict[str, int]:
        """Observed hits per armed point (fired or not)."""
        with self._lock:
            return {point: max(rule.hits for rule in rules)
                    for point, rules in self._rules.items() if rules}


#: The process-wide active plan; ``None`` keeps every fault point inert.
_active_plan: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replacing any previous plan)."""
    global _active_plan
    _active_plan = plan


def uninstall() -> None:
    """Disarm fault injection (idempotent)."""
    global _active_plan
    _active_plan = None


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager arming ``plan`` for the body and disarming after —
    the idiom chaos tests use so a failing test never leaks its plan."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def current_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None``."""
    return _active_plan


def maybe_fire(point: str) -> None:
    """The instrumentation hook: raise the armed exception when the active
    plan fires at ``point``; a no-op (one load + compare) otherwise."""
    plan = _active_plan
    if plan is None:
        return
    exc = plan.hit(point)
    if exc is not None:
        raise exc


__all__ = [
    "FAULT_CLIENT_RECV",
    "FAULT_CLIENT_SEND",
    "FAULT_JOURNAL_WRITE",
    "FAULT_LIMITS_CHECK",
    "FAULT_POINTS",
    "FAULT_SERVER_SEND",
    "FAULT_SESSION_APPEND",
    "FAULT_WORKER_JOB",
    "FAULT_WORKER_LOOP",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active",
    "current_plan",
    "install",
    "maybe_fire",
    "uninstall",
]

"""Retry with capped exponential backoff and decorrelated jitter.

A retry is only safe when three questions have answers: *is this failure
transient* (classification), *how long do we wait* (backoff), and *can the
operation run twice* (idempotency).  This module answers the first two and
the service clients answer the third with idempotency keys:

* :data:`RETRYABLE_CODES` classifies structured
  :class:`~repro.service.client.ServiceError` codes — transport loss,
  backpressure and drain rejections are transient; ``bad_request`` or
  ``unknown_session`` are not and retrying them only repeats the failure.
* :class:`RetryPolicy` produces the delay schedule — *decorrelated jitter*
  (each delay drawn uniformly from ``[base, prev * 3]``, capped), which
  spreads reconnect storms across time instead of synchronising every
  client on the same exponential step — and drives the retry loop for both
  sync (:meth:`RetryPolicy.call`) and async (:meth:`RetryPolicy.async_call`)
  callables.

Policies are seedable so tests pin the exact delay sequence, and the
``sleep`` hook lets tests run a multi-attempt schedule without waiting.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable, Iterator, Optional, TypeVar

from repro.perf.counters import PerfCounters

T = TypeVar("T")

#: Structured service error codes that mark a *transient* failure: the
#: transport dropped (``connection_lost``), the queue was momentarily full
#: (``queue_full``), or the server is shutting down / mid-restart
#: (``draining``, ``unavailable``).  Everything else — ``bad_request``,
#: ``unknown_session``, ``internal``, ``cancelled``… — is fatal to retry.
RETRYABLE_CODES = frozenset({"connection_lost", "queue_full", "draining", "unavailable"})


def is_retryable(exc: BaseException) -> bool:
    """Default classification: structured errors by code, raw transport
    errors (``ConnectionError``/``OSError``) as transient."""
    code = getattr(exc, "code", None)
    if code is not None:
        return code in RETRYABLE_CODES
    return isinstance(exc, (ConnectionError, OSError))


class RetryGaveUp(RuntimeError):
    """Raised by :meth:`RetryPolicy.call` when every attempt failed; the
    last underlying exception is chained as ``__cause__`` and kept on
    ``last_error``."""

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(f"gave up after {attempts} attempts: {last_error}")
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    ``max_attempts`` bounds total tries (first call included); delays start
    at ``base_delay`` and each next delay is drawn uniformly from
    ``[base_delay, prev * 3]``, clipped to ``max_delay``.  ``seed`` fixes
    the jitter stream; ``sleep`` is injectable for tests.  Counters (when
    given) record ``retry_attempts``, ``retry_sleep_seconds`` and
    ``retry_giveups``.
    """

    def __init__(self, max_attempts: int = 5, base_delay: float = 0.05,
                 max_delay: float = 2.0, seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 counters: Optional[PerfCounters] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.seed = seed
        self.sleep = sleep
        self.counters = counters

    def delays(self) -> Iterator[float]:
        """The backoff schedule: an iterator of ``max_attempts - 1`` delays
        (one between each pair of attempts)."""
        rng = random.Random(self.seed) if self.seed is not None else random.Random()
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield delay
            delay = min(self.max_delay, rng.uniform(self.base_delay, delay * 3))

    def _count(self, name: str, amount: float = 1) -> None:
        if self.counters is not None:
            self.counters.add(name, amount)

    def call(self, fn: Callable[[], T], *,
             retryable: Optional[Callable[[BaseException], bool]] = None,
             on_retry: Optional[Callable[[int, BaseException, float], None]] = None) -> T:
        """Invoke ``fn`` under the policy, sleeping the jittered delay
        between attempts; raise :class:`RetryGaveUp` when attempts are
        exhausted, or the original error immediately when ``retryable``
        (default :func:`is_retryable`) rejects it."""
        classify = retryable if retryable is not None else is_retryable
        last_error: Optional[BaseException] = None
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:
                if not classify(exc):
                    raise
                last_error = exc
                if attempt == self.max_attempts:
                    break
                delay = next(schedule)
                self._count("retry_attempts")
                self._count("retry_sleep_seconds", delay)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                self.sleep(delay)
        self._count("retry_giveups")
        assert last_error is not None
        raise RetryGaveUp(self.max_attempts, last_error) from last_error

    async def async_call(self, fn: Callable[[], Awaitable[T]], *,
                         retryable: Optional[Callable[[BaseException], bool]] = None,
                         on_retry: Optional[Callable[[int, BaseException, float], None]] = None) -> T:
        """Async twin of :meth:`call` (delays via ``asyncio.sleep``)."""
        classify = retryable if retryable is not None else is_retryable
        last_error: Optional[BaseException] = None
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return await fn()
            except Exception as exc:
                if not classify(exc):
                    raise
                last_error = exc
                if attempt == self.max_attempts:
                    break
                delay = next(schedule)
                self._count("retry_attempts")
                self._count("retry_sleep_seconds", delay)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                await asyncio.sleep(delay)
        self._count("retry_giveups")
        assert last_error is not None
        raise RetryGaveUp(self.max_attempts, last_error) from last_error


def connect_with_retry(factory: Callable[[], T], policy: Optional[RetryPolicy] = None) -> T:
    """Build a connection via ``factory``, retrying refused/unreachable
    attempts (``OSError``/``ConnectionError``) under ``policy`` — the
    harness uses this so ``--server`` tolerates a still-starting server."""
    if policy is None:
        policy = RetryPolicy()
    return policy.call(factory, retryable=lambda exc: isinstance(exc, (ConnectionError, OSError)))


__all__ = [
    "RETRYABLE_CODES",
    "RetryGaveUp",
    "RetryPolicy",
    "connect_with_retry",
    "is_retryable",
]

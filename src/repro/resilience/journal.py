"""Crash-safe sweep journal: an append-only manifest of completed tasks.

A Table VI-scale sweep that dies at task 180 of 200 should not redo the
first 179.  The journal is the recovery mechanism: when
:func:`repro.engines.frontdoor.run_tasks` runs with ``journal=``, every
terminal task result is appended to a JSONL manifest as one self-contained
line — ``{"v": 1, "key": ..., "result": <RunResult.to_wire()>}`` — keyed by
``index : engine : circuit-fingerprint : seed : shots : reorder``.  A
resumed sweep reloads the manifest, replays journalled results verbatim
(marked ``journal_replayed`` in their provenance extras) and only executes
the tasks that are missing.  Because the replayed payload is the lossless
wire form, the resumed sweep's ``to_dict(timings=False)`` output is
byte-identical to an uninterrupted run.

Crash-safety invariants:

* **Append-only, one line per record** — a crash mid-write can only damage
  the final line, never a completed one.
* Each record is flushed *and fsynced* before the runner reports the task
  complete, so a journalled task genuinely survives power loss.
* Loading tolerates a truncated or garbled trailing line (the interrupted
  write) by skipping it — the task simply reruns.  A final line whose JSON
  is *complete* but merely lacks its trailing newline (the crash happened
  between the payload write and the newline reaching disk) is a valid
  record and is kept; appends are newline-safe, terminating such a line
  before writing so the next record never glues onto it.
* The key includes the per-task derived seed and the circuit fingerprint,
  so editing the task list between runs invalidates exactly the tasks that
  changed; the ``index`` component keeps repeated identical tasks in one
  sweep distinct.

Checkpoint composition (see ``docs/checkpointing.md``): a sweep running
with both ``journal=`` and ``checkpoint_every=`` also appends **pointer
records** — ``{"v": 1, "key": ..., "checkpoint": {"path": ...}}`` — when a
task starts checkpointing, so the manifest records where each in-flight
task's snapshot lives.  On resume, replay prefers restoring that snapshot
over re-executing the task's prefix; a journalled *result* for the same
key always wins over a pointer (the task is already done).

The journal deliberately records *every* terminal status — a ``TO`` under
given limits is as deterministic as an ``ok`` and equally not worth
recomputing.  Delete the manifest (or pass a fresh path) to force reruns.
"""

from __future__ import annotations

import io
import json
import os
import threading
from typing import Dict, Optional, Union

from repro.engines.result import RunResult

#: Journal record schema version (``v`` field of every line).
JOURNAL_VERSION = 1


def task_key(index: int, engine: str, circuit, shots: Optional[int],
             seed: Optional[int], reorder) -> str:
    """The journal key of one sweep task.

    Combines the task's position, resolved engine, circuit fingerprint and
    the sampling/reordering request into a single string; two sweeps agree
    on a key exactly when the task would produce a byte-identical result.
    """
    # Imported lazily: the cache package pulls in the service-facing stack,
    # and keeping journal importable early avoids a package-init cycle.
    from repro.cache.fingerprint import circuit_fingerprint
    from repro.cache.result_cache import normalise_reorder

    return ":".join([
        str(index),
        engine,
        circuit_fingerprint(circuit),
        "-" if seed is None else str(seed),
        "-" if shots is None else str(shots),
        "-" if normalise_reorder(reorder) is None else str(normalise_reorder(reorder)),
    ])


class SweepJournal:
    """The append-only completed-task manifest backing crash-safe sweeps.

    Opening a journal loads every intact record from ``path`` (a missing
    file is an empty journal); :meth:`record` appends, fsyncing each line;
    :meth:`lookup` rebuilds a journalled :class:`RunResult`.  Thread-safe —
    the parallel sweep path records from future callbacks.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._entries: Dict[str, dict] = {}
        self._checkpoints: Dict[str, str] = {}
        self._skipped_lines = 0
        self._load()

    def _load(self) -> None:
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with handle:
            # Iterating lines keeps a final line that lacks its trailing
            # newline: completeness is judged by the JSON parse below, not
            # by the terminator — a record whose newline never reached disk
            # is still a finished record.
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("v") != JOURNAL_VERSION:
                        raise ValueError("unknown journal version")
                    key = record["key"]
                    if not isinstance(key, str):
                        raise ValueError("non-string journal key")
                    if "result" in record:
                        # Validate eagerly so a corrupt record is discovered
                        # at load time (and rerun), not mid-replay.
                        RunResult.from_wire(record["result"])
                    else:
                        pointer = record["checkpoint"]
                        if not isinstance(pointer.get("path"), str):
                            raise ValueError("malformed checkpoint pointer")
                except (ValueError, KeyError, TypeError, AttributeError):
                    # A truncated/garbled line — almost always the final
                    # line of a crashed run.  Skip it; the task reruns.
                    self._skipped_lines += 1
                    continue
                if "result" in record:
                    self._entries[key] = record["result"]
                else:
                    self._checkpoints[key] = record["checkpoint"]["path"]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def skipped_lines(self) -> int:
        """Undecodable lines dropped at load (truncated trailing writes)."""
        return self._skipped_lines

    def lookup(self, key: str) -> Optional[RunResult]:
        """The journalled result for ``key``, rebuilt fresh on every call
        (callers may mutate results), with ``journal_replayed`` marked in
        its provenance extras; ``None`` when the task is not journalled."""
        with self._lock:
            payload = self._entries.get(key)
        if payload is None:
            return None
        result = RunResult.from_wire(payload)
        result.extra["journal_replayed"] = 1
        return result

    def record(self, key: str, result: RunResult) -> None:
        """Append ``result`` under ``key`` (first writer wins — replayed or
        duplicate completions are not re-journalled), flushing and fsyncing
        so the record survives an immediate crash."""
        if result.extra.get("journal_replayed"):
            return
        payload = result.to_wire()
        # The provenance extras are run-shaped noise (cache hits, live-node
        # gauges); strip the replay marker defensively should one leak in.
        payload["extra"] = {k: v for k, v in payload["extra"].items()
                            if k != "journal_replayed"}
        with self._lock:
            if key in self._entries:
                return
            from repro.resilience.faults import FAULT_JOURNAL_WRITE, maybe_fire
            maybe_fire(FAULT_JOURNAL_WRITE)
            self._append_line(json.dumps({"v": JOURNAL_VERSION, "key": key,
                                          "result": payload},
                                         sort_keys=True))
            self._entries[key] = payload

    def record_checkpoint(self, key: str, path: Union[str, os.PathLike]) -> None:
        """Append a checkpoint-pointer record: task ``key`` is in flight
        and its crash-safe snapshot lives at ``path``.

        Idempotent per ``(key, path)``, and never recorded once ``key`` has
        a journalled *result* (the pointer would be stale noise — the task
        is done and its checkpoint file already removed).
        """
        path = os.fspath(path)
        with self._lock:
            if key in self._entries or self._checkpoints.get(key) == path:
                return
            self._append_line(json.dumps(
                {"v": JOURNAL_VERSION, "key": key,
                 "checkpoint": {"path": path}}, sort_keys=True))
            self._checkpoints[key] = path

    def latest_checkpoint(self, key: str) -> Optional[str]:
        """The journalled checkpoint path for an unfinished task ``key``
        (``None`` when the task never checkpointed or already has a
        result).  The file may no longer exist or may be torn — callers
        must treat it as a *hint* and validate on restore."""
        with self._lock:
            if key in self._entries:
                return None
            return self._checkpoints.get(key)

    def _append_line(self, text: str) -> None:
        """Append one record line, flushed and fsynced.

        Newline-safe: when a crashed writer left the file's final line
        unterminated, the missing newline is written first, so a complete
        trailing record is preserved instead of being garbled by this
        append (the load path accepts such a line as a valid record).
        """
        payload = text.encode("utf-8") + b"\n"
        try:
            with open(self.path, "rb") as tail:
                tail.seek(0, os.SEEK_END)
                if tail.tell():
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        payload = b"\n" + payload
        except FileNotFoundError:
            pass
        with open(self.path, "ab") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def keys(self):
        """The journalled task keys (a snapshot list)."""
        with self._lock:
            return list(self._entries)

    def dump(self, stream: Optional[io.TextIOBase] = None) -> str:
        """Human-oriented summary line (used by ``--journal`` verbose
        logging): entry count, skipped lines, path."""
        text = (f"journal {self.path}: {len(self._entries)} entries"
                + (f", {self._skipped_lines} skipped lines" if self._skipped_lines else ""))
        if stream is not None:
            stream.write(text + "\n")
        return text


def open_journal(journal: Union[None, str, os.PathLike, SweepJournal]) -> Optional[SweepJournal]:
    """Coerce the ``journal=`` argument of ``run_tasks``/``run_sweep`` —
    ``None``, a path, or an existing :class:`SweepJournal` — to a journal
    instance (or ``None`` when journalling is off)."""
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(journal)


__all__ = [
    "JOURNAL_VERSION",
    "SweepJournal",
    "open_journal",
    "task_key",
]

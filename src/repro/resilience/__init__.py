"""repro.resilience — fault injection, retry/backoff, and crash-safe sweeps.

The robustness layer of the reproduction: deterministic chaos
(:mod:`repro.resilience.faults`), classified retries with decorrelated
jitter (:mod:`repro.resilience.retry`), and the append-only sweep journal
that lets a killed grid resume byte-identically
(:mod:`repro.resilience.journal`).  The graceful-degradation half —
worker-crash isolation, SIGTERM drain, the ``health`` verb — lives in
:mod:`repro.service`, instrumented through the fault points defined here.
"""

from repro.resilience.faults import (
    FAULT_CLIENT_RECV,
    FAULT_CLIENT_SEND,
    FAULT_JOURNAL_WRITE,
    FAULT_LIMITS_CHECK,
    FAULT_POINTS,
    FAULT_SERVER_SEND,
    FAULT_SESSION_APPEND,
    FAULT_WORKER_JOB,
    FAULT_WORKER_LOOP,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active,
    current_plan,
    install,
    maybe_fire,
    uninstall,
)
from repro.resilience.journal import (
    JOURNAL_VERSION,
    SweepJournal,
    open_journal,
    task_key,
)
from repro.resilience.retry import (
    RETRYABLE_CODES,
    RetryGaveUp,
    RetryPolicy,
    connect_with_retry,
    is_retryable,
)

__all__ = [
    "FAULT_CLIENT_RECV",
    "FAULT_CLIENT_SEND",
    "FAULT_JOURNAL_WRITE",
    "FAULT_LIMITS_CHECK",
    "FAULT_POINTS",
    "FAULT_SERVER_SEND",
    "FAULT_SESSION_APPEND",
    "FAULT_WORKER_JOB",
    "FAULT_WORKER_LOOP",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "JOURNAL_VERSION",
    "RETRYABLE_CODES",
    "RetryGaveUp",
    "RetryPolicy",
    "SweepJournal",
    "active",
    "connect_with_retry",
    "current_plan",
    "install",
    "is_retryable",
    "maybe_fire",
    "open_journal",
    "task_key",
    "uninstall",
]

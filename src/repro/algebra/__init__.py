"""Exact algebraic representation of complex amplitudes.

The paper (Section III-A) adopts the representation of Zulehner et al.
(DATE 2019): every amplitude reachable from a computational basis state
through the gate set of Table I can be written exactly as

    alpha = (a * w**3 + b * w**2 + c * w + d) / sqrt(2)**k

with ``w = exp(i*pi/4)`` the primitive eighth root of unity and integer
coefficients ``a, b, c, d, k``.  :class:`~repro.algebra.omega.AlgebraicComplex`
implements exact arithmetic on this form; :class:`~repro.algebra.omega.AlgebraicVector`
is the dense (non-bit-sliced) container used by tests and the reference
implementations.
"""

from repro.algebra.omega import (
    OMEGA,
    SQRT2,
    AlgebraicComplex,
    AlgebraicVector,
)

__all__ = [
    "OMEGA",
    "SQRT2",
    "AlgebraicComplex",
    "AlgebraicVector",
]

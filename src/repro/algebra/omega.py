"""Exact arithmetic over ``Z[w] / sqrt(2)^k`` with ``w = exp(i*pi/4)``.

Every amplitude produced by the gate set of the paper (Table I) applied to a
computational basis state can be written exactly as

    alpha = (a*w**3 + b*w**2 + c*w + d) / sqrt(2)**k

with integers ``a, b, c, d, k`` (paper Eq. 5).  The ring ``Z[w]`` is the ring
of integers of the eighth cyclotomic field, with the single relation
``w**4 == -1``.  The square root of two is itself an element of the ring:
``sqrt(2) == w - w**3``, which is what makes the denominator convention work.

Two classes are exposed:

* :class:`AlgebraicComplex` — one exact amplitude.  Supports ring arithmetic,
  exact equality, conversion to ``complex`` and exact ``|alpha|**2``.
* :class:`AlgebraicVector` — a dense vector of exact amplitudes over ``n``
  qubits with exact gate application for the supported gate set.  It is the
  *dense exact oracle* used throughout the test-suite to validate the
  bit-sliced BDD engine bit-for-bit (integer equality, no float tolerance).
"""

from __future__ import annotations

import cmath
import math
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

#: Numerical value of ``w = exp(i*pi/4)`` for float conversions.
OMEGA = cmath.exp(1j * math.pi / 4)

#: Numerical value of ``sqrt(2)`` for float conversions.
SQRT2 = math.sqrt(2.0)


def _poly_mul(p: Tuple[int, int, int, int], q: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    """Multiply two elements of ``Z[w]`` given as ``(a, b, c, d)`` coefficient
    tuples of ``a*w^3 + b*w^2 + c*w + d``, reducing with ``w^4 = -1``."""
    a1, b1, c1, d1 = p
    a2, b2, c2, d2 = q
    # Collect the convolution by resulting power of w (0..6) and reduce
    # w^4 -> -1, w^5 -> -w, w^6 -> -w^2.
    d = d1 * d2 - (c1 * a2 + b1 * b2 + a1 * c2)
    c = d1 * c2 + c1 * d2 - (b1 * a2 + a1 * b2)
    b = d1 * b2 + c1 * c2 + b1 * d2 - (a1 * a2)
    a = d1 * a2 + c1 * b2 + b1 * c2 + a1 * d2
    return (a, b, c, d)


class AlgebraicComplex:
    """An exact complex amplitude ``(a*w^3 + b*w^2 + c*w + d) / sqrt(2)^k``.

    Instances are immutable.  ``a`` is the coefficient of ``w^3``, ``b`` of
    ``w^2``, ``c`` of ``w`` and ``d`` the constant term, matching the notation
    of the paper.  ``k`` may be any integer (negative ``k`` means the value is
    scaled *up* by powers of ``sqrt(2)``; the simulator itself only ever
    produces ``k >= 0``).

    The constructor canonicalises the representation so that exact equality of
    values coincides with structural equality of the five integers: trailing
    factors of ``sqrt(2)`` common to all four coefficients are cancelled
    against ``k`` (down to ``k == 0``), and the zero value is always stored as
    ``(0, 0, 0, 0, 0)``.
    """

    __slots__ = ("a", "b", "c", "d", "k")

    def __init__(self, a: int = 0, b: int = 0, c: int = 0, d: int = 0, k: int = 0,
                 *, canonical: bool = True):
        if canonical:
            a, b, c, d, k = _canonicalise(a, b, c, d, k)
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.k = k

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "AlgebraicComplex":
        """The exact value ``0``."""
        return AlgebraicComplex(0, 0, 0, 0, 0, canonical=False)

    @staticmethod
    def one() -> "AlgebraicComplex":
        """The exact value ``1``."""
        return AlgebraicComplex(0, 0, 0, 1, 0, canonical=False)

    @staticmethod
    def from_int(value: int) -> "AlgebraicComplex":
        """The exact integer ``value``."""
        return AlgebraicComplex(0, 0, 0, value, 0)

    @staticmethod
    def omega_power(t: int) -> "AlgebraicComplex":
        """The exact value ``w**t`` for any integer ``t``."""
        t %= 8
        sign = 1
        if t >= 4:
            sign = -1
            t -= 4
        coeffs = [0, 0, 0, 0]
        # index 3 - t selects the coefficient slot of w**t in (a, b, c, d).
        coeffs[3 - t] = sign
        return AlgebraicComplex(*coeffs, 0)

    @staticmethod
    def sqrt2_power(k: int) -> "AlgebraicComplex":
        """The exact value ``sqrt(2)**k`` for any integer ``k``."""
        return AlgebraicComplex(0, 0, 0, 1, -k)

    @staticmethod
    def imaginary_unit() -> "AlgebraicComplex":
        """The exact value ``i`` (which equals ``w**2``)."""
        return AlgebraicComplex.omega_power(2)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def _coeffs(self) -> Tuple[int, int, int, int]:
        return (self.a, self.b, self.c, self.d)

    def _scaled_to_k(self, k: int) -> Tuple[int, int, int, int]:
        """Return the numerator coefficients of ``self`` rewritten over the
        denominator ``sqrt(2)**k`` (``k`` must be ``>= self.k``)."""
        delta = k - self.k
        if delta < 0:
            raise ValueError("cannot scale to a smaller denominator exponent")
        coeffs = self._coeffs()
        # Multiply by 2 for every full power of two in sqrt(2)**delta …
        factor = 1 << (delta // 2)
        coeffs = tuple(x * factor for x in coeffs)
        # … and by sqrt(2) = w - w^3 once if delta is odd.
        if delta % 2:
            coeffs = _poly_mul(coeffs, (-1, 0, 1, 0))
        return coeffs  # type: ignore[return-value]

    def __add__(self, other: "AlgebraicComplex") -> "AlgebraicComplex":
        if not isinstance(other, AlgebraicComplex):
            return NotImplemented
        k = max(self.k, other.k)
        p = self._scaled_to_k(k)
        q = other._scaled_to_k(k)
        return AlgebraicComplex(*(x + y for x, y in zip(p, q)), k)

    def __sub__(self, other: "AlgebraicComplex") -> "AlgebraicComplex":
        if not isinstance(other, AlgebraicComplex):
            return NotImplemented
        return self + (-other)

    def __neg__(self) -> "AlgebraicComplex":
        return AlgebraicComplex(-self.a, -self.b, -self.c, -self.d, self.k, canonical=False)

    def __mul__(self, other: "AlgebraicComplex") -> "AlgebraicComplex":
        if isinstance(other, int):
            other = AlgebraicComplex.from_int(other)
        if not isinstance(other, AlgebraicComplex):
            return NotImplemented
        coeffs = _poly_mul(self._coeffs(), other._coeffs())
        return AlgebraicComplex(*coeffs, self.k + other.k)

    __rmul__ = __mul__

    def conjugate(self) -> "AlgebraicComplex":
        """The exact complex conjugate."""
        # conj(w) = w^-1 = -w^3, conj(w^2) = -w^2, conj(w^3) = -w.
        return AlgebraicComplex(-self.c, -self.b, -self.a, self.d, self.k)

    def divided_by_sqrt2(self, count: int = 1) -> "AlgebraicComplex":
        """The exact value ``self / sqrt(2)**count``."""
        return AlgebraicComplex(self.a, self.b, self.c, self.d, self.k + count)

    # ------------------------------------------------------------------ #
    # queries and conversions
    # ------------------------------------------------------------------ #
    def is_zero(self) -> bool:
        """True iff the value is exactly zero."""
        return self.a == 0 and self.b == 0 and self.c == 0 and self.d == 0

    def abs_squared_exact(self) -> Tuple[int, int, int]:
        """Exact ``|alpha|**2`` as a triple ``(x, y, k)`` meaning
        ``(x + y*sqrt(2)) / 2**k``."""
        a, b, c, d = self.a, self.b, self.c, self.d
        x = a * a + b * b + c * c + d * d
        y = a * b + b * c + c * d - a * d
        return (x, y, self.k)

    def abs_squared_fraction(self) -> Fraction:
        """``|alpha|**2`` as an exact :class:`fractions.Fraction` **when the
        value is rational** (``y == 0``); raises :class:`ValueError` otherwise."""
        x, y, k = self.abs_squared_exact()
        if y != 0:
            raise ValueError("|alpha|^2 is irrational (contains a sqrt(2) term)")
        return Fraction(x, 1 << k)

    def abs_squared(self) -> float:
        """``|alpha|**2`` as a float."""
        x, y, k = self.abs_squared_exact()
        return (x + y * SQRT2) / (2.0 ** k)

    def to_complex(self) -> complex:
        """The value as a Python ``complex`` (floating point)."""
        a, b, c, d = self.a, self.b, self.c, self.d
        real = d + (c - a) / SQRT2
        imag = b + (c + a) / SQRT2
        scale = SQRT2 ** self.k
        return complex(real / scale, imag / scale)

    def coefficients(self) -> Tuple[int, int, int, int, int]:
        """The canonical tuple ``(a, b, c, d, k)``."""
        return (self.a, self.b, self.c, self.d, self.k)

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, AlgebraicComplex):
            return self.coefficients() == other.coefficients()
        if isinstance(other, (int, complex, float)):
            return cmath.isclose(self.to_complex(), complex(other), abs_tol=1e-12)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.coefficients())

    def __repr__(self) -> str:
        return (f"AlgebraicComplex(a={self.a}, b={self.b}, c={self.c}, "
                f"d={self.d}, k={self.k})")

    def __str__(self) -> str:
        if self.is_zero():
            return "0"
        terms = []
        for coeff, name in ((self.a, "w^3"), (self.b, "w^2"), (self.c, "w"), (self.d, "")):
            if coeff == 0:
                continue
            if name:
                terms.append(f"{coeff}*{name}" if abs(coeff) != 1 else ("-" + name if coeff < 0 else name))
            else:
                terms.append(str(coeff))
        numerator = " + ".join(terms).replace("+ -", "- ")
        if self.k == 0:
            return numerator
        return f"({numerator})/sqrt(2)^{self.k}"


def _canonicalise(a: int, b: int, c: int, d: int, k: int) -> Tuple[int, int, int, int, int]:
    """Reduce ``(a, b, c, d, k)`` to the canonical representative.

    Factors of ``sqrt(2)`` common to the numerator are cancelled against the
    denominator until either ``k == 0`` or the numerator is no longer
    divisible.  Zero is normalised to all-zero coefficients with ``k == 0``.
    """
    if a == 0 and b == 0 and c == 0 and d == 0:
        return (0, 0, 0, 0, 0)
    while k < 0:
        # Fold sqrt(2) factors of the value into the numerator so the
        # canonical form always has k >= 0.
        a, b, c, d = _poly_mul((a, b, c, d), (-1, 0, 1, 0))
        k += 1
    while k > 0:
        if a % 2 == 0 and b % 2 == 0 and c % 2 == 0 and d % 2 == 0 and k >= 2:
            a //= 2
            b //= 2
            c //= 2
            d //= 2
            k -= 2
            continue
        # Divisibility by sqrt(2) = w - w^3:  p / sqrt(2) = p * (w - w^3) / 2.
        na, nb, nc, nd = _poly_mul((a, b, c, d), (-1, 0, 1, 0))
        if na % 2 == 0 and nb % 2 == 0 and nc % 2 == 0 and nd % 2 == 0:
            a, b, c, d = na // 2, nb // 2, nc // 2, nd // 2
            k -= 1
            continue
        break
    return (a, b, c, d, k)


class AlgebraicVector:
    """A dense, exact state vector over ``n`` qubits.

    Entries are :class:`AlgebraicComplex` amplitudes indexed by basis state,
    with qubit 0 as the most-significant bit of the index (the convention of
    the paper's 2-qubit worked example, ``|q0 q1>``).

    The class supports exact application of every gate in the paper's Table I
    and is used as the *exact oracle* against which the bit-sliced BDD engine
    is validated with integer equality.
    """

    def __init__(self, num_qubits: int, amplitudes: Sequence[AlgebraicComplex]):
        if len(amplitudes) != 1 << num_qubits:
            raise ValueError("amplitude count must be 2**num_qubits")
        self.num_qubits = num_qubits
        self.amplitudes: List[AlgebraicComplex] = list(amplitudes)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def basis_state(num_qubits: int, index: int = 0) -> "AlgebraicVector":
        """The computational basis state ``|index>`` on ``num_qubits`` qubits."""
        if not 0 <= index < (1 << num_qubits):
            raise ValueError("basis index out of range")
        amps = [AlgebraicComplex.zero() for _ in range(1 << num_qubits)]
        amps[index] = AlgebraicComplex.one()
        return AlgebraicVector(num_qubits, amps)

    # ------------------------------------------------------------------ #
    # gate application
    # ------------------------------------------------------------------ #
    def _bit(self, index: int, qubit: int) -> int:
        """Bit value of ``qubit`` in basis ``index`` (qubit 0 = MSB)."""
        return (index >> (self.num_qubits - 1 - qubit)) & 1

    def _flip(self, index: int, qubit: int) -> int:
        return index ^ (1 << (self.num_qubits - 1 - qubit))

    def apply_single_qubit(self, matrix: Sequence[Sequence[AlgebraicComplex]], target: int) -> None:
        """Apply an exact 2x2 matrix to ``target`` in place."""
        n = self.num_qubits
        if not 0 <= target < n:
            raise ValueError("target qubit out of range")
        new = list(self.amplitudes)
        for index in range(1 << n):
            if self._bit(index, target) == 0:
                i0 = index
                i1 = self._flip(index, target)
                a0, a1 = self.amplitudes[i0], self.amplitudes[i1]
                new[i0] = matrix[0][0] * a0 + matrix[0][1] * a1
                new[i1] = matrix[1][0] * a0 + matrix[1][1] * a1
        self.amplitudes = new

    def apply_controlled(self, matrix: Sequence[Sequence[AlgebraicComplex]],
                         controls: Iterable[int], target: int) -> None:
        """Apply an exact 2x2 matrix to ``target`` controlled on all of
        ``controls`` being 1, in place."""
        controls = list(controls)
        n = self.num_qubits
        new = list(self.amplitudes)
        for index in range(1 << n):
            if self._bit(index, target) == 0 and all(self._bit(index, c) for c in controls):
                i0 = index
                i1 = self._flip(index, target)
                a0, a1 = self.amplitudes[i0], self.amplitudes[i1]
                new[i0] = matrix[0][0] * a0 + matrix[0][1] * a1
                new[i1] = matrix[1][0] * a0 + matrix[1][1] * a1
        self.amplitudes = new

    def apply_swap(self, controls: Iterable[int], qubit_a: int, qubit_b: int) -> None:
        """Apply a (controlled) swap of ``qubit_a`` and ``qubit_b`` in place."""
        controls = list(controls)
        new = list(self.amplitudes)
        for index in range(1 << self.num_qubits):
            if not all(self._bit(index, c) for c in controls):
                continue
            ba, bb = self._bit(index, qubit_a), self._bit(index, qubit_b)
            if ba == bb:
                continue
            swapped = self._flip(self._flip(index, qubit_a), qubit_b)
            new[index] = self.amplitudes[swapped]
        self.amplitudes = new

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def to_numpy(self):
        """Return the state as a complex numpy array (float precision)."""
        import numpy as np

        return np.array([amp.to_complex() for amp in self.amplitudes], dtype=complex)

    def probability_of_outcome(self, outcome: int) -> float:
        """``|<outcome|psi>|**2`` as a float."""
        return self.amplitudes[outcome].abs_squared()

    def norm_squared(self) -> float:
        """Sum of all ``|alpha|**2`` (should be 1 for a valid state)."""
        return sum(amp.abs_squared() for amp in self.amplitudes)

    def __len__(self) -> int:
        return len(self.amplitudes)

    def __getitem__(self, index: int) -> AlgebraicComplex:
        return self.amplitudes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlgebraicVector):
            return NotImplemented
        return (self.num_qubits == other.num_qubits
                and self.amplitudes == other.amplitudes)

    def __repr__(self) -> str:
        return f"AlgebraicVector(num_qubits={self.num_qubits})"

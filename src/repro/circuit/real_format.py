"""RevLib ``.real`` reversible circuit format reader / writer.

RevLib (Wille et al., ISMVL 2008) distributes reversible benchmark circuits in
the ``.real`` format.  The paper's Table IV experiments run RevLib circuits
both as-is and in an "H-modified" variant where inputs with unspecified
initial values get a Hadamard prologue.

The subset implemented here covers the constructs RevLib actually uses for
the benchmark families the paper cites:

* header keys ``.version``, ``.numvars``, ``.variables``, ``.inputs``,
  ``.outputs``, ``.constants``, ``.garbage``, ``.begin`` / ``.end``,
* multiple-control Toffoli gates ``t<n> c1 ... c(n-1) target`` (``t1`` is NOT,
  ``t2`` is CNOT),
* multiple-control Fredkin gates ``f<n> c1 ... c(n-2) target1 target2``,
* Peres gates ``p3 a b c`` (decomposed into Toffoli + CNOT on read),
* ``v``/``v+`` lines are rejected with a clear error (not algebraically
  representable in the paper's gate set).

The reader returns the circuit together with the parsed constant-input line so
callers can decide which inputs are "unspecified" (``-``) for H-augmentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind


class RealFormatError(ValueError):
    """Raised on malformed or unsupported ``.real`` input."""


def circuit_to_real(circuit: QuantumCircuit, constants: Optional[str] = None) -> str:
    """Serialise a reversible circuit to ``.real`` text.

    Only classical reversible gates (X, CNOT, Toffoli, Fredkin, SWAP) can be
    expressed; anything else raises :class:`RealFormatError`.  ``constants``
    optionally provides the ``.constants`` line content (one character per
    qubit, ``0``/``1``/``-``).
    """
    names = [f"x{i}" for i in range(circuit.num_qubits)]
    lines = [".version 2.0", f".numvars {circuit.num_qubits}",
             ".variables " + " ".join(names),
             ".inputs " + " ".join(names),
             ".outputs " + " ".join(names)]
    if constants is None:
        constants = "-" * circuit.num_qubits
    if len(constants) != circuit.num_qubits:
        raise RealFormatError(".constants length must equal the qubit count")
    lines.append(".constants " + constants)
    lines.append(".garbage " + "-" * circuit.num_qubits)
    lines.append(".begin")
    for gate in circuit.gates:
        if gate.kind is GateKind.X and not gate.controls:
            lines.append(f"t1 {names[gate.targets[0]]}")
        elif gate.kind is GateKind.CX:
            lines.append(f"t2 {names[gate.controls[0]]} {names[gate.targets[0]]}")
        elif gate.kind is GateKind.CCX:
            operands = [names[c] for c in gate.controls] + [names[gate.targets[0]]]
            lines.append(f"t{len(operands)} " + " ".join(operands))
        elif gate.kind is GateKind.CSWAP:
            operands = [names[c] for c in gate.controls] + [names[t] for t in gate.targets]
            lines.append(f"f{len(operands)} " + " ".join(operands))
        elif gate.kind is GateKind.SWAP:
            operands = [names[t] for t in gate.targets]
            lines.append(f"f2 " + " ".join(operands))
        else:
            raise RealFormatError(
                f"gate {gate.kind.value} cannot be expressed in .real format")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def circuit_from_real(text: str, name: str = "real_circuit") -> Tuple[QuantumCircuit, str]:
    """Parse ``.real`` text.

    Returns ``(circuit, constants)`` where ``constants`` is the ``.constants``
    line content (defaulting to all ``-`` when the file omits it).
    """
    num_vars: Optional[int] = None
    variable_names: List[str] = []
    constants: Optional[str] = None
    gates: List[Tuple[str, List[str]]] = []
    in_body = False

    for raw_line in text.splitlines():
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith(".version"):
            continue
        if lowered.startswith(".numvars"):
            num_vars = int(line.split()[1])
            continue
        if lowered.startswith(".variables"):
            variable_names = line.split()[1:]
            continue
        if lowered.startswith(".inputs") or lowered.startswith(".outputs"):
            continue
        if lowered.startswith(".inputbus") or lowered.startswith(".outputbus"):
            continue
        if lowered.startswith(".constants"):
            constants = "".join(line.split()[1:])
            continue
        if lowered.startswith(".garbage"):
            continue
        if lowered.startswith(".define"):
            raise RealFormatError(".define blocks are not supported")
        if lowered.startswith(".begin"):
            in_body = True
            continue
        if lowered.startswith(".end"):
            in_body = False
            continue
        if not in_body:
            continue
        tokens = line.split()
        gates.append((tokens[0].lower(), tokens[1:]))

    if num_vars is None:
        if not variable_names:
            raise RealFormatError("missing .numvars / .variables header")
        num_vars = len(variable_names)
    if not variable_names:
        variable_names = [f"x{i}" for i in range(num_vars)]
    if len(variable_names) != num_vars:
        raise RealFormatError(".variables count does not match .numvars")
    if constants is None:
        constants = "-" * num_vars
    if len(constants) != num_vars:
        raise RealFormatError(".constants length does not match .numvars")

    index_of: Dict[str, int] = {label: i for i, label in enumerate(variable_names)}
    circuit = QuantumCircuit(num_vars, name=name)

    for mnemonic, operands in gates:
        try:
            qubits = [index_of[op] for op in operands]
        except KeyError as exc:
            raise RealFormatError(f"unknown variable {exc.args[0]!r} in gate line") from exc
        kind_letter = mnemonic[0]
        if kind_letter == "t":
            _append_toffoli_family(circuit, qubits)
        elif kind_letter == "f":
            _append_fredkin_family(circuit, qubits)
        elif kind_letter == "p":
            _append_peres(circuit, qubits)
        elif kind_letter == "v":
            raise RealFormatError(
                "V / V+ gates are not exactly representable in the supported gate set")
        else:
            raise RealFormatError(f"unsupported .real gate mnemonic: {mnemonic}")

    return circuit, constants


def _append_toffoli_family(circuit: QuantumCircuit, qubits: Sequence[int]) -> None:
    """``t1`` = NOT, ``t2`` = CNOT, ``t<n>`` = multi-control Toffoli."""
    if len(qubits) == 1:
        circuit.x(qubits[0])
    elif len(qubits) == 2:
        circuit.cx(qubits[0], qubits[1])
    else:
        circuit.ccx(list(qubits[:-1]), qubits[-1])


def _append_fredkin_family(circuit: QuantumCircuit, qubits: Sequence[int]) -> None:
    """``f2`` = SWAP, ``f<n>`` = multi-control Fredkin."""
    if len(qubits) < 2:
        raise RealFormatError("Fredkin gates need at least two operands")
    if len(qubits) == 2:
        circuit.swap(qubits[0], qubits[1])
    else:
        circuit.cswap(list(qubits[:-2]), qubits[-2], qubits[-1])


def _append_peres(circuit: QuantumCircuit, qubits: Sequence[int]) -> None:
    """Peres gate ``p3 a b c`` == Toffoli(a, b, c) followed by CNOT(a, b)."""
    if len(qubits) != 3:
        raise RealFormatError("Peres gates take exactly three operands")
    a, b, c = qubits
    circuit.toffoli(a, b, c)
    circuit.cx(a, b)


def unspecified_inputs(constants: str) -> List[int]:
    """Indices whose ``.constants`` entry is ``-`` (no fixed initial value).

    These are the qubits the paper's Table IV modification augments with an
    H gate to create an initial superposition.
    """
    return [index for index, flag in enumerate(constants) if flag == "-"]


def initial_basis_state(constants: str, random_bits: Optional[Sequence[int]] = None) -> int:
    """Basis-state index encoding the ``.constants`` line.

    Fixed ``0``/``1`` entries contribute their value; unspecified (``-``)
    entries take the corresponding value from ``random_bits`` (default 0).
    Qubit 0 is the most significant bit, matching the simulator convention.
    """
    num_qubits = len(constants)
    index = 0
    unspecified_seen = 0
    for position, flag in enumerate(constants):
        if flag in ("0", "1"):
            bit = int(flag)
        elif flag == "-":
            bit = 0
            if random_bits is not None:
                bit = int(random_bits[unspecified_seen]) & 1
            unspecified_seen += 1
        else:
            raise RealFormatError(f"invalid .constants character {flag!r}")
        if bit:
            index |= 1 << (num_qubits - 1 - position)
    return index

"""Circuit transformation passes.

The original tool consumes circuits as-is, but a practical toolchain around a
simulator needs a few standard rewrites; the passes here are the ones the
benchmark families and the examples actually use:

* :func:`decompose_multi_control` — rewrite Toffoli/Fredkin gates with more
  than two controls into two-control Toffolis using ancilla qubits (the
  textbook V-chain construction), so circuits can be exported to OpenQASM 2.0
  or run on engines that only support bounded control counts.
* :func:`expand_swaps` — rewrite SWAP / Fredkin gates into CNOT / Toffoli
  sequences (what the QMDD engine does internally, exposed as a pass).
* :func:`cancel_adjacent_inverses` — peephole optimisation removing gate
  pairs that multiply to the identity (X·X, H·H, S·S†, T·T†, CNOT·CNOT, …),
  which shrinks the RevLib-style circuits noticeably.
* :func:`count_t_gates` / :func:`clifford_t_summary` — the resource metrics
  used when discussing universality via the Clifford+T set.

All passes are pure: they return new circuits and never mutate their input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, is_clifford_gate

#: Pairs of gate kinds that cancel when adjacent on identical qubits.
_INVERSE_PAIRS = {
    (GateKind.X, GateKind.X), (GateKind.Y, GateKind.Y), (GateKind.Z, GateKind.Z),
    (GateKind.H, GateKind.H), (GateKind.CX, GateKind.CX), (GateKind.CZ, GateKind.CZ),
    (GateKind.CCX, GateKind.CCX), (GateKind.SWAP, GateKind.SWAP),
    (GateKind.CSWAP, GateKind.CSWAP),
    (GateKind.S, GateKind.SDG), (GateKind.SDG, GateKind.S),
    (GateKind.T, GateKind.TDG), (GateKind.TDG, GateKind.T),
}


def expand_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite SWAP into three CNOTs and Fredkin into CNOT+Toffoli+CNOT."""
    expanded = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_noswap")
    for gate in circuit.gates:
        # A classical condition distributes over the expansion: either the
        # whole sequence fires or none of it does.
        condition = gate.condition
        if gate.kind is GateKind.SWAP:
            a, b = gate.targets
            expanded.add(GateKind.CX, [b], [a], condition=condition)
            expanded.add(GateKind.CX, [a], [b], condition=condition)
            expanded.add(GateKind.CX, [b], [a], condition=condition)
        elif gate.kind is GateKind.CSWAP:
            a, b = gate.targets
            expanded.add(GateKind.CX, [a], [b], condition=condition)
            expanded.add(GateKind.CCX, [b], list(gate.controls) + [a],
                         condition=condition)
            expanded.add(GateKind.CX, [a], [b], condition=condition)
        else:
            expanded.append(gate)
    for qubit, clbit in circuit.final_measurement_map():
        expanded.measure(qubit, clbit)
    expanded.num_clbits = max(expanded.num_clbits, circuit.num_clbits)
    return expanded


def decompose_multi_control(circuit: QuantumCircuit,
                            max_controls: int = 2) -> QuantumCircuit:
    """Rewrite Toffoli gates with more than ``max_controls`` controls.

    Uses the standard V-chain: ``k`` controls need ``k - max_controls``
    *clean* ancilla qubits (they must start in |0> and are returned to |0>
    because the construction uncomputes itself), appended after the original
    register.  On such inputs the behaviour on the original qubits is
    identical to the multi-control gate.  Fredkin gates are first expanded
    via :func:`expand_swaps` when they exceed the control budget.
    """
    if max_controls < 2:
        raise ValueError("the decomposition targets at least two controls")
    worklist = expand_swaps(circuit) if any(
        gate.kind is GateKind.CSWAP and len(gate.controls) + 1 > max_controls
        for gate in circuit.gates) else circuit

    # First pass: how many ancillas does the widest gate need?
    widest = 0
    for gate in worklist.gates:
        if gate.kind is GateKind.CCX:
            widest = max(widest, len(gate.controls))
    ancillas_needed = max(0, widest - max_controls)
    total_qubits = worklist.num_qubits + ancillas_needed
    ancilla_base = worklist.num_qubits

    decomposed = QuantumCircuit(total_qubits, name=f"{circuit.name}_mcx{max_controls}")

    def emit_chain(controls: Tuple[int, ...], target: int,
                   condition=None) -> None:
        # A classical condition distributes over the whole chain: with a
        # false condition nothing fires (ancillas stay |0>), with a true
        # one the compute / fire / uncompute sequence runs as a unit.
        if len(controls) <= max_controls:
            decomposed.add(GateKind.CCX, [target], list(controls),
                           condition=condition)
            return
        # Fold controls pairwise into ancillas, fire, then uncompute.
        chain: List[Tuple[List[int], int]] = []
        available = list(controls)
        ancilla = ancilla_base
        while len(available) > max_controls:
            pair = [available.pop(0), available.pop(0)]
            chain.append((pair, ancilla))
            available.append(ancilla)
            ancilla += 1
        for pair, scratch in chain:
            decomposed.add(GateKind.CCX, [scratch], pair, condition=condition)
        decomposed.add(GateKind.CCX, [target], available, condition=condition)
        for pair, scratch in reversed(chain):
            decomposed.add(GateKind.CCX, [scratch], pair, condition=condition)

    for gate in worklist.gates:
        if gate.kind is GateKind.CCX and len(gate.controls) > max_controls:
            emit_chain(gate.controls, gate.targets[0], gate.condition)
        else:
            decomposed.append(gate)
    for qubit, clbit in worklist.final_measurement_map():
        decomposed.measure(qubit, clbit)
    decomposed.num_clbits = max(decomposed.num_clbits, worklist.num_clbits)
    return decomposed


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent gate pairs that multiply to the identity.

    A pair cancels when both gates act on exactly the same controls and
    targets and their kinds form an inverse pair; commuting reorderings are
    *not* attempted (this is a peephole pass, not a full optimiser).  The pass
    iterates until no further cancellation applies.
    """
    gates = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        result: List[Gate] = []
        index = 0
        while index < len(gates):
            if index + 1 < len(gates):
                current, following = gates[index], gates[index + 1]
                same_wires = (current.targets == following.targets
                              and set(current.controls) == set(following.controls)
                              and current.condition == following.condition)
                if same_wires and (current.kind, following.kind) in _INVERSE_PAIRS:
                    index += 2
                    changed = True
                    continue
            result.append(gates[index])
            index += 1
        gates = result
    optimised = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_opt")
    for gate in gates:
        optimised.append(gate)
    for qubit, clbit in circuit.final_measurement_map():
        optimised.measure(qubit, clbit)
    optimised.num_clbits = max(optimised.num_clbits, circuit.num_clbits)
    return optimised


def fingerprint_normal_form(circuit: QuantumCircuit) -> QuantumCircuit:
    """The canonical form :func:`repro.cache.circuit_fingerprint` hashes.

    Two circuits that differ only by a *representation* choice — a SWAP
    written natively vs as its three-CNOT expansion, a Fredkin vs its
    CNOT+Toffoli+CNOT expansion, a duplicated terminal measurement marker
    (which :meth:`~repro.circuit.circuit.QuantumCircuit.measure` already
    treats as a no-op), or a different name — must reach the result cache
    under the same key, so the normal form is: :func:`expand_swaps` applied
    until no SWAP-family gate remains, the original qubit and classical
    register widths preserved, and the terminal measurement map kept in
    marker order (marker order is *semantic*: it fixes the shared descent
    sampler's RNG consumption, so it is hashed, not sorted).

    Deliberately **not** applied: :func:`cancel_adjacent_inverses` and
    :func:`decompose_multi_control`.  Both preserve the final state but
    change the simulated workload (peak node counts, ancilla register
    width), so two circuits related by them are *not* interchangeable for a
    cached :class:`~repro.engines.result.RunResult` whose memory statistics
    must stay byte-identical to a cold run.
    """
    normalised = expand_swaps(circuit)
    normalised.name = circuit.name
    normalised.num_clbits = max(normalised.num_clbits, circuit.num_clbits)
    return normalised


def count_t_gates(circuit: QuantumCircuit) -> int:
    """Number of T / T-dagger gates (the standard fault-tolerance cost metric)."""
    return sum(1 for gate in circuit.gates if gate.kind in (GateKind.T, GateKind.TDG))


def clifford_t_summary(circuit: QuantumCircuit) -> Dict[str, int]:
    """Counts of Clifford gates, T-type gates and other non-Clifford gates."""
    summary = {"clifford": 0, "t_like": 0, "other_non_clifford": 0}
    for gate in circuit.gates:
        if gate.kind in (GateKind.T, GateKind.TDG):
            summary["t_like"] += 1
        elif is_clifford_gate(gate):
            summary["clifford"] += 1
        else:
            summary["other_non_clifford"] += 1
    return summary

"""Quantum circuit intermediate representation and file formats.

The IR is deliberately small: a :class:`~repro.circuit.circuit.QuantumCircuit`
is an ordered list of :class:`~repro.circuit.gates.Gate` applications over a
fixed number of qubits, restricted to the gate set the paper supports
(Table I) plus a few exactly-representable extensions (S†, T†, SWAP).

Three file formats are supported:

* :mod:`repro.circuit.qasm` — an OpenQASM 2.0 subset (read/write),
* :mod:`repro.circuit.real_format` — RevLib ``.real`` reversible circuits
  (read/write), used by the Table IV experiments,
* :mod:`repro.circuit.grcs` — the Google random circuit sampling (GRCS) text
  format used by the Table VI supremacy experiments.
"""

from repro.circuit.gates import Gate, GateKind, GATE_SPECS, gate_matrix, gate_matrix_exact
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import circuit_to_qasm, circuit_from_qasm
from repro.circuit.real_format import circuit_to_real, circuit_from_real
from repro.circuit.grcs import circuit_to_grcs, circuit_from_grcs
from repro.circuit.transforms import (
    cancel_adjacent_inverses,
    clifford_t_summary,
    count_t_gates,
    decompose_multi_control,
    expand_swaps,
)

__all__ = [
    "Gate",
    "GateKind",
    "GATE_SPECS",
    "gate_matrix",
    "gate_matrix_exact",
    "QuantumCircuit",
    "circuit_to_qasm",
    "circuit_from_qasm",
    "circuit_to_real",
    "circuit_from_real",
    "circuit_to_grcs",
    "circuit_from_grcs",
    "cancel_adjacent_inverses",
    "clifford_t_summary",
    "count_t_gates",
    "decompose_multi_control",
    "expand_swaps",
]

"""OpenQASM 2.0 subset reader / writer.

Only the constructs needed for the supported gate set are implemented:

* one quantum register (``qreg q[n];``) and optionally one classical register,
* gate statements ``x``, ``y``, ``z``, ``h``, ``s``, ``sdg``, ``t``, ``tdg``,
  ``rx(pi/2)``, ``ry(pi/2)``, ``cx``, ``cz``, ``ccx``, ``cswap``, ``swap``,
* ``measure q[i] -> c[j];`` — terminal measurements become final-measurement
  markers; a measurement followed by further operations becomes a real
  collapsing :attr:`~repro.circuit.gates.GateKind.MEASURE` instruction,
* ``reset q[i];`` mid-circuit reset, and
* ``if(c==v) <statement>;`` classical conditions (the whole classical
  register compared against ``v``; ``c[0]`` is the least-significant bit).

This is enough to exchange the benchmark circuits — including
dynamic-circuit programs with mid-circuit measurement and classical
feedback — with mainstream tools (Qiskit, DDSIM's own frontends) for
cross-checking.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_KIND_TO_QASM = {
    GateKind.X: "x",
    GateKind.Y: "y",
    GateKind.Z: "z",
    GateKind.H: "h",
    GateKind.S: "s",
    GateKind.SDG: "sdg",
    GateKind.T: "t",
    GateKind.TDG: "tdg",
    GateKind.RX_PI_2: "rx(pi/2)",
    GateKind.RY_PI_2: "ry(pi/2)",
    GateKind.CX: "cx",
    GateKind.CZ: "cz",
    GateKind.CCX: "ccx",
    GateKind.CSWAP: "cswap",
    GateKind.SWAP: "swap",
}

_QASM_TO_KIND = {
    "x": GateKind.X,
    "y": GateKind.Y,
    "z": GateKind.Z,
    "h": GateKind.H,
    "s": GateKind.S,
    "sdg": GateKind.SDG,
    "t": GateKind.T,
    "tdg": GateKind.TDG,
    "cx": GateKind.CX,
    "cz": GateKind.CZ,
    "ccx": GateKind.CCX,
    "cswap": GateKind.CSWAP,
    "swap": GateKind.SWAP,
}

_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_MEASURE_RE = re.compile(r"measure\s+(\w+)\s*\[\s*(\d+)\s*\]\s*->\s*(\w+)\s*\[\s*(\d+)\s*\]")
_RESET_RE = re.compile(r"reset\s+(\w+)\s*\[\s*(\d+)\s*\]")
_IF_RE = re.compile(r"if\s*\(\s*(\w+)\s*==\s*(\d+)\s*\)\s*(.*)$")
_GATE_RE = re.compile(r"^(\w+)\s*(\(([^)]*)\))?\s+(.*)$")
_QUBIT_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")


def _condition_prefix(gate: Gate) -> str:
    return f"if(c=={gate.condition}) " if gate.condition is not None else ""


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text.

    Mid-circuit ``MEASURE`` / ``RESET`` instructions and classical
    conditions are emitted inline, terminal measurement markers at the end —
    so :func:`circuit_from_qasm` round-trips both static and dynamic
    circuits.
    """
    lines = [_QASM_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if circuit.num_clbits or circuit.measured_qubits:
        lines.append(f"creg c[{max(circuit.num_clbits, 1)}];")
    for gate in circuit.gates:
        prefix = _condition_prefix(gate)
        if gate.kind is GateKind.MEASURE:
            lines.append(f"{prefix}measure q[{gate.targets[0]}] -> c[{gate.clbits[0]}];")
            continue
        if gate.kind is GateKind.RESET:
            lines.append(f"{prefix}reset q[{gate.targets[0]}];")
            continue
        name = _KIND_TO_QASM[gate.kind]
        if gate.kind is GateKind.CCX and len(gate.controls) != 2:
            raise ValueError(
                "OpenQASM 2.0 has no native gate for Toffoli with "
                f"{len(gate.controls)} controls; decompose first")
        if gate.kind is GateKind.CSWAP and len(gate.controls) != 1:
            raise ValueError(
                "OpenQASM 2.0 has no native gate for Fredkin with "
                f"{len(gate.controls)} controls; decompose first")
        operands = ", ".join(f"q[{qubit}]" for qubit in gate.controls + gate.targets)
        lines.append(f"{prefix}{name} {operands};")
    for qubit, clbit in circuit.final_measurement_map():
        lines.append(f"measure q[{qubit}] -> c[{clbit}];")
    return "\n".join(lines) + "\n"


def _parse_angle(text: str) -> float:
    """Parse the restricted angle expressions we emit (``pi/2`` style)."""
    import math

    cleaned = text.replace(" ", "")
    substitutions = {
        "pi/2": math.pi / 2,
        "-pi/2": -math.pi / 2,
        "pi/4": math.pi / 4,
        "-pi/4": -math.pi / 4,
        "pi": math.pi,
        "-pi": -math.pi,
    }
    if cleaned in substitutions:
        return substitutions[cleaned]
    return float(cleaned)


def _parse_gate(statement: str, condition: Optional[int]) -> Gate:
    """One unitary gate statement (already stripped of any ``if(...)``)."""
    import math

    gate_match = _GATE_RE.match(statement)
    if not gate_match:
        raise ValueError(f"cannot parse QASM statement: {statement!r}")
    gate_name = gate_match.group(1).lower()
    angle_text = gate_match.group(3)
    qubits = [int(match.group(2)) for match in _QUBIT_RE.finditer(gate_match.group(4))]
    if gate_name in ("rx", "ry"):
        angle = _parse_angle(angle_text or "")
        if not math.isclose(angle, math.pi / 2, rel_tol=1e-9):
            raise ValueError(
                f"only {gate_name}(pi/2) is supported, got angle {angle}")
        kind = GateKind.RX_PI_2 if gate_name == "rx" else GateKind.RY_PI_2
        return Gate(kind, (qubits[0],), condition=condition)
    if gate_name not in _QASM_TO_KIND:
        raise ValueError(f"unsupported QASM gate: {gate_name}")
    kind = _QASM_TO_KIND[gate_name]
    if kind in (GateKind.CX, GateKind.CZ):
        return Gate(kind, (qubits[1],), (qubits[0],), condition=condition)
    if kind is GateKind.CCX:
        return Gate(kind, (qubits[2],), tuple(qubits[:2]), condition=condition)
    if kind is GateKind.CSWAP:
        return Gate(kind, tuple(qubits[1:]), (qubits[0],), condition=condition)
    if kind is GateKind.SWAP:
        return Gate(kind, tuple(qubits), condition=condition)
    return Gate(kind, (qubits[0],), condition=condition)


def circuit_from_qasm(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 subset string into a :class:`QuantumCircuit`.

    Measurements that are followed by further operations become collapsing
    mid-circuit ``MEASURE`` instructions; the trailing run of measurements
    becomes the circuit's final-measurement markers (matching what
    :func:`circuit_to_qasm` emits), so sampling semantics survive the round
    trip.
    """
    num_qubits: Optional[int] = None
    num_clbits = 0
    # Program order, preserved: ('gate', Gate) | ('measure', qubit, clbit,
    # condition) | ('reset', qubit, condition).
    program: List[Tuple] = []

    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        for statement in filter(None, (part.strip() for part in line.split(";"))):
            if statement.startswith("OPENQASM") or statement.startswith("include"):
                continue
            qreg_match = _QREG_RE.match(statement)
            if qreg_match:
                num_qubits = int(qreg_match.group(2))
                continue
            creg_match = _CREG_RE.match(statement)
            if creg_match:
                num_clbits = max(num_clbits, int(creg_match.group(2)))
                continue
            condition: Optional[int] = None
            if_match = _IF_RE.match(statement)
            if if_match:
                condition = int(if_match.group(2))
                statement = if_match.group(3).strip()
            measure_match = _MEASURE_RE.match(statement)
            if measure_match:
                program.append(("measure", int(measure_match.group(2)),
                                int(measure_match.group(4)), condition))
                continue
            reset_match = _RESET_RE.match(statement)
            if reset_match:
                program.append(("reset", int(reset_match.group(2)), condition))
                continue
            if statement.startswith("barrier"):
                continue
            program.append(("gate", _parse_gate(statement, condition)))

    if num_qubits is None:
        raise ValueError("QASM input declares no quantum register")

    # The trailing run of unconditioned measurements is the terminal
    # measurement block; everything before it executes in-stream.
    tail = len(program)
    while tail > 0 and program[tail - 1][0] == "measure" and program[tail - 1][3] is None:
        tail -= 1

    circuit = QuantumCircuit(num_qubits, name=name)
    for entry in program[:tail]:
        if entry[0] == "gate":
            circuit.append(entry[1])
        elif entry[0] == "measure":
            _, qubit, clbit, condition = entry
            circuit.append(Gate(GateKind.MEASURE, (qubit,), clbits=(clbit,),
                                condition=condition))
        else:
            _, qubit, condition = entry
            circuit.append(Gate(GateKind.RESET, (qubit,), condition=condition))
    for entry in program[tail:]:
        circuit.measure(entry[1], entry[2])
    circuit.num_clbits = max(circuit.num_clbits, num_clbits)
    return circuit

"""OpenQASM 2.0 subset reader / writer.

Only the constructs needed for the supported gate set are implemented:

* one quantum register (``qreg q[n];``) and optionally one classical register,
* gate statements ``x``, ``y``, ``z``, ``h``, ``s``, ``sdg``, ``t``, ``tdg``,
  ``rx(pi/2)``, ``ry(pi/2)``, ``cx``, ``cz``, ``ccx``, ``cswap``, ``swap``,
* ``measure q[i] -> c[i];``.

This is enough to exchange the benchmark circuits with mainstream tools
(Qiskit, DDSIM's own frontends) for cross-checking.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_KIND_TO_QASM = {
    GateKind.X: "x",
    GateKind.Y: "y",
    GateKind.Z: "z",
    GateKind.H: "h",
    GateKind.S: "s",
    GateKind.SDG: "sdg",
    GateKind.T: "t",
    GateKind.TDG: "tdg",
    GateKind.RX_PI_2: "rx(pi/2)",
    GateKind.RY_PI_2: "ry(pi/2)",
    GateKind.CX: "cx",
    GateKind.CZ: "cz",
    GateKind.CCX: "ccx",
    GateKind.CSWAP: "cswap",
    GateKind.SWAP: "swap",
}

_QASM_TO_KIND = {
    "x": GateKind.X,
    "y": GateKind.Y,
    "z": GateKind.Z,
    "h": GateKind.H,
    "s": GateKind.S,
    "sdg": GateKind.SDG,
    "t": GateKind.T,
    "tdg": GateKind.TDG,
    "cx": GateKind.CX,
    "cz": GateKind.CZ,
    "ccx": GateKind.CCX,
    "cswap": GateKind.CSWAP,
    "swap": GateKind.SWAP,
}

_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_MEASURE_RE = re.compile(r"measure\s+(\w+)\s*\[\s*(\d+)\s*\]\s*->\s*(\w+)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(r"^(\w+)\s*(\(([^)]*)\))?\s+(.*)$")
_QUBIT_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines = [_QASM_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if circuit.measured_qubits:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        name = _KIND_TO_QASM[gate.kind]
        if gate.kind is GateKind.CCX and len(gate.controls) != 2:
            raise ValueError(
                "OpenQASM 2.0 has no native gate for Toffoli with "
                f"{len(gate.controls)} controls; decompose first")
        if gate.kind is GateKind.CSWAP and len(gate.controls) != 1:
            raise ValueError(
                "OpenQASM 2.0 has no native gate for Fredkin with "
                f"{len(gate.controls)} controls; decompose first")
        operands = ", ".join(f"q[{qubit}]" for qubit in gate.controls + gate.targets)
        lines.append(f"{name} {operands};")
    for qubit in circuit.measured_qubits:
        lines.append(f"measure q[{qubit}] -> c[{qubit}];")
    return "\n".join(lines) + "\n"


def _parse_angle(text: str) -> float:
    """Parse the restricted angle expressions we emit (``pi/2`` style)."""
    import math

    cleaned = text.replace(" ", "")
    substitutions = {
        "pi/2": math.pi / 2,
        "-pi/2": -math.pi / 2,
        "pi/4": math.pi / 4,
        "-pi/4": -math.pi / 4,
        "pi": math.pi,
        "-pi": -math.pi,
    }
    if cleaned in substitutions:
        return substitutions[cleaned]
    return float(cleaned)


def circuit_from_qasm(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 subset string into a :class:`QuantumCircuit`."""
    import math

    num_qubits: Optional[int] = None
    register_name = "q"
    pending: List[Tuple[str, Optional[str], List[int]]] = []
    measurements: List[int] = []

    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        for statement in filter(None, (part.strip() for part in line.split(";"))):
            if statement.startswith("OPENQASM") or statement.startswith("include"):
                continue
            qreg_match = _QREG_RE.match(statement)
            if qreg_match:
                register_name = qreg_match.group(1)
                num_qubits = int(qreg_match.group(2))
                continue
            if _CREG_RE.match(statement):
                continue
            measure_match = _MEASURE_RE.match(statement)
            if measure_match:
                measurements.append(int(measure_match.group(2)))
                continue
            if statement.startswith("barrier"):
                continue
            gate_match = _GATE_RE.match(statement)
            if not gate_match:
                raise ValueError(f"cannot parse QASM statement: {statement!r}")
            gate_name = gate_match.group(1).lower()
            angle_text = gate_match.group(3)
            qubits = [int(match.group(2)) for match in _QUBIT_RE.finditer(gate_match.group(4))]
            pending.append((gate_name, angle_text, qubits))

    if num_qubits is None:
        raise ValueError("QASM input declares no quantum register")

    circuit = QuantumCircuit(num_qubits, name=name)
    for gate_name, angle_text, qubits in pending:
        if gate_name in ("rx", "ry"):
            angle = _parse_angle(angle_text or "")
            if not math.isclose(angle, math.pi / 2, rel_tol=1e-9):
                raise ValueError(
                    f"only {gate_name}(pi/2) is supported, got angle {angle}")
            kind = GateKind.RX_PI_2 if gate_name == "rx" else GateKind.RY_PI_2
            circuit.add(kind, [qubits[0]])
            continue
        if gate_name not in _QASM_TO_KIND:
            raise ValueError(f"unsupported QASM gate: {gate_name}")
        kind = _QASM_TO_KIND[gate_name]
        if kind in (GateKind.CX, GateKind.CZ):
            circuit.add(kind, [qubits[1]], [qubits[0]])
        elif kind is GateKind.CCX:
            circuit.add(kind, [qubits[2]], qubits[:2])
        elif kind is GateKind.CSWAP:
            circuit.add(kind, qubits[1:], [qubits[0]])
        elif kind is GateKind.SWAP:
            circuit.add(kind, qubits)
        else:
            circuit.add(kind, [qubits[0]])
    for qubit in measurements:
        circuit.measure(qubit)
    return circuit

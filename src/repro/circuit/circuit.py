"""The :class:`QuantumCircuit` container.

A circuit is an ordered sequence of :class:`~repro.circuit.gates.Gate`
applications on ``num_qubits`` qubits, optionally followed (or interleaved)
with measurement markers.  The class offers a fluent builder API
(``circuit.h(0).cx(0, 1)``), structural statistics used by the benchmark
harness (gate counts, depth, two-qubit gate count), composition, inversion
and validation against the paper's gate set.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.gates import (
    GATE_SPECS,
    PAPER_GATE_KINDS,
    Gate,
    GateKind,
    is_clifford_gate,
)


class QuantumCircuit:
    """An ordered list of gates over a fixed register of qubits.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.  Qubit 0 is, by the paper's convention,
        the most significant bit of a basis-state index.
    name:
        Optional human-readable name used by the harness when reporting.
    """

    def __init__(self, num_qubits: int, name: str = ""):
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name or f"circuit_{num_qubits}q"
        self._gates: List[Gate] = []
        #: Qubits marked for final measurement, in measurement order.
        self.measured_qubits: List[int] = []
        #: Classical bit each final measurement writes to, parallel to
        #: :attr:`measured_qubits` (``measure q[i] -> c[j]``).
        self.measured_clbits: List[int] = []
        #: Width of the classical register (grows as clbits are referenced).
        self.num_clbits: int = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit")

    def _touch_clbit(self, clbit: int) -> None:
        if clbit < 0:
            raise ValueError("classical bit indices must be non-negative")
        self.num_clbits = max(self.num_clbits, clbit + 1)

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a pre-built :class:`Gate`."""
        self._check_qubits(gate.qubits)
        for clbit in gate.clbits:
            self._touch_clbit(clbit)
        self._gates.append(gate)
        return self

    def add(self, kind: GateKind, targets: Sequence[int],
            controls: Sequence[int] = (),
            condition: Optional[int] = None) -> "QuantumCircuit":
        """Append a gate by kind, targets and controls.

        ``condition`` makes the gate classically controlled: it only executes
        when the classical register equals ``condition`` (OpenQASM
        ``if(c==v)`` semantics; clbit 0 is the least-significant bit).
        """
        return self.append(Gate(kind, tuple(targets), tuple(controls),
                                condition=condition))

    # -- single-qubit builders ------------------------------------------ #
    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X on ``qubit``."""
        return self.add(GateKind.X, [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y on ``qubit``."""
        return self.add(GateKind.Y, [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z on ``qubit``."""
        return self.add(GateKind.Z, [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard on ``qubit``."""
        return self.add(GateKind.H, [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S on ``qubit``."""
        return self.add(GateKind.S, [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate S-dagger on ``qubit``."""
        return self.add(GateKind.SDG, [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate on ``qubit``."""
        return self.add(GateKind.T, [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """T-dagger gate on ``qubit``."""
        return self.add(GateKind.TDG, [qubit])

    def rx_pi_2(self, qubit: int) -> "QuantumCircuit":
        """Rx(pi/2) on ``qubit``."""
        return self.add(GateKind.RX_PI_2, [qubit])

    def ry_pi_2(self, qubit: int) -> "QuantumCircuit":
        """Ry(pi/2) on ``qubit``."""
        return self.add(GateKind.RY_PI_2, [qubit])

    # -- multi-qubit builders ------------------------------------------- #
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT with ``control`` and ``target``."""
        return self.add(GateKind.CX, [target], [control])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.add(GateKind.CZ, [target], [control])

    def ccx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Toffoli with an arbitrary number of controls."""
        return self.add(GateKind.CCX, [target], controls)

    def toffoli(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Standard two-control Toffoli."""
        return self.ccx([control_a, control_b], target)

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP two qubits."""
        return self.add(GateKind.SWAP, [qubit_a, qubit_b])

    def cswap(self, controls: Sequence[int], qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Fredkin (controlled SWAP) with an arbitrary number of controls."""
        return self.add(GateKind.CSWAP, [qubit_a, qubit_b], controls)

    def fredkin(self, control: int, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Standard single-control Fredkin."""
        return self.cswap([control], qubit_a, qubit_b)

    def measure(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        """Mark ``qubit`` for final measurement, recording into ``clbit``.

        This is the *terminal* measurement marker (``measure q[i] -> c[j];``
        at the end of an OpenQASM program): the state is not collapsed during
        execution, and shot sampling draws the marked qubits jointly from the
        final state.  For a collapsing measurement in the middle of a circuit
        use :meth:`measure_mid` instead.  ``clbit`` defaults to the qubit
        index.  Repeating an existing ``(qubit, clbit)`` pair is a no-op;
        measuring an already marked qubit into a *different* clbit adds a
        second mapping (both clbits receive the qubit's outcome, as in
        OpenQASM).
        """
        self._check_qubits([qubit])
        clbit = qubit if clbit is None else clbit
        if (qubit, clbit) not in zip(self.measured_qubits, self.measured_clbits):
            self._touch_clbit(clbit)
            self.measured_qubits.append(qubit)
            self.measured_clbits.append(clbit)
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Mark every qubit for final measurement."""
        for qubit in range(self.num_qubits):
            self.measure(qubit)
        return self

    def measure_mid(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        """Measure ``qubit`` *now*, collapsing the state, into ``clbit``.

        Appends a real :attr:`GateKind.MEASURE` instruction to the gate
        stream: when the circuit is executed the state collapses to the
        sampled outcome, the outcome lands in the classical register, and
        later gates may be conditioned on it (``condition=`` / ``if(c==v)``).
        ``clbit`` defaults to the qubit index.
        """
        clbit = qubit if clbit is None else clbit
        return self.append(Gate(GateKind.MEASURE, (qubit,), clbits=(clbit,)))

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset ``qubit`` to ``|0>`` mid-circuit (measure, then flip on 1)."""
        return self.append(Gate(GateKind.RESET, (qubit,)))

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``.

        ``other`` may not use more qubits than ``self``.
        """
        if other.num_qubits > self.num_qubits:
            raise ValueError("cannot compose a larger circuit onto a smaller one")
        combined = QuantumCircuit(self.num_qubits, name=f"{self.name}+{other.name}")
        for gate in self._gates:
            combined.append(gate)
        for gate in other.gates:
            combined.append(gate)
        for qubit, clbit in (list(zip(self.measured_qubits, self.measured_clbits))
                             + list(zip(other.measured_qubits, other.measured_clbits))):
            combined.measure(qubit, clbit)
        combined.num_clbits = max(combined.num_clbits, self.num_clbits,
                                  other.num_clbits)
        return combined

    def inverse(self) -> "QuantumCircuit":
        """Return the exact inverse circuit (gates reversed and inverted)."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_inv")
        for gate in reversed(self._gates):
            inv.append(gate.inverse())
        return inv

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """A shallow copy (gates are immutable, so sharing them is safe)."""
        duplicate = QuantumCircuit(self.num_qubits, name=name or self.name)
        duplicate._gates = list(self._gates)
        duplicate.measured_qubits = list(self.measured_qubits)
        duplicate.measured_clbits = list(self.measured_clbits)
        duplicate.num_clbits = self.num_clbits
        return duplicate

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate kinds (by name)."""
        return dict(Counter(gate.kind.value for gate in self._gates))

    def num_two_qubit_gates(self) -> int:
        """Number of gates touching two or more qubits."""
        return sum(1 for gate in self._gates if gate.is_two_qubit_or_more)

    def depth(self) -> int:
        """Circuit depth: length of the longest qubit-dependency chain."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for qubit in gate.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def is_clifford(self) -> bool:
        """True if every gate is a Clifford gate (stabilizer-simulable)."""
        return all(is_clifford_gate(gate) for gate in self._gates)

    def has_dynamic_ops(self) -> bool:
        """True when the circuit contains mid-circuit measurement, reset or
        classically-conditioned gates (i.e. executing it involves classical
        state and randomness, not just unitaries)."""
        return any(gate.kind in (GateKind.MEASURE, GateKind.RESET)
                   or gate.condition is not None
                   for gate in self._gates)

    def final_measurement_map(self) -> List[Tuple[int, int]]:
        """The terminal ``(qubit, clbit)`` measurement pairs, in marker order
        (empty when the circuit marks no final measurements)."""
        return list(zip(self.measured_qubits, self.measured_clbits))

    def uses_only_paper_gates(self) -> bool:
        """True if every gate kind appears in the paper's Table I."""
        return all(gate.kind in PAPER_GATE_KINDS for gate in self._gates)

    def is_reversible_classical(self) -> bool:
        """True if the circuit uses only classical reversible gates
        (X / CNOT / Toffoli / Fredkin / SWAP), i.e. a RevLib-style circuit."""
        classical = {GateKind.X, GateKind.CX, GateKind.CCX,
                     GateKind.CSWAP, GateKind.SWAP}
        return all(gate.kind in classical for gate in self._gates)

    def qubits_touched(self) -> List[int]:
        """Sorted list of qubits referenced by at least one gate."""
        touched = set()
        for gate in self._gates:
            touched.update(gate.qubits)
        return sorted(touched)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (self.num_qubits == other.num_qubits
                and self._gates == other._gates
                and self.measured_qubits == other.measured_qubits
                and self.measured_clbits == other.measured_clbits)

    def __repr__(self) -> str:
        return (f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
                f"num_gates={self.num_gates})")

    def summary(self) -> str:
        """A short multi-line human-readable summary."""
        counts = ", ".join(f"{name}:{count}" for name, count in sorted(self.gate_counts().items()))
        return (f"{self.name}: {self.num_qubits} qubits, {self.num_gates} gates, "
                f"depth {self.depth()}\n  [{counts}]")

"""Gate definitions for the supported gate set.

The set matches the paper's Table I — X, Y, Z, H, S, T, Rx(pi/2), Ry(pi/2),
CNOT, CZ, Toffoli (any number of controls), Fredkin (controlled SWAP) — plus
three exactly-representable conveniences the original tool also accepts in
practice: S-dagger, T-dagger and the uncontrolled SWAP.  Every entry of every
matrix lies in the ring ``Z[w]/sqrt(2)^k``, so simulation stays exact.

Each gate kind carries:

* its 2x2 (or SWAP-style) base matrix both as exact
  :class:`~repro.algebra.omega.AlgebraicComplex` entries and as a numpy array,
* whether it is a Clifford gate (relevant for the stabilizer baseline),
* whether it introduces imaginary components (the paper notes that Y, S, T and
  Rx(pi/2) couple the a/b/c/d bit-planes, while the others keep them
  independent), and
* the increment of the global ``k`` exponent (1 for H, Rx(pi/2), Ry(pi/2),
  otherwise 0).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algebra import AlgebraicComplex

_ONE = AlgebraicComplex.one()
_ZERO = AlgebraicComplex.zero()
_I = AlgebraicComplex.imaginary_unit()
_W = AlgebraicComplex.omega_power(1)
_NEG_ONE = AlgebraicComplex.from_int(-1)
_NEG_I = -_I
_INV_SQRT2 = AlgebraicComplex(0, 0, 0, 1, 1, canonical=False)  # 1/sqrt(2)


class GateKind(str, enum.Enum):
    """Enumeration of supported gate kinds."""

    X = "x"
    Y = "y"
    Z = "z"
    H = "h"
    S = "s"
    SDG = "sdg"
    T = "t"
    TDG = "tdg"
    RX_PI_2 = "rx_pi_2"
    RY_PI_2 = "ry_pi_2"
    CX = "cx"
    CZ = "cz"
    CCX = "ccx"
    CSWAP = "cswap"
    SWAP = "swap"
    MEASURE = "measure"
    RESET = "reset"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GateSpec:
    """Static description of one gate kind."""

    kind: GateKind
    num_targets: int
    min_controls: int
    is_clifford: bool
    has_imaginary: bool
    k_increment: int
    base_matrix_exact: Optional[Tuple[Tuple[AlgebraicComplex, ...], ...]]

    @property
    def base_matrix(self) -> Optional[np.ndarray]:
        """The base single-qubit matrix as a complex numpy array (or ``None``
        for SWAP-style and measurement pseudo-gates)."""
        if self.base_matrix_exact is None:
            return None
        return np.array(
            [[entry.to_complex() for entry in row] for row in self.base_matrix_exact],
            dtype=complex,
        )


def _m(rows: Sequence[Sequence[AlgebraicComplex]]) -> Tuple[Tuple[AlgebraicComplex, ...], ...]:
    return tuple(tuple(row) for row in rows)


#: Registry of gate specifications, keyed by :class:`GateKind`.
GATE_SPECS: Dict[GateKind, GateSpec] = {
    GateKind.X: GateSpec(GateKind.X, 1, 0, True, False, 0,
                         _m([[_ZERO, _ONE], [_ONE, _ZERO]])),
    GateKind.Y: GateSpec(GateKind.Y, 1, 0, True, True, 0,
                         _m([[_ZERO, _NEG_I], [_I, _ZERO]])),
    GateKind.Z: GateSpec(GateKind.Z, 1, 0, True, False, 0,
                         _m([[_ONE, _ZERO], [_ZERO, _NEG_ONE]])),
    GateKind.H: GateSpec(GateKind.H, 1, 0, True, False, 1,
                         _m([[_INV_SQRT2, _INV_SQRT2],
                             [_INV_SQRT2, -_INV_SQRT2]])),
    GateKind.S: GateSpec(GateKind.S, 1, 0, True, True, 0,
                         _m([[_ONE, _ZERO], [_ZERO, _I]])),
    GateKind.SDG: GateSpec(GateKind.SDG, 1, 0, True, True, 0,
                           _m([[_ONE, _ZERO], [_ZERO, _NEG_I]])),
    GateKind.T: GateSpec(GateKind.T, 1, 0, False, True, 0,
                         _m([[_ONE, _ZERO], [_ZERO, _W]])),
    GateKind.TDG: GateSpec(GateKind.TDG, 1, 0, False, True, 0,
                           _m([[_ONE, _ZERO], [_ZERO, AlgebraicComplex.omega_power(7)]])),
    GateKind.RX_PI_2: GateSpec(GateKind.RX_PI_2, 1, 0, True, True, 1,
                               _m([[_INV_SQRT2, _NEG_I * _INV_SQRT2],
                                   [_NEG_I * _INV_SQRT2, _INV_SQRT2]])),
    GateKind.RY_PI_2: GateSpec(GateKind.RY_PI_2, 1, 0, True, False, 1,
                               _m([[_INV_SQRT2, -_INV_SQRT2],
                                   [_INV_SQRT2, _INV_SQRT2]])),
    GateKind.CX: GateSpec(GateKind.CX, 1, 1, True, False, 0,
                          _m([[_ZERO, _ONE], [_ONE, _ZERO]])),
    GateKind.CZ: GateSpec(GateKind.CZ, 1, 1, True, False, 0,
                          _m([[_ONE, _ZERO], [_ZERO, _NEG_ONE]])),
    GateKind.CCX: GateSpec(GateKind.CCX, 1, 1, False, False, 0,
                           _m([[_ZERO, _ONE], [_ONE, _ZERO]])),
    GateKind.CSWAP: GateSpec(GateKind.CSWAP, 2, 1, False, False, 0, None),
    GateKind.SWAP: GateSpec(GateKind.SWAP, 2, 0, True, False, 0, None),
    GateKind.MEASURE: GateSpec(GateKind.MEASURE, 1, 0, True, False, 0, None),
    GateKind.RESET: GateSpec(GateKind.RESET, 1, 0, True, False, 0, None),
}

#: Gate kinds allowed by the paper's Table I (used to validate "paper mode").
PAPER_GATE_KINDS = frozenset({
    GateKind.X, GateKind.Y, GateKind.Z, GateKind.H, GateKind.S, GateKind.T,
    GateKind.RX_PI_2, GateKind.RY_PI_2, GateKind.CX, GateKind.CZ,
    GateKind.CCX, GateKind.CSWAP,
})


@dataclass(frozen=True)
class Gate:
    """One gate application: a kind, target qubit(s) and control qubit(s).

    ``targets`` holds one qubit for single-target gates, two for SWAP-style
    gates.  ``controls`` may hold any number of qubits for CCX (the paper's
    general Toffoli) and CSWAP; CX and CZ require exactly one control.

    ``clbits`` names the classical bit a :attr:`GateKind.MEASURE` instruction
    writes its outcome into (``measure q[i] -> c[j]`` in OpenQASM), and is
    empty for every other kind.  ``condition`` makes the instruction
    classically controlled: it only executes when the integer value of the
    classical register (clbit 0 is the least-significant bit, the OpenQASM
    2.0 ``if(c==v)`` convention) equals ``condition``.
    """

    kind: GateKind
    targets: Tuple[int, ...]
    controls: Tuple[int, ...] = field(default_factory=tuple)
    clbits: Tuple[int, ...] = field(default_factory=tuple)
    condition: Optional[int] = None

    def __post_init__(self):
        spec = GATE_SPECS[self.kind]
        if len(self.targets) != spec.num_targets:
            raise ValueError(
                f"{self.kind.value} expects {spec.num_targets} target(s), "
                f"got {len(self.targets)}")
        if len(self.controls) < spec.min_controls:
            raise ValueError(
                f"{self.kind.value} expects at least {spec.min_controls} "
                f"control(s), got {len(self.controls)}")
        if self.kind in (GateKind.CX, GateKind.CZ) and len(self.controls) != 1:
            raise ValueError(f"{self.kind.value} expects exactly one control")
        touched = self.targets + self.controls
        if len(set(touched)) != len(touched):
            raise ValueError("a gate cannot touch the same qubit twice")
        if any(q < 0 for q in touched):
            raise ValueError("qubit indices must be non-negative")
        if self.kind is GateKind.MEASURE:
            if len(self.clbits) > 1:
                raise ValueError("measure writes at most one classical bit")
        elif self.clbits:
            raise ValueError(
                f"{self.kind.value} does not write a classical bit")
        if self.clbits and any(c < 0 for c in self.clbits):
            raise ValueError("classical bit indices must be non-negative")
        if self.condition is not None and self.condition < 0:
            raise ValueError("a classical condition value must be non-negative")

    @property
    def spec(self) -> GateSpec:
        """The static :class:`GateSpec` of this gate's kind."""
        return GATE_SPECS[self.kind]

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubits touched by the gate (controls then targets)."""
        return self.controls + self.targets

    @property
    def is_two_qubit_or_more(self) -> bool:
        """True when the gate touches more than one qubit."""
        return len(self.qubits) > 1

    def inverse(self) -> "Gate":
        """The exact inverse gate, when it exists inside the supported set."""
        self_inverse = {
            GateKind.X, GateKind.Y, GateKind.Z, GateKind.H,
            GateKind.CX, GateKind.CZ, GateKind.CCX, GateKind.CSWAP,
            GateKind.SWAP,
        }
        if self.kind in self_inverse:
            return self
        swaps = {
            GateKind.S: GateKind.SDG,
            GateKind.SDG: GateKind.S,
            GateKind.T: GateKind.TDG,
            GateKind.TDG: GateKind.T,
        }
        if self.kind in swaps:
            return Gate(swaps[self.kind], self.targets, self.controls)
        raise ValueError(f"gate {self.kind.value} has no inverse in the supported set")

    def __str__(self) -> str:
        parts = [self.kind.value]
        if self.condition is not None:
            parts.insert(0, f"if(c=={self.condition})")
        if self.controls:
            parts.append("c=" + ",".join(map(str, self.controls)))
        parts.append("t=" + ",".join(map(str, self.targets)))
        if self.clbits:
            parts.append("cl=" + ",".join(map(str, self.clbits)))
        return " ".join(parts)


def gate_matrix_exact(kind: GateKind) -> Tuple[Tuple[AlgebraicComplex, ...], ...]:
    """Exact 2x2 base matrix of a single-target gate kind."""
    spec = GATE_SPECS[kind]
    if spec.base_matrix_exact is None:
        raise ValueError(f"gate {kind.value} has no 2x2 base matrix")
    return spec.base_matrix_exact


def gate_matrix(kind: GateKind) -> np.ndarray:
    """Numpy 2x2 base matrix of a single-target gate kind."""
    spec = GATE_SPECS[kind]
    matrix = spec.base_matrix
    if matrix is None:
        raise ValueError(f"gate {kind.value} has no 2x2 base matrix")
    return matrix


def full_unitary(gate: Gate, num_qubits: int) -> np.ndarray:
    """The dense ``2**n x 2**n`` unitary of ``gate`` on ``num_qubits`` qubits.

    Qubit 0 is the most significant bit of the basis index (the paper's
    convention).  Only intended for small ``num_qubits`` (tests, examples).
    """
    dim = 1 << num_qubits
    unitary = np.zeros((dim, dim), dtype=complex)

    def bit(index: int, qubit: int) -> int:
        return (index >> (num_qubits - 1 - qubit)) & 1

    def flip(index: int, qubit: int) -> int:
        return index ^ (1 << (num_qubits - 1 - qubit))

    if gate.kind in (GateKind.SWAP, GateKind.CSWAP):
        qa, qb = gate.targets
        for column in range(dim):
            row = column
            if all(bit(column, c) for c in gate.controls) and bit(column, qa) != bit(column, qb):
                row = flip(flip(column, qa), qb)
            unitary[row, column] = 1.0
        return unitary

    matrix = gate_matrix(gate.kind)
    target = gate.targets[0]
    for column in range(dim):
        if not all(bit(column, c) for c in gate.controls):
            unitary[column, column] = 1.0
            continue
        t_bit = bit(column, target)
        partner = flip(column, target)
        # Column 'column' of the full unitary places matrix[:, t_bit] into the
        # rows for target=0/1 with all other bits fixed.
        row0 = column if t_bit == 0 else partner
        row1 = partner if t_bit == 0 else column
        unitary[row0, column] += matrix[0, t_bit]
        unitary[row1, column] += matrix[1, t_bit]
    return unitary


def is_clifford_gate(gate: Gate) -> bool:
    """True if the gate (including its control structure) is a Clifford gate.

    CCX/CSWAP are Clifford only in their degenerate (zero- or for CCX
    one-control) forms; with their full control counts they are not.
    """
    if gate.kind in (GateKind.CCX,):
        return len(gate.controls) <= 1
    if gate.kind in (GateKind.CSWAP,):
        return len(gate.controls) == 0
    return gate.spec.is_clifford

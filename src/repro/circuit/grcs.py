"""Google random circuit sampling (GRCS) text format reader / writer.

The supremacy benchmark circuits of Boixo et al. ("Characterizing quantum
supremacy in near-term devices") are distributed as plain-text files with one
gate per line::

    <num_qubits>
    <cycle> h <qubit>
    <cycle> cz <qubit_a> <qubit_b>
    <cycle> t <qubit>
    <cycle> x_1_2 <qubit>
    <cycle> y_1_2 <qubit>

``x_1_2`` / ``y_1_2`` denote the square roots of X and Y.  Up to a global
phase (``exp(i*pi/4)``), ``sqrt(X) == Rx(pi/2)`` and ``sqrt(Y) == Ry(pi/2)``,
so they are mapped onto the paper's ``Rx(pi/2)`` / ``Ry(pi/2)`` gates; global
phase never affects measurement statistics, and the mapping is what the
original SliQSim frontend does as well.

The writer emits the same format so generated circuits can be fed to other
simulators for cross-checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind


class GrcsFormatError(ValueError):
    """Raised on malformed or unsupported GRCS input."""


_GRCS_SINGLE_QUBIT = {
    "h": GateKind.H,
    "t": GateKind.T,
    "x": GateKind.X,
    "y": GateKind.Y,
    "z": GateKind.Z,
    "s": GateKind.S,
    "x_1_2": GateKind.RX_PI_2,
    "y_1_2": GateKind.RY_PI_2,
}

_KIND_TO_GRCS = {
    GateKind.H: "h",
    GateKind.T: "t",
    GateKind.X: "x",
    GateKind.Y: "y",
    GateKind.Z: "z",
    GateKind.S: "s",
    GateKind.RX_PI_2: "x_1_2",
    GateKind.RY_PI_2: "y_1_2",
    GateKind.CZ: "cz",
    GateKind.CX: "cnot",
}


def circuit_from_grcs(text: str, name: str = "grcs_circuit") -> QuantumCircuit:
    """Parse GRCS text into a :class:`QuantumCircuit`.

    Gates are appended in file order (the files are already sorted by cycle);
    the cycle number is otherwise ignored because the IR is a flat sequence.
    """
    lines = [line.split("#")[0].strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    if not lines:
        raise GrcsFormatError("empty GRCS input")
    try:
        num_qubits = int(lines[0])
    except ValueError as exc:
        raise GrcsFormatError("first GRCS line must be the qubit count") from exc

    circuit = QuantumCircuit(num_qubits, name=name)
    for line in lines[1:]:
        tokens = line.split()
        if len(tokens) < 3:
            raise GrcsFormatError(f"cannot parse GRCS line: {line!r}")
        gate_name = tokens[1].lower()
        qubits = [int(token) for token in tokens[2:]]
        if gate_name in ("cz",):
            if len(qubits) != 2:
                raise GrcsFormatError(f"cz expects two qubits: {line!r}")
            circuit.cz(qubits[0], qubits[1])
        elif gate_name in ("cnot", "cx"):
            if len(qubits) != 2:
                raise GrcsFormatError(f"cnot expects two qubits: {line!r}")
            circuit.cx(qubits[0], qubits[1])
        elif gate_name in _GRCS_SINGLE_QUBIT:
            if len(qubits) != 1:
                raise GrcsFormatError(f"{gate_name} expects one qubit: {line!r}")
            circuit.add(_GRCS_SINGLE_QUBIT[gate_name], [qubits[0]])
        else:
            raise GrcsFormatError(f"unsupported GRCS gate: {gate_name}")
    return circuit


def circuit_to_grcs(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to GRCS text.

    The cycle number written for each gate is the gate's depth level in the
    circuit, which reproduces the layer structure the format expects.
    """
    lines = [str(circuit.num_qubits)]
    frontier = [0] * circuit.num_qubits
    for gate in circuit.gates:
        if gate.kind not in _KIND_TO_GRCS:
            raise GrcsFormatError(
                f"gate {gate.kind.value} cannot be expressed in GRCS format")
        level = max(frontier[q] for q in gate.qubits)
        for qubit in gate.qubits:
            frontier[qubit] = level + 1
        qubit_text = " ".join(str(qubit) for qubit in gate.controls + gate.targets)
        lines.append(f"{level} {_KIND_TO_GRCS[gate.kind]} {qubit_text}")
    return "\n".join(lines) + "\n"

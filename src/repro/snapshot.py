"""Crash-safe, versioned snapshots of BDD managers and simulators.

ROADMAP item 3: a crashed Table VI run used to lose everything, because
the simulator's state — the interner's node columns, the unique table,
the free list, the 4r slice handles — lived only in memory.  This module
serialises all of it to a single file whose restore is *byte-exact*: the
restored manager's storage columns (``_var`` / ``_low`` / ``_high``),
free-list order, unique-table insertion order and external reference
table are column-for-column identical to the source, so a resumed run
produces results byte-identical to an uninterrupted one (PR 9's
node-identity contract makes node ids a pure function of creation order,
which this module preserves exactly).

Format
------
A snapshot is a sectioned binary container::

    magic "REPROSNAP1" | version u32 | kind | section count
    per section: name | payload length u64 | CRC32 | payload

Every section carries its own CRC32, so torn writes, truncations and
bit flips are always *detected* — :func:`read_snapshot` raises
:class:`SnapshotCorruptError` naming the offending section instead of
ever handing back garbage.  Writes are atomic: the payload goes to a
temporary file in the target directory, is fsynced, and then renamed
over the destination (:func:`write_snapshot`), so a crash mid-write
leaves either the old snapshot or none — never a half-written one.

Integer sections use native-endian 64-bit arrays (snapshots are
checkpoints, not an interchange format — they are read back by the
machine that wrote them); scalar metadata uses canonical JSON.

The three substrate backends (``dict`` / ``array`` / ``compiled``)
share one on-disk format: node columns and the unique table's node-id
insertion order are backend-independent, and backend-native unique-table
keys (tuples vs. packed integers) are rebuilt from the columns on
restore.  A snapshot written by the ``compiled`` backend restores on a
machine without numba via the same degradation rule as
:func:`repro.bdd.substrate.resolve_substrate`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.bdd import Bdd, BddManager
from repro.bdd.array_manager import ArrayBddManager, pack_key
from repro.bdd.substrate import create_manager, resolve_substrate
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState
from repro.core.gate_rules import GateRuleEngine
from repro.core.simulator import BitSliceSimulator

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotCorruptError",
    "write_snapshot",
    "read_snapshot",
    "snapshot_info",
    "dump_manager",
    "load_manager",
    "dump_simulator",
    "load_simulator",
]

#: On-disk format version.  Bumped on any incompatible layout change; a
#: reader seeing an unknown version refuses with
#: :class:`SnapshotCorruptError` instead of guessing (see
#: ``docs/checkpointing.md`` for the compatibility policy).
SNAPSHOT_VERSION = 1

_MAGIC = b"REPROSNAP1"
_HEADER = struct.Struct("<I")          # version
_SECTION_HEAD = struct.Struct("<HQI")  # name length, payload length, CRC32
_COUNT = struct.Struct("<I")           # section count / kind length

#: Sections every manager snapshot must carry, in writing order.
_MANAGER_SECTIONS = ("meta", "var", "low", "high", "unique", "free",
                     "order", "refs", "knobs", "counters")
#: Additional sections of a simulator snapshot.
_SIMULATOR_SECTIONS = _MANAGER_SECTIONS + ("state", "simulator", "extra")

#: Free slots are stamped with this var value by the GC sweep.
_FREED = -2


class SnapshotCorruptError(RuntimeError):
    """A snapshot file is torn, truncated, bit-flipped or inconsistent.

    Carries the ``section`` whose integrity check failed (``"header"``
    for damage before the first section) and the offending ``path``, so
    callers can log *what* was damaged and skip the file — a corrupt
    checkpoint is always detected and never restored.
    """

    def __init__(self, message: str, *, section: str = "header",
                 path: Optional[str] = None):
        location = f" [{os.fspath(path)}]" if path is not None else ""
        super().__init__(f"snapshot section {section!r}: {message}{location}")
        #: Name of the damaged section (``"header"`` for container-level damage).
        self.section = section
        #: Path of the damaged file, when known.
        self.path = os.fspath(path) if path is not None else None


# ---------------------------------------------------------------------- #
# container: sectioned, checksummed, atomically written
# ---------------------------------------------------------------------- #
def write_snapshot(path: str, kind: str, sections: Dict[str, bytes]) -> None:
    """Write ``sections`` to ``path`` atomically.

    The container is assembled in memory, written to a sibling temporary
    file, fsynced, and renamed over ``path`` (followed by a directory
    fsync where the platform supports it) — a crash at any point leaves
    the previous snapshot intact or no file at all.
    """
    blob = bytearray()
    blob += _MAGIC
    blob += _HEADER.pack(SNAPSHOT_VERSION)
    kind_bytes = kind.encode("utf-8")
    blob += _COUNT.pack(len(kind_bytes))
    blob += kind_bytes
    blob += _COUNT.pack(len(sections))
    for name, payload in sections.items():
        name_bytes = name.encode("utf-8")
        blob += _SECTION_HEAD.pack(len(name_bytes), len(payload),
                                   zlib.crc32(payload))
        blob += name_bytes
        blob += payload
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    temp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(temp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(dir_fd)


class _Reader:
    """Cursor over a snapshot blob that turns every short read into a
    :class:`SnapshotCorruptError` instead of an IndexError."""

    def __init__(self, blob: bytes, path: Optional[str]):
        self.blob = blob
        self.offset = 0
        self.path = path

    def take(self, count: int, section: str) -> bytes:
        chunk = self.blob[self.offset:self.offset + count]
        if len(chunk) != count:
            raise SnapshotCorruptError(
                f"truncated: wanted {count} bytes at offset {self.offset}, "
                f"file has {len(self.blob)}", section=section, path=self.path)
        self.offset += count
        return chunk


def read_snapshot(path: str, expected_kind: str) -> Dict[str, bytes]:
    """Read and integrity-check the snapshot at ``path``.

    Returns the section payload mapping after verifying the magic, the
    format version, the kind tag, every per-section CRC32 and the exact
    file length.  Any damage — torn write, truncation, bit flip, wrong
    kind, unknown version — raises :class:`SnapshotCorruptError` naming
    the first section that failed; a corrupt file is never partially
    returned.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SnapshotCorruptError(f"unreadable: {exc}", path=path) from exc
    reader = _Reader(blob, path)
    if reader.take(len(_MAGIC), "header") != _MAGIC:
        raise SnapshotCorruptError("bad magic (not a snapshot file)",
                                   path=path)
    (version,) = _HEADER.unpack(reader.take(_HEADER.size, "header"))
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"unsupported format version {version} "
            f"(this reader supports {SNAPSHOT_VERSION})", path=path)
    (kind_len,) = _COUNT.unpack(reader.take(_COUNT.size, "header"))
    kind = reader.take(kind_len, "header").decode("utf-8", errors="replace")
    if kind != expected_kind:
        raise SnapshotCorruptError(
            f"kind {kind!r} where {expected_kind!r} was expected", path=path)
    (count,) = _COUNT.unpack(reader.take(_COUNT.size, "header"))
    if count > 1024:
        raise SnapshotCorruptError(f"implausible section count {count}",
                                   path=path)
    sections: Dict[str, bytes] = {}
    for _ in range(count):
        head = reader.take(_SECTION_HEAD.size, "header")
        name_len, payload_len, crc = _SECTION_HEAD.unpack(head)
        name = reader.take(name_len, "header").decode("utf-8",
                                                      errors="replace")
        payload = reader.take(payload_len, name)
        if zlib.crc32(payload) != crc:
            raise SnapshotCorruptError("CRC32 mismatch (bit flip or torn "
                                       "write)", section=name, path=path)
        if name in sections:
            raise SnapshotCorruptError("duplicate section", section=name,
                                       path=path)
        sections[name] = payload
    if reader.offset != len(blob):
        raise SnapshotCorruptError(
            f"{len(blob) - reader.offset} bytes of trailing garbage",
            path=path)
    return sections


def snapshot_info(path: str) -> Dict[str, Any]:
    """Cheap integrity probe of the snapshot at ``path``.

    Fully validates the file (all CRCs) and returns ``{"kind",
    "version", "sections", "bytes"}`` without materialising any objects;
    raises :class:`SnapshotCorruptError` exactly like
    :func:`read_snapshot`.  Used by the service's admin surface to
    report checkpoint health without paying a restore.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SnapshotCorruptError(f"unreadable: {exc}", path=path) from exc
    reader = _Reader(blob, path)
    if reader.take(len(_MAGIC), "header") != _MAGIC:
        raise SnapshotCorruptError("bad magic (not a snapshot file)", path=path)
    (version,) = _HEADER.unpack(reader.take(_HEADER.size, "header"))
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"unsupported format version {version}", path=path)
    (kind_len,) = _COUNT.unpack(reader.take(_COUNT.size, "header"))
    kind = reader.take(kind_len, "header").decode("utf-8", errors="replace")
    sections = read_snapshot(path, kind)
    return {"kind": kind, "version": version,
            "sections": sorted(sections), "bytes": len(blob)}


# ---------------------------------------------------------------------- #
# payload codecs
# ---------------------------------------------------------------------- #
def _pack_ints(values) -> bytes:
    return array("q", values).tobytes()


def _unpack_ints(payload: bytes, section: str,
                 path: Optional[str]) -> List[int]:
    if len(payload) % 8:
        raise SnapshotCorruptError(
            f"payload length {len(payload)} is not a multiple of 8",
            section=section, path=path)
    values = array("q")
    values.frombytes(payload)
    return values.tolist()


def _pack_json(obj) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _unpack_json(payload: bytes, section: str, path: Optional[str]):
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(f"invalid JSON payload: {exc}",
                                   section=section, path=path) from exc


def _require(condition: bool, message: str, section: str,
             path: Optional[str]) -> None:
    if not condition:
        raise SnapshotCorruptError(message, section=section, path=path)


# ---------------------------------------------------------------------- #
# manager codec
# ---------------------------------------------------------------------- #
_COUNTER_FIELDS = (
    "_unique_probes", "_unique_inserts", "_batch_runs", "_batch_items",
    "_cache_evictions", "_cache_generation", "_gc_count",
    "_gc_pause_seconds", "_gc_freed_nodes", "_reorder_count",
    "_reorder_swaps", "_reorder_pause_seconds", "_reorder_nodes_before",
    "_reorder_nodes_after", "_peak_live_nodes",
)


def _manager_sections(manager: BddManager) -> Dict[str, bytes]:
    """Serialise every persistent field of ``manager`` (see the module
    docstring for what is persistent vs. derived)."""
    counters = {name: getattr(manager, name) for name in _COUNTER_FIELDS}
    counters["_op_hits"] = list(manager._op_hits)
    counters["_op_misses"] = list(manager._op_misses)
    refs: List[int] = []
    for node, count in manager._external_refs.items():
        refs.append(node)
        refs.append(count)
    return {
        "meta": _pack_json({
            "substrate": manager.substrate_name,
            "num_vars": manager.num_vars,
            "nodes": len(manager._var),
        }),
        "var": _pack_ints(manager._var),
        "low": _pack_ints(manager._low),
        "high": _pack_ints(manager._high),
        "unique": _pack_ints(manager._unique.values()),
        "free": _pack_ints(manager._free),
        "order": _pack_ints(list(manager._var_to_level)
                            + list(manager._level_to_var)),
        "refs": _pack_ints(refs),
        "knobs": _pack_json({
            "auto_gc_threshold": manager._auto_gc_threshold,
            "cache_size_limit": manager._cache_size_limit,
            "auto_reorder_threshold": manager._auto_reorder_threshold,
        }),
        "counters": _pack_json(counters),
    }


def _restore_manager(sections: Dict[str, bytes],
                     path: Optional[str]) -> BddManager:
    """Rebuild a manager whose storage is column-for-column identical to
    the serialised source, including unique-table insertion order,
    free-list order and external references."""
    for name in _MANAGER_SECTIONS:
        _require(name in sections, "section missing from container",
                 name, path)
    meta = _unpack_json(sections["meta"], "meta", path)
    _require(isinstance(meta, dict)
             and isinstance(meta.get("substrate"), str)
             and isinstance(meta.get("num_vars"), int)
             and isinstance(meta.get("nodes"), int)
             and meta["num_vars"] >= 0 and meta["nodes"] >= 2,
             "malformed manager metadata", "meta", path)
    var = _unpack_ints(sections["var"], "var", path)
    low = _unpack_ints(sections["low"], "low", path)
    high = _unpack_ints(sections["high"], "high", path)
    nodes = meta["nodes"]
    _require(len(var) == len(low) == len(high) == nodes,
             f"column lengths {len(var)}/{len(low)}/{len(high)} disagree "
             f"with metadata node count {nodes}", "var", path)
    num_vars = meta["num_vars"]
    for column, section in ((var, "var"), (low, "low"), (high, "high")):
        for value in column:
            _require(-2 <= value < max(nodes, num_vars),
                     f"out-of-range column entry {value}", section, path)
    unique = _unpack_ints(sections["unique"], "unique", path)
    free = _unpack_ints(sections["free"], "free", path)
    _require(len(unique) + len(free) + 2 == nodes,
             f"{len(unique)} interned + {len(free)} free nodes do not "
             f"account for {nodes} slots", "unique", path)
    for node in unique:
        _require(2 <= node < nodes and var[node] >= 0,
                 f"interned id {node} is not a live decision node",
                 "unique", path)
    for node in free:
        _require(2 <= node < nodes and var[node] == _FREED,
                 f"free-list id {node} is not a freed slot", "free", path)
    _require(len(set(unique)) == len(unique), "duplicate interned id",
             "unique", path)
    _require(len(set(free)) == len(free), "duplicate free-list id",
             "free", path)
    order = _unpack_ints(sections["order"], "order", path)
    _require(len(order) == 2 * num_vars,
             f"order payload holds {len(order)} entries, expected "
             f"{2 * num_vars}", "order", path)
    var_to_level = order[:num_vars]
    level_to_var = order[num_vars:]
    _require(sorted(var_to_level) == list(range(num_vars))
             and all(var_to_level[v] == lvl
                     for lvl, v in enumerate(level_to_var)),
             "variable order is not a permutation", "order", path)
    refs_flat = _unpack_ints(sections["refs"], "refs", path)
    _require(len(refs_flat) % 2 == 0, "odd number of reference entries",
             "refs", path)
    refs: Dict[int, int] = {}
    for index in range(0, len(refs_flat), 2):
        node, count = refs_flat[index], refs_flat[index + 1]
        _require(0 <= node < nodes and count > 0 and node not in refs,
                 f"invalid external reference ({node}, {count})",
                 "refs", path)
        refs[node] = count
    knobs = _unpack_json(sections["knobs"], "knobs", path)
    counters = _unpack_json(sections["counters"], "counters", path)
    _require(isinstance(knobs, dict) and isinstance(counters, dict),
             "malformed scalar payload", "knobs", path)

    try:
        substrate = resolve_substrate(meta["substrate"])
    except ValueError as exc:
        raise SnapshotCorruptError(f"unknown substrate: {exc}",
                                   section="meta", path=path) from exc
    manager = create_manager(num_vars, substrate=substrate)
    int_columns = isinstance(manager._var, array)
    if int_columns:
        try:
            manager._var = array("i", var)
            manager._low = array("i", low)
            manager._high = array("i", high)
        except OverflowError as exc:
            raise SnapshotCorruptError(f"column entry overflows int32: {exc}",
                                       section="var", path=path) from exc
    else:
        manager._var = list(var)
        manager._low = list(low)
        manager._high = list(high)
    packed_keys = isinstance(manager, ArrayBddManager)
    table: Dict[Any, int] = {}
    for node in unique:
        if packed_keys:
            key = pack_key(var[node], low[node], high[node])
        else:
            key = (var[node], low[node], high[node])
        table[key] = node
    _require(len(table) == len(unique), "colliding unique-table keys",
             "unique", path)
    manager._unique = table
    manager._free = list(free)
    manager._var_to_level = list(var_to_level)
    manager._level_to_var = list(level_to_var)
    manager._external_refs = dict(refs)
    manager._auto_gc_threshold = knobs.get("auto_gc_threshold")
    manager._cache_size_limit = knobs.get("cache_size_limit")
    manager._auto_reorder_threshold = knobs.get("auto_reorder_threshold")
    for name in _COUNTER_FIELDS:
        value = counters.get(name)
        _require(isinstance(value, (int, float)),
                 f"missing or non-numeric counter {name}", "counters", path)
        setattr(manager, name, value)
    for name in ("_op_hits", "_op_misses"):
        values = counters.get(name)
        _require(isinstance(values, list)
                 and len(values) == len(manager._op_hits)
                 and all(isinstance(v, int) for v in values),
                 f"malformed per-op counter list {name}", "counters", path)
        setattr(manager, name, list(values))
    return manager


def dump_manager(manager: BddManager, path: str) -> None:
    """Atomically snapshot ``manager`` to ``path``.

    Safe at any operation boundary; the manager is not mutated.  The
    computed tables and other derived caches are deliberately excluded —
    they are rebuilt lazily after :func:`load_manager` and carry no
    node-identity information.
    """
    write_snapshot(path, "manager", _manager_sections(manager))


def load_manager(path: str) -> BddManager:
    """Restore the manager snapshot at ``path``.

    The result's storage columns, unique-table insertion order,
    free-list order, variable order, external references, tuning knobs
    and perf counters are identical to the dumped source; a damaged file
    raises :class:`SnapshotCorruptError` instead of restoring garbage.
    """
    return _restore_manager(read_snapshot(path, "manager"), path)


# ---------------------------------------------------------------------- #
# simulator codec
# ---------------------------------------------------------------------- #
def _simulator_sections(simulator: BitSliceSimulator,
                        extra: Optional[Dict[str, Any]]) -> Dict[str, bytes]:
    state = simulator.state
    sections = _manager_sections(state.manager)
    groups: Dict[int, int] = {}
    slice_nodes: Dict[str, List[int]] = {}
    share: List[int] = []
    for name in VECTOR_NAMES:
        nodes = []
        for handle in state.slices[name]:
            nodes.append(handle.node)
            share.append(groups.setdefault(id(handle), len(groups)))
        slice_nodes[name] = nodes
    cubes = [[list(key), handle.node]
             for key, handle in simulator._rules._control_cubes.items()]
    sections["state"] = _pack_json({
        "num_qubits": state.num_qubits,
        "r": state.r,
        "k": state.k,
        "s": state.s.hex(),
        "slices": slice_nodes,
        "share": share,
        "cubes": cubes,
    })
    sections["simulator"] = _pack_json({
        "gates_applied": simulator.gates_applied,
        "peak_nodes": simulator.peak_nodes,
        "auto_shrink": simulator.auto_shrink,
        "max_seconds": simulator.max_seconds,
        "max_nodes": simulator.max_nodes,
    })
    sections["extra"] = _pack_json(extra or {})
    return sections


def _handle_without_incref(manager: BddManager, node: int) -> Bdd:
    # The serialised "refs" section already accounts for this handle's
    # reference; constructing via Bdd() would double-count it.
    handle = object.__new__(Bdd)
    handle.manager = manager
    handle.node = node
    return handle


def _restore_simulator(sections: Dict[str, bytes], path: Optional[str],
                       ) -> Tuple[BitSliceSimulator, Dict[str, Any]]:
    for name in _SIMULATOR_SECTIONS:
        _require(name in sections, "section missing from container",
                 name, path)
    manager = _restore_manager(sections, path)
    payload = _unpack_json(sections["state"], "state", path)
    sim_payload = _unpack_json(sections["simulator"], "simulator", path)
    extra = _unpack_json(sections["extra"], "extra", path)
    _require(isinstance(payload, dict) and isinstance(sim_payload, dict)
             and isinstance(extra, dict), "malformed payload", "state", path)
    num_qubits = payload.get("num_qubits")
    r = payload.get("r")
    _require(isinstance(num_qubits, int) and 0 < num_qubits
             and num_qubits <= manager.num_vars,
             f"state qubit count {num_qubits!r} exceeds the manager's "
             f"{manager.num_vars} variables", "state", path)
    _require(isinstance(r, int) and r >= 2,
             f"invalid integer width {r!r}", "state", path)
    try:
        s_value = float.fromhex(payload["s"])
    except (KeyError, TypeError, ValueError):
        raise SnapshotCorruptError("invalid normalisation factor",
                                   section="state", path=path) from None
    slice_nodes = payload.get("slices")
    share = payload.get("share")
    _require(isinstance(slice_nodes, dict)
             and sorted(slice_nodes) == sorted(VECTOR_NAMES)
             and all(isinstance(nodes, list) and len(nodes) == r
                     for nodes in slice_nodes.values()),
             "slice table does not cover the four vectors at width r",
             "state", path)
    _require(isinstance(share, list) and len(share) == 4 * r,
             "handle-sharing table has the wrong length", "state", path)
    node_count = len(manager._var)
    handles: Dict[int, Bdd] = {}
    slices: Dict[str, List[Bdd]] = {}
    cursor = 0
    for name in VECTOR_NAMES:
        vector: List[Bdd] = []
        for node in slice_nodes[name]:
            group = share[cursor]
            cursor += 1
            _require(isinstance(node, int) and 0 <= node < node_count
                     and (node <= 1 or manager._var[node] >= 0),
                     f"slice references dead node {node!r}", "state", path)
            _require(isinstance(group, int) and 0 <= group < 4 * r,
                     f"invalid sharing group {group!r}", "state", path)
            handle = handles.get(group)
            if handle is None:
                handle = handles[group] = _handle_without_incref(manager,
                                                                 node)
            _require(handle.node == node,
                     "sharing group maps one handle to two nodes",
                     "state", path)
            vector.append(handle)
        slices[name] = vector

    state = object.__new__(BitSlicedState)
    state.num_qubits = num_qubits
    state.manager = manager
    state.r = r
    state.k = payload.get("k", 0)
    _require(isinstance(state.k, int), "invalid exponent k", "state", path)
    state.s = s_value
    state.slices = slices

    simulator = object.__new__(BitSliceSimulator)
    simulator.state = state
    simulator._rules = GateRuleEngine(state)
    cubes = payload.get("cubes", [])
    _require(isinstance(cubes, list), "malformed control-cube table",
             "state", path)
    for entry in cubes:
        _require(isinstance(entry, list) and len(entry) == 2
                 and isinstance(entry[0], list)
                 and isinstance(entry[1], int)
                 and 0 <= entry[1] < node_count,
                 "malformed control-cube entry", "state", path)
        key = tuple(entry[0])
        simulator._rules._control_cubes[key] = _handle_without_incref(
            manager, entry[1])
    simulator.max_seconds = sim_payload.get("max_seconds")
    simulator.max_nodes = sim_payload.get("max_nodes")
    simulator.auto_shrink = bool(sim_payload.get("auto_shrink", True))
    simulator.reset_clock()
    gates_applied = sim_payload.get("gates_applied", 0)
    peak_nodes = sim_payload.get("peak_nodes", 0)
    _require(isinstance(gates_applied, int) and gates_applied >= 0,
             "invalid gate count", "simulator", path)
    _require(isinstance(peak_nodes, int) and peak_nodes >= 0,
             "invalid peak node count", "simulator", path)
    simulator.gates_applied = gates_applied
    simulator.peak_nodes = peak_nodes
    return simulator, extra


def dump_simulator(simulator: BitSliceSimulator, path: str,
                   extra: Optional[Dict[str, Any]] = None) -> None:
    """Atomically snapshot a :class:`BitSliceSimulator` to ``path``.

    Serialises the full manager (see :func:`dump_manager`) plus the
    bit-sliced state (``r`` / ``k`` / ``s`` and the 4r slice node ids,
    including which positions share one handle object), the gate
    engine's memoised control cubes, and the simulator's accounting
    (``gates_applied`` / ``peak_nodes`` / limits), so a restored
    simulator continues exactly where the source stood.  ``extra`` is an
    arbitrary JSON-compatible dict stored verbatim for the calling layer
    (the frontdoor records sweep progress there; the service records
    session identity).  Safe only at a gate boundary — mid-gate there
    are live temporaries the snapshot cannot see.
    """
    write_snapshot(path, "simulator", _simulator_sections(simulator, extra))


def load_simulator(path: str) -> Tuple[BitSliceSimulator, Dict[str, Any]]:
    """Restore the simulator snapshot at ``path``.

    Returns ``(simulator, extra)`` where ``extra`` is the caller dict
    given to :func:`dump_simulator`.  The restored manager storage is
    column-for-column identical to the dumped source (the byte-identity
    guarantee resumable runs rely on); any damage raises
    :class:`SnapshotCorruptError` naming the offending section.
    """
    return _restore_simulator(read_snapshot(path, "simulator"), path)

"""Random circuit generator for the Table III experiments.

The paper's construction (Section IV, first benchmark set):

* an H gate is first applied to every qubit so the state starts in a full
  superposition,
* then ``3 * num_qubits`` gates are inserted, each picked uniformly at random
  from the supported set **excluding** Rx(pi/2) and Ry(pi/2) (the paper drops
  them because they behave like H), applied to qubits selected uniformly at
  random,
* ten circuits are generated per qubit count.

:func:`generate_random_circuit` reproduces one such circuit deterministically
from a seed; :func:`random_circuit_suite` reproduces a whole row group.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind

#: Gate kinds eligible for random insertion (paper Table III setup).
DEFAULT_GATE_POOL: Sequence[GateKind] = (
    GateKind.X,
    GateKind.Y,
    GateKind.Z,
    GateKind.H,
    GateKind.S,
    GateKind.T,
    GateKind.CX,
    GateKind.CZ,
    GateKind.CCX,
    GateKind.CSWAP,
)


def generate_random_circuit(num_qubits: int, num_gates: Optional[int] = None,
                            seed: int = 0,
                            gate_pool: Sequence[GateKind] = DEFAULT_GATE_POOL,
                            h_prologue: bool = True) -> QuantumCircuit:
    """Generate one Table III style random circuit.

    Parameters
    ----------
    num_qubits:
        Register size.
    num_gates:
        Number of randomly inserted gates (default ``3 * num_qubits``,
        the paper's ratio).  The H prologue is *not* counted, matching the
        paper's ``#gates`` column which lists ``3 * #qubits``.
    seed:
        Seed of the private :class:`random.Random` instance, so circuits are
        reproducible across runs and machines.
    gate_pool:
        Gate kinds to draw from.
    h_prologue:
        Whether to prepend one H gate per qubit.
    """
    if num_gates is None:
        num_gates = 3 * num_qubits
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}q_s{seed}")
    if h_prologue:
        for qubit in range(num_qubits):
            circuit.h(qubit)
    for _ in range(num_gates):
        kind = rng.choice(list(gate_pool))
        _append_random_gate(circuit, kind, rng)
    return circuit


def _append_random_gate(circuit: QuantumCircuit, kind: GateKind, rng: random.Random) -> None:
    """Append ``kind`` on uniformly chosen distinct qubits."""
    num_qubits = circuit.num_qubits
    if kind in (GateKind.CX, GateKind.CZ):
        if num_qubits < 2:
            circuit.add(GateKind.X, [0])
            return
        control, target = rng.sample(range(num_qubits), 2)
        circuit.add(kind, [target], [control])
    elif kind is GateKind.CCX:
        if num_qubits < 3:
            control, target = (rng.sample(range(num_qubits), 2)
                               if num_qubits == 2 else (0, 0))
            if num_qubits == 2:
                circuit.cx(control, target)
            else:
                circuit.x(0)
            return
        qubits = rng.sample(range(num_qubits), 3)
        circuit.ccx(qubits[:2], qubits[2])
    elif kind is GateKind.CSWAP:
        if num_qubits < 3:
            if num_qubits == 2:
                circuit.swap(0, 1)
            else:
                circuit.x(0)
            return
        qubits = rng.sample(range(num_qubits), 3)
        circuit.cswap([qubits[0]], qubits[1], qubits[2])
    elif kind is GateKind.SWAP:
        if num_qubits < 2:
            circuit.x(0)
            return
        a, b = rng.sample(range(num_qubits), 2)
        circuit.swap(a, b)
    else:
        circuit.add(kind, [rng.randrange(num_qubits)])


def random_circuit_suite(qubit_counts: Iterable[int], circuits_per_size: int = 10,
                         base_seed: int = 2021,
                         gate_pool: Sequence[GateKind] = DEFAULT_GATE_POOL) -> List[QuantumCircuit]:
    """All circuits of a Table III style sweep, ``circuits_per_size`` per
    qubit count, with deterministic per-circuit seeds."""
    circuits: List[QuantumCircuit] = []
    for num_qubits in qubit_counts:
        for index in range(circuits_per_size):
            seed = base_seed * 1_000_003 + num_qubits * 1_009 + index
            circuits.append(generate_random_circuit(num_qubits, seed=seed,
                                                    gate_pool=gate_pool))
    return circuits

"""Google GRCS supremacy circuits for the Table VI experiments.

The paper's fourth benchmark set uses the rectangular-lattice CZ circuits of
Boixo et al. ("Characterizing quantum supremacy in near-term devices"),
downloaded from the GRCS repository (``inst/rectangular/cz_v2``), simplified
from depth 10 to depth 5.

The original files can be parsed with :mod:`repro.circuit.grcs`; this module
additionally implements the published construction rules so circuits of any
lattice size, depth and seed can be generated offline:

1. Cycle 0 applies H to every qubit.
2. Each subsequent cycle applies one of eight CZ layer patterns (the
   rectangular-lattice pairing of neighbouring qubits, cycled in the
   prescribed order), and
3. on qubits not touched by a CZ in this cycle, a single-qubit gate chosen
   randomly from {T, sqrt(X), sqrt(Y)} subject to the published constraints:
   the *first* single-qubit gate on a qubit after cycle 0 is always T, a
   qubit keeps no gate two cycles in a row, and the same non-T gate is not
   repeated back-to-back on a qubit.

``sqrt(X)`` / ``sqrt(Y)`` are represented by the exactly-representable
``Rx(pi/2)`` / ``Ry(pi/2)`` gates (equal up to global phase).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind


def _lattice_index(row: int, column: int, columns: int) -> int:
    return row * columns + column


def _cz_layer(rows: int, columns: int, pattern: int) -> List[Tuple[int, int]]:
    """The CZ pairs of one of the eight rectangular-lattice layer patterns.

    Patterns 0–3 pair horizontal neighbours (columns ``c`` and ``c+1`` with
    alternating offsets per row), patterns 4–7 pair vertical neighbours; the
    offsets cycle so that every edge of the lattice is covered once per eight
    cycles, following the supplementary description of Boixo et al.
    """
    pairs: List[Tuple[int, int]] = []
    if pattern < 4:
        # Horizontal pairings.
        for row in range(rows):
            offset = (pattern + row) % 2
            for column in range(offset, columns - 1, 2):
                pairs.append((_lattice_index(row, column, columns),
                              _lattice_index(row, column + 1, columns)))
        if pattern >= 2:
            # Shift the whole pattern by one row to cover the other diagonal.
            pairs = [(a, b) for (a, b) in pairs
                     if (a // columns) % 2 == pattern % 2]
    else:
        # Vertical pairings.
        vertical = pattern - 4
        for column in range(columns):
            offset = (vertical + column) % 2
            for row in range(offset, rows - 1, 2):
                pairs.append((_lattice_index(row, column, columns),
                              _lattice_index(row + 1, column, columns)))
        if vertical >= 2:
            pairs = [(a, b) for (a, b) in pairs
                     if (a % columns) % 2 == vertical % 2]
    return pairs


def grcs_circuit(rows: int, columns: int, depth: int = 5, seed: int = 0) -> QuantumCircuit:
    """Generate one rectangular-lattice GRCS circuit.

    Parameters
    ----------
    rows, columns:
        Lattice dimensions; the qubit count is ``rows * columns``.
    depth:
        Number of CZ cycles after the initial H layer (the paper uses 5).
    seed:
        Seed of the private RNG choosing the single-qubit fill gates.
    """
    if rows < 1 or columns < 1:
        raise ValueError("lattice must have at least one row and one column")
    if depth < 0:
        raise ValueError("depth cannot be negative")
    num_qubits = rows * columns
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits,
                             name=f"grcs_{rows}x{columns}_d{depth}_s{seed}")
    # Cycle 0: Hadamard on every qubit.
    for qubit in range(num_qubits):
        circuit.h(qubit)

    had_t = [False] * num_qubits                 # whether the qubit already got its first T
    last_single: List[Optional[GateKind]] = [None] * num_qubits
    busy_last_cycle = [True] * num_qubits        # H counts as activity in cycle 0

    single_choices = (GateKind.T, GateKind.RX_PI_2, GateKind.RY_PI_2)

    for cycle in range(depth):
        pattern = cycle % 8
        pairs = _cz_layer(rows, columns, pattern)
        touched = set()
        for a, b in pairs:
            circuit.cz(a, b)
            touched.add(a)
            touched.add(b)
        busy_this_cycle = [False] * num_qubits
        for qubit in touched:
            busy_this_cycle[qubit] = True
            last_single[qubit] = None
        for qubit in range(num_qubits):
            if qubit in touched:
                continue
            if not busy_last_cycle[qubit]:
                # Rule: a qubit is never idle two cycles in a row unless it
                # has no eligible gate; give it a single-qubit gate now.
                pass
            if not had_t[qubit]:
                gate = GateKind.T
                had_t[qubit] = True
            else:
                options = [g for g in single_choices
                           if g is not last_single[qubit] and g is not GateKind.T]
                gate = rng.choice(options) if options else GateKind.RX_PI_2
            circuit.add(gate, [qubit])
            last_single[qubit] = gate
            busy_this_cycle[qubit] = True
        busy_last_cycle = busy_this_cycle
    return circuit


#: Lattice shapes used for the Table VI qubit counts.
TABLE6_LATTICES: Dict[int, Tuple[int, int]] = {
    16: (4, 4),
    20: (4, 5),
    25: (5, 5),
    30: (5, 6),
    36: (6, 6),
    42: (6, 7),
    49: (7, 7),
    56: (7, 8),
    64: (8, 8),
    72: (8, 9),
    81: (9, 9),
    90: (9, 10),
}


def supremacy_suite(qubit_counts: Iterable[int], circuits_per_size: int = 10,
                    depth: int = 5, base_seed: int = 2021) -> List[QuantumCircuit]:
    """The Table VI style sweep: ``circuits_per_size`` random instances per
    lattice size, depth 5 by default."""
    circuits: List[QuantumCircuit] = []
    for count in qubit_counts:
        if count not in TABLE6_LATTICES:
            raise KeyError(f"no lattice shape registered for {count} qubits; "
                           f"known sizes: {sorted(TABLE6_LATTICES)}")
        rows, columns = TABLE6_LATTICES[count]
        for index in range(circuits_per_size):
            seed = base_seed * 7_919 + count * 101 + index
            circuits.append(grcs_circuit(rows, columns, depth=depth, seed=seed))
    return circuits

"""RevLib-style reversible circuit families for the Table IV experiments.

The paper evaluates circuits from the RevLib benchmark collection (adders,
ALUs, CPU control units, register files, nested conditionals, …) twice: once
as distributed (purely classical reversible logic, easy for every engine) and
once "modified" by inserting an H gate on every input whose initial value is
unspecified, which creates an input superposition and makes the circuits
genuinely quantum.

The original ``.real`` files are not redistributed with this reproduction
(they remain available from revlib.org and parse through
:func:`repro.circuit.real_format.circuit_from_real`), so this module provides
*generators for the same structural families*: reversible arithmetic,
decoders, conditional data movement and cascade networks built from
NOT / CNOT / Toffoli / Fredkin gates.  These exercise exactly the behaviour
that drives the Table IV results — classical reversible networks whose
decision diagrams stay small on basis-state inputs and blow up (for
floating-point DD engines) once the inputs are superposed.

Every generator returns ``(circuit, constants)`` where ``constants`` is a
RevLib-style ``.constants`` string (``0``/``1`` for fixed ancilla inputs,
``-`` for unspecified data inputs); :func:`h_augment` applies the paper's
modification using that string.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit


# --------------------------------------------------------------------------- #
# arithmetic: Cuccaro ripple-carry adder (the "addNN" family)
# --------------------------------------------------------------------------- #
def ripple_carry_adder(num_bits: int) -> Tuple[QuantumCircuit, str]:
    """Cuccaro ripple-carry adder computing ``b := a + b``.

    Qubit layout (most significant register first to match the simulator's
    qubit-0-is-MSB convention is irrelevant here; indices are just wires):

    * qubit 0: incoming carry (constant 0),
    * qubits ``1 .. num_bits``: register ``a`` (least-significant bit first),
    * qubits ``num_bits+1 .. 2*num_bits``: register ``b``,
    * qubit ``2*num_bits + 1``: carry-out ancilla (constant 0).
    """
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    num_qubits = 2 * num_bits + 2
    circuit = QuantumCircuit(num_qubits, name=f"add{num_bits}")
    carry_in = 0
    a = [1 + i for i in range(num_bits)]
    b = [1 + num_bits + i for i in range(num_bits)]
    carry_out = 2 * num_bits + 1

    def maj(x: int, y: int, z: int) -> None:
        circuit.cx(z, y)
        circuit.cx(z, x)
        circuit.toffoli(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circuit.toffoli(x, y, z)
        circuit.cx(z, x)
        circuit.cx(x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, num_bits):
        maj(a[i - 1], b[i], a[i])
    circuit.cx(a[num_bits - 1], carry_out)
    for i in range(num_bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])

    constants = list("-" * num_qubits)
    constants[carry_in] = "0"
    constants[carry_out] = "0"
    return circuit, "".join(constants)


# --------------------------------------------------------------------------- #
# ALU (the "cpu_alu" family): opcode-selected arithmetic/logic on two words
# --------------------------------------------------------------------------- #
def alu_circuit(word_bits: int) -> Tuple[QuantumCircuit, str]:
    """A small reversible ALU: two opcode qubits select XOR / AND-into /
    NOT-B / pass, applied bitwise from register ``a`` onto register ``b``."""
    if word_bits < 1:
        raise ValueError("ALU needs at least one word bit")
    num_qubits = 2 + 2 * word_bits
    circuit = QuantumCircuit(num_qubits, name=f"alu{word_bits}")
    op0, op1 = 0, 1
    a = [2 + i for i in range(word_bits)]
    b = [2 + word_bits + i for i in range(word_bits)]

    for i in range(word_bits):
        # opcode 1x: XOR a into b (controlled on op0).
        circuit.ccx([op0, a[i]], b[i])
        # opcode x1: AND of a with the neighbouring a-bit into b.
        neighbour = a[(i + 1) % word_bits]
        if neighbour != a[i]:
            circuit.ccx([op1, a[i], neighbour], b[i])
        else:
            circuit.ccx([op1, a[i]], b[i])
        # opcode 11: additionally flip b (NOT when both opcode bits set).
        circuit.ccx([op0, op1], b[i])

    constants = "-" * num_qubits
    return circuit, constants


# --------------------------------------------------------------------------- #
# CPU control unit (the "cpu_ctrl" family): opcode decoder
# --------------------------------------------------------------------------- #
def control_unit_circuit(opcode_bits: int) -> Tuple[QuantumCircuit, str]:
    """An opcode decoder: ``2**opcode_bits`` output lines, one asserted per
    opcode value, built from multi-control Toffolis with X-conjugated
    negative controls."""
    if opcode_bits < 1:
        raise ValueError("decoder needs at least one opcode bit")
    num_outputs = 1 << opcode_bits
    num_qubits = opcode_bits + num_outputs
    circuit = QuantumCircuit(num_qubits, name=f"cpu_ctrl{opcode_bits}")
    opcode = list(range(opcode_bits))
    outputs = [opcode_bits + i for i in range(num_outputs)]

    for value in range(num_outputs):
        negative = [opcode[i] for i in range(opcode_bits)
                    if not (value >> (opcode_bits - 1 - i)) & 1]
        for qubit in negative:
            circuit.x(qubit)
        circuit.ccx(opcode, outputs[value]) if opcode_bits > 1 else circuit.cx(opcode[0], outputs[value])
        for qubit in negative:
            circuit.x(qubit)

    constants = "-" * opcode_bits + "0" * num_outputs
    return circuit, constants


# --------------------------------------------------------------------------- #
# register file (the "cpu_register" family): conditional data movement
# --------------------------------------------------------------------------- #
def register_file_circuit(num_registers: int, word_bits: int) -> Tuple[QuantumCircuit, str]:
    """Select-controlled swaps moving a data word into one of several
    registers (a cascade of Fredkin gates)."""
    if num_registers < 2 or word_bits < 1:
        raise ValueError("need at least two registers and one word bit")
    select_bits = max(1, (num_registers - 1).bit_length())
    num_qubits = select_bits + word_bits * (num_registers + 1)
    circuit = QuantumCircuit(num_qubits, name=f"register{num_registers}x{word_bits}")
    select = list(range(select_bits))
    data = [select_bits + i for i in range(word_bits)]

    def register_wires(index: int) -> List[int]:
        base = select_bits + word_bits * (index + 1)
        return [base + i for i in range(word_bits)]

    for register in range(num_registers):
        negative = [select[i] for i in range(select_bits)
                    if not (register >> (select_bits - 1 - i)) & 1]
        for qubit in negative:
            circuit.x(qubit)
        wires = register_wires(register)
        for bit in range(word_bits):
            circuit.cswap(select, data[bit], wires[bit])
        for qubit in negative:
            circuit.x(qubit)

    constants = "-" * (select_bits + word_bits) + "0" * (word_bits * num_registers)
    return circuit, constants


# --------------------------------------------------------------------------- #
# nested conditionals (the "nested_if" family)
# --------------------------------------------------------------------------- #
def nested_if_circuit(depth: int) -> Tuple[QuantumCircuit, str]:
    """Nested if-then-else: the gate at nesting level ``i`` fires only when
    the first ``i+1`` condition qubits are all asserted."""
    if depth < 1:
        raise ValueError("need at least one nesting level")
    num_qubits = 2 * depth
    circuit = QuantumCircuit(num_qubits, name=f"nested_if{depth}")
    conditions = list(range(depth))
    outputs = [depth + i for i in range(depth)]
    for level in range(depth):
        controls = conditions[:level + 1]
        if len(controls) == 1:
            circuit.cx(controls[0], outputs[level])
        else:
            circuit.ccx(controls, outputs[level])
        # An else-branch action on the previous output.
        if level > 0:
            circuit.x(conditions[level])
            circuit.ccx(controls, outputs[level - 1])
            circuit.x(conditions[level])
    constants = "-" * depth + "0" * depth
    return circuit, constants


# --------------------------------------------------------------------------- #
# parity / cascade networks (the "hwb" / "e64-bdd" style families)
# --------------------------------------------------------------------------- #
def parity_cascade_circuit(num_inputs: int) -> Tuple[QuantumCircuit, str]:
    """A CNOT parity cascade followed by a Toffoli ladder, a stand-in for the
    hidden-weighted-bit style RevLib benchmarks."""
    if num_inputs < 2:
        raise ValueError("need at least two inputs")
    num_qubits = num_inputs + 2
    circuit = QuantumCircuit(num_qubits, name=f"parity{num_inputs}")
    parity, flag = num_inputs, num_inputs + 1
    for qubit in range(num_inputs):
        circuit.cx(qubit, parity)
    for qubit in range(num_inputs - 1):
        circuit.ccx([qubit, qubit + 1], flag)
    circuit.cx(parity, flag)
    constants = "-" * num_inputs + "00"
    return circuit, constants


def toffoli_chain_circuit(length: int) -> Tuple[QuantumCircuit, str]:
    """A long chain where each Toffoli's target becomes the next one's
    control — the path-shaped structure of BDD-derived RevLib circuits."""
    if length < 2:
        raise ValueError("need a chain of at least two")
    num_qubits = length + 2
    circuit = QuantumCircuit(num_qubits, name=f"bdd_chain{length}")
    for i in range(length):
        circuit.ccx([i, i + 1], i + 2)
    for i in range(length - 1, -1, -1):
        circuit.cx(i + 2, i)
    constants = "--" + "-" * (length - 1) + "0"
    constants = constants[:num_qubits].ljust(num_qubits, "0")
    return circuit, constants


# --------------------------------------------------------------------------- #
# the paper's H modification and the suite assembly
# --------------------------------------------------------------------------- #
def h_augment(circuit: QuantumCircuit, constants: str) -> QuantumCircuit:
    """Insert an H prologue on every unspecified (``-``) input.

    This is the paper's Table IV "modified" variant: it turns the classical
    reversible circuit into one that processes a full input superposition.
    """
    if len(constants) != circuit.num_qubits:
        raise ValueError("constants string length must equal the qubit count")
    modified = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_mod")
    for qubit, flag in enumerate(constants):
        if flag == "-":
            modified.h(qubit)
        elif flag == "1":
            modified.x(qubit)
        elif flag != "0":
            raise ValueError(f"invalid constants character {flag!r}")
    for gate in circuit.gates:
        modified.append(gate)
    return modified


#: Named generators of the Table IV style families.  Each callable takes no
#: arguments and returns ``(circuit, constants)``.
REVLIB_FAMILIES: Dict[str, Callable[[], Tuple[QuantumCircuit, str]]] = {
    "add8": lambda: ripple_carry_adder(8),
    "add16": lambda: ripple_carry_adder(16),
    "alu4": lambda: alu_circuit(4),
    "alu8": lambda: alu_circuit(8),
    "cpu_ctrl3": lambda: control_unit_circuit(3),
    "cpu_ctrl4": lambda: control_unit_circuit(4),
    "register4x4": lambda: register_file_circuit(4, 4),
    "nested_if6": lambda: nested_if_circuit(6),
    "parity12": lambda: parity_cascade_circuit(12),
    "bdd_chain10": lambda: toffoli_chain_circuit(10),
}


def generate_revlib_circuit(family: str) -> Tuple[QuantumCircuit, str]:
    """Generate one named family instance; see :data:`REVLIB_FAMILIES`."""
    if family not in REVLIB_FAMILIES:
        raise KeyError(f"unknown RevLib family {family!r}; "
                       f"available: {sorted(REVLIB_FAMILIES)}")
    return REVLIB_FAMILIES[family]()


def revlib_suite(families: Optional[Sequence[str]] = None
                 ) -> List[Tuple[str, QuantumCircuit, QuantumCircuit, str]]:
    """The full Table IV style suite.

    Returns a list of ``(name, original, modified, constants)`` tuples, where
    ``modified`` is the H-augmented variant of ``original``.
    """
    names = list(families) if families is not None else sorted(REVLIB_FAMILIES)
    suite = []
    for name in names:
        original, constants = generate_revlib_circuit(name)
        suite.append((name, original, h_augment(original, constants), constants))
    return suite

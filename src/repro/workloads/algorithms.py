"""Quantum algorithm circuits for the Table V experiments (plus extensions).

The paper's third benchmark set contains two families:

* **Entanglement** — GHZ state preparation: one H followed by a CNOT chain,
  ``#gates == #qubits``.  These are stabilizer circuits, which is why the
  paper also quotes CHP timings for them.
* **Bernstein–Vazirani** — the textbook BV circuit over ``n`` data qubits and
  one ancilla: H on everything, X+H on the ancilla, one CNOT per set bit of
  the hidden string, then H on the data qubits.  With an all-ones hidden
  string the gate count is ``3n + 2 + n = 239`` for ``n = 79`` data qubits
  (80 total), matching the paper's ``#gates`` column shape.

Two further exactly-representable algorithm families are provided as
extensions (used by the extra examples and ablation benches, not by the paper
tables): a hidden-shift circuit over bent functions built from CZ gates, and
a small Grover search with a CCX oracle.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ / entanglement preparation: H on qubit 0, then a CNOT chain.

    Gate count equals ``num_qubits`` exactly, matching the paper's Table V
    entanglement column.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"entanglement_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def bernstein_vazirani_circuit(num_data_qubits: int,
                               hidden_string: Optional[int] = None) -> QuantumCircuit:
    """Bernstein–Vazirani circuit over ``num_data_qubits`` data qubits plus
    one ancilla (the last qubit).

    ``hidden_string`` is the secret bit-string as an integer (bit ``i`` of the
    integer corresponds to data qubit ``i`` counted from the most significant
    side); ``None`` means all ones, which is what the paper's gate counts
    correspond to.
    """
    if num_data_qubits < 1:
        raise ValueError("need at least one data qubit")
    if hidden_string is None:
        hidden_string = (1 << num_data_qubits) - 1
    if not 0 <= hidden_string < (1 << num_data_qubits):
        raise ValueError("hidden string out of range")
    num_qubits = num_data_qubits + 1
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_qubits, name=f"bv_{num_qubits}")
    # Prologue: H on data, X+H on the ancilla (puts it in |->).
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    circuit.x(ancilla)
    circuit.h(ancilla)
    # Oracle: one CNOT per set bit of the hidden string.
    for qubit in range(num_data_qubits):
        if (hidden_string >> (num_data_qubits - 1 - qubit)) & 1:
            circuit.cx(qubit, ancilla)
    # Epilogue: H on the data qubits; measuring them reveals the string.
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    for qubit in range(num_data_qubits):
        circuit.measure(qubit)
    return circuit


def hidden_shift_circuit(num_qubits: int, shift: Optional[int] = None,
                         seed: int = 0) -> QuantumCircuit:
    """A hidden-shift circuit over a Maiorana–McFarland bent function.

    The construction uses only H, X, Z and CZ gates, so it is exactly
    representable and Clifford; it produces the shift string deterministically
    on measurement.  ``num_qubits`` must be even.
    """
    if num_qubits < 2 or num_qubits % 2:
        raise ValueError("hidden shift needs an even number of qubits")
    if shift is None:
        rng = random.Random(seed)
        shift = rng.randrange(1 << num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"hidden_shift_{num_qubits}")
    half = num_qubits // 2

    def oracle() -> None:
        for i in range(half):
            circuit.cz(i, half + i)

    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        if (shift >> (num_qubits - 1 - qubit)) & 1:
            circuit.x(qubit)
    oracle()
    for qubit in range(num_qubits):
        if (shift >> (num_qubits - 1 - qubit)) & 1:
            circuit.x(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle()
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.measure(qubit)
    return circuit


def grover_sat_circuit(num_qubits: int, marked_state: int = 0,
                       iterations: Optional[int] = None) -> QuantumCircuit:
    """Grover search for one marked basis state with a multi-control oracle.

    The oracle and the diffuser are built from H, X and multi-control Z
    (implemented as an H-conjugated multi-control Toffoli), all exactly
    representable.  The default iteration count is the usual
    ``round(pi/4 * sqrt(2**n))`` capped at 16 to keep example run-times sane.
    """
    import math

    if num_qubits < 2:
        raise ValueError("Grover needs at least two qubits")
    if not 0 <= marked_state < (1 << num_qubits):
        raise ValueError("marked state out of range")
    if iterations is None:
        iterations = min(16, max(1, round(math.pi / 4 * math.sqrt(2 ** num_qubits))))
    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    controls = list(range(num_qubits - 1))
    target = num_qubits - 1

    def multi_control_z() -> None:
        circuit.h(target)
        if len(controls) == 1:
            circuit.cx(controls[0], target)
        else:
            circuit.ccx(controls, target)
        circuit.h(target)

    def flip_marked() -> None:
        for qubit in range(num_qubits):
            if not (marked_state >> (num_qubits - 1 - qubit)) & 1:
                circuit.x(qubit)

    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(iterations):
        # Oracle: phase-flip the marked state.
        flip_marked()
        multi_control_z()
        flip_marked()
        # Diffuser: inversion about the mean.
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.x(qubit)
        multi_control_z()
        for qubit in range(num_qubits):
            circuit.x(qubit)
            circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.measure(qubit)
    return circuit

"""Benchmark circuit generators for the paper's four evaluation families.

* :mod:`repro.workloads.random_circuits` — Table III random circuits
  (H prologue, 3:1 gate-to-qubit ratio, uniform gate picks).
* :mod:`repro.workloads.revlib` — Table IV reversible-circuit families
  (adders, ALUs, control units, …) plus the H-augmentation the paper applies
  to inputs without specified initial values.
* :mod:`repro.workloads.algorithms` — Table V quantum algorithm circuits:
  GHZ entanglement preparation and Bernstein–Vazirani.
* :mod:`repro.workloads.supremacy` — Table VI Google GRCS rectangular-lattice
  CZ circuits (Boixo et al. construction rules).
"""

from repro.workloads.random_circuits import generate_random_circuit, random_circuit_suite
from repro.workloads.revlib import (
    REVLIB_FAMILIES,
    generate_revlib_circuit,
    h_augment,
    revlib_suite,
)
from repro.workloads.algorithms import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    grover_sat_circuit,
    hidden_shift_circuit,
)
from repro.workloads.supremacy import grcs_circuit, supremacy_suite

__all__ = [
    "generate_random_circuit",
    "random_circuit_suite",
    "REVLIB_FAMILIES",
    "generate_revlib_circuit",
    "h_augment",
    "revlib_suite",
    "ghz_circuit",
    "bernstein_vazirani_circuit",
    "hidden_shift_circuit",
    "grover_sat_circuit",
    "grcs_circuit",
    "supremacy_suite",
]

"""The user-facing bit-sliced BDD simulator.

:class:`BitSliceSimulator` wires together the state representation
(:class:`~repro.core.bitslice.BitSlicedState`), the Table II gate rules
(:class:`~repro.core.gate_rules.GateRuleEngine`) and the measurement engine
(:class:`~repro.core.measurement.MeasurementEngine`), and adds the resource
accounting (wall-clock and node-count limits, per-gate statistics) the
benchmark harness relies on to reproduce the paper's TO / MO columns.

Typical use::

    from repro import BitSliceSimulator, QuantumCircuit

    circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
    simulator = BitSliceSimulator.simulate(circuit)
    print(simulator.probability_of_outcome([0, 1, 2], [0, 0, 0]))   # 0.5
    print(simulator.amplitude(0))                                   # exact 1/sqrt(2)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import AlgebraicComplex
from repro.bdd import BddManager
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.core.bitslice import BitSlicedState
from repro.core.gate_rules import GateRuleEngine
from repro.core.measurement import MeasurementEngine
from repro.exceptions import SimulationMemoryExceeded, SimulationTimeout


class BitSliceSimulator:
    """Exact quantum circuit simulation via bit-sliced BDDs.

    Parameters
    ----------
    num_qubits:
        Register size.
    initial_state:
        Basis state to start from.
    initial_bits:
        Initial integer width ``r`` (grows automatically on overflow).
    max_seconds:
        Optional wall-clock budget checked between gates; exceeding it raises
        :class:`~repro.exceptions.SimulationTimeout`.
    max_nodes:
        Optional budget on live BDD nodes of the state, checked between
        gates; exceeding it raises
        :class:`~repro.exceptions.SimulationMemoryExceeded`.
    auto_shrink:
        Drop redundant sign slices after every gate (keeps ``r`` minimal at a
        small constant cost; on by default).
    auto_reorder_threshold:
        Enable growth-triggered dynamic variable reordering: when the BDD
        substrate's live node count exceeds this threshold, an in-place
        sift runs at the next gate boundary (all slices stay valid; see
        :meth:`repro.bdd.manager.BddManager.maybe_reorder` for the back-off
        policy).  ``None`` (the default) leaves the manager's setting
        untouched — reordering is off on a private manager, matching the
        original tool where dynamic reordering is a tuning knob.  The
        threshold is *manager state*: passing a value together with a
        shared ``manager`` installs it on that manager for every one of
        its users (and the back-off keeps adjusting it there); pass
        ``None`` and configure the manager directly when several
        simulators share one and need different policies.
    substrate:
        Backend of the private BDD manager (``dict`` / ``array`` /
        ``compiled`` / ``auto``; see :mod:`repro.bdd.substrate`).  All
        backends produce node-for-node identical DAGs, so this is purely a
        performance knob.  ``None`` keeps the default; mutually exclusive
        with ``manager``.
    """

    def __init__(self, num_qubits: int, initial_state: int = 0, initial_bits: int = 2,
                 max_seconds: Optional[float] = None, max_nodes: Optional[int] = None,
                 auto_shrink: bool = True, manager: Optional[BddManager] = None,
                 auto_reorder_threshold: Optional[int] = None,
                 substrate: Optional[str] = None):
        self.state = BitSlicedState(num_qubits, initial_state=initial_state,
                                    initial_bits=initial_bits, manager=manager,
                                    substrate=substrate)
        if auto_reorder_threshold is not None:
            self.state.manager.auto_reorder_threshold = auto_reorder_threshold
        self._rules = GateRuleEngine(self.state)
        self.max_seconds = max_seconds
        self.max_nodes = max_nodes
        self.auto_shrink = auto_shrink
        self._start_time = time.perf_counter()
        self.gates_applied = 0
        self.peak_nodes = self.state.num_nodes()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Register size."""
        return self.state.num_qubits

    @classmethod
    def simulate(cls, circuit: QuantumCircuit, initial_state: int = 0,
                 initial_bits: int = 2, max_seconds: Optional[float] = None,
                 max_nodes: Optional[int] = None) -> "BitSliceSimulator":
        """Create a simulator sized for ``circuit`` and run it to completion."""
        simulator = cls(circuit.num_qubits, initial_state=initial_state,
                        initial_bits=initial_bits, max_seconds=max_seconds,
                        max_nodes=max_nodes)
        simulator.run(circuit)
        return simulator

    def fork(self) -> "BitSliceSimulator":
        """An independent simulator continuing from this one's exact state.

        The fork shares the BDD manager (see
        :meth:`~repro.core.bitslice.BitSlicedState.fork`) and carries the
        cumulative ``gates_applied`` and ``peak_nodes`` accounting, so a run
        resumed from a retained prefix reports the same gate and peak-node
        statistics as the equivalent cold run.  Gates applied to the fork
        never disturb the original state — that is the contract prefix
        resume (:mod:`repro.cache.sessions`) relies on.  Callers resuming
        forks concurrently must serialise per shared manager (the session
        pool's chain lock does); the pure-Python node store is not safe
        under concurrent mutation.
        """
        forked = BitSliceSimulator.__new__(BitSliceSimulator)
        forked.state = self.state.fork()
        forked._rules = GateRuleEngine(forked.state)
        forked.max_seconds = self.max_seconds
        forked.max_nodes = self.max_nodes
        forked.auto_shrink = self.auto_shrink
        forked._start_time = time.perf_counter()
        forked.gates_applied = self.gates_applied
        forked.peak_nodes = self.peak_nodes
        return forked

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def reset_clock(self) -> None:
        """Restart the wall-clock budget (used when a harness reuses the
        simulator for several runs)."""
        self._start_time = time.perf_counter()

    def _check_limits(self) -> None:
        if self.max_seconds is not None:
            elapsed = time.perf_counter() - self._start_time
            if elapsed > self.max_seconds:
                raise SimulationTimeout(elapsed, self.max_seconds)
        if self.max_nodes is not None:
            nodes = self.state.num_nodes()
            if nodes > self.max_nodes:
                raise SimulationMemoryExceeded(nodes, self.max_nodes)

    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate (measurement markers are ignored here)."""
        if gate.kind is GateKind.MEASURE:
            return
        self._rules.apply(gate)
        if self.auto_shrink:
            self.state.shrink()
        self.gates_applied += 1
        nodes = self.state.num_nodes()
        if nodes > self.peak_nodes:
            self.peak_nodes = nodes
        # Gate boundaries are the safe points for both store-maintenance
        # passes: every live node is anchored in a registered handle here.
        self.state.manager.maybe_collect()
        self.state.manager.maybe_reorder()
        self._check_limits()

    def run(self, circuit: QuantumCircuit) -> "BitSliceSimulator":
        """Apply every gate of ``circuit`` in order; returns ``self``."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and simulator qubit counts differ")
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------ #
    # exact state queries
    # ------------------------------------------------------------------ #
    def amplitude(self, basis_index: int) -> AlgebraicComplex:
        """Exact amplitude of ``|basis_index>`` (excluding the measurement
        factor ``s``; see :attr:`normalisation`)."""
        return self.state.amplitude(basis_index)

    def amplitude_complex(self, basis_index: int) -> complex:
        """Floating-point amplitude of ``|basis_index>`` including ``s``."""
        return self.state.amplitude_complex(basis_index)

    @property
    def normalisation(self) -> float:
        """The floating-point measurement normalisation factor ``s``."""
        return self.state.s

    def to_numpy(self):
        """Dense complex state vector (small qubit counts only)."""
        return self.state.to_numpy()

    def to_algebraic_vector(self):
        """Dense exact state vector (small qubit counts only)."""
        return self.state.to_algebraic_vector()

    # ------------------------------------------------------------------ #
    # probabilities, measurement, sampling
    # ------------------------------------------------------------------ #
    def _measurement_engine(self) -> MeasurementEngine:
        return MeasurementEngine(self.state)

    def total_probability(self) -> float:
        """Sum of all outcome probabilities (sanity check; should be 1)."""
        return self._measurement_engine().total_probability()

    def probability_of_qubit(self, qubit: int, value: int = 0) -> float:
        """``Pr[qubit == value]`` without collapsing."""
        return self._measurement_engine().probability_of_qubit(qubit, value)

    def probability_of_outcome(self, qubits: Sequence[int], outcome: Sequence[int]) -> float:
        """Joint probability of ``outcome`` on ``qubits`` without collapsing."""
        return self._measurement_engine().probability_of_outcome(qubits, outcome)

    def measurement_distribution(self, qubits: Optional[Sequence[int]] = None) -> Dict[int, float]:
        """Joint outcome distribution over ``qubits`` (default all)."""
        return self._measurement_engine().measurement_distribution(qubits)

    def measure_qubit(self, qubit: int, rng=None, forced_outcome: Optional[int] = None) -> int:
        """Measure one qubit and collapse the state."""
        return self._measurement_engine().measure_qubit(qubit, rng=rng,
                                                        forced_outcome=forced_outcome)

    def measure_qubits(self, qubits: Sequence[int], rng=None,
                       forced_outcomes: Optional[Sequence[int]] = None) -> List[int]:
        """Measure several qubits sequentially, collapsing after each."""
        return self._measurement_engine().measure_qubits(qubits, rng=rng,
                                                         forced_outcomes=forced_outcomes)

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None, rng=None) -> Dict[int, int]:
        """Sample outcomes without collapsing the state."""
        return self._measurement_engine().sample(shots, qubits=qubits, rng=rng)

    def nonzero_amplitude_count(self) -> int:
        """Number of basis states with non-zero amplitude, counted
        symbolically (works for registers far too wide to enumerate)."""
        return self.state.nonzero_amplitude_count()

    # ------------------------------------------------------------------ #
    # dynamic variable reordering
    # ------------------------------------------------------------------ #
    def sift(self, max_vars: int = 0, max_growth: float = 1.2) -> Dict[str, int]:
        """Reorder the BDD variables in place to shrink the state now.

        Explicit counterpart of the ``auto_reorder_threshold`` knob; safe at
        any gate boundary (the state's slices stay valid).  Returns the
        sift's ``{"nodes_before", "nodes_after", "swaps"}``.
        """
        return self.state.sift(max_vars=max_vars, max_growth=max_growth)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, float]:
        """Run statistics used by the benchmark harness.

        Includes the substrate's performance counters (per-op computed-table
        hit rates, unique-table traffic, GC pauses, peak live nodes) flattened
        under a ``substrate_`` prefix, so every harness report row carries
        them.
        """
        stats = self.state.statistics()
        stats.update({
            "gates_applied": self.gates_applied,
            "peak_bdd_nodes": self.peak_nodes,
            "elapsed_seconds": time.perf_counter() - self._start_time,
        })
        for key, value in self.state.manager.perf_stats().items():
            stats[f"substrate_{key}"] = value
        return stats

    def substrate_perf_by_gate(self) -> Dict[str, Dict[str, float]]:
        """Substrate counters attributed per gate kind (see
        :meth:`repro.core.gate_rules.GateRuleEngine.perf_summary`)."""
        return self._rules.perf_summary()

    def __repr__(self) -> str:
        return (f"BitSliceSimulator(num_qubits={self.num_qubits}, "
                f"gates_applied={self.gates_applied}, r={self.state.r}, "
                f"k={self.state.k})")

"""Exact circuit equivalence checking on top of the bit-sliced engine.

Because the bit-sliced representation is exact, two circuits can be compared
*without any numerical tolerance*: run both on the same basis states and
compare the resulting algebraic coefficient vectors with integer equality.
This is the natural verification application of the paper's accuracy claim
(decision-diagram equivalence checking is a standard EDA use of DD-based
simulators) and is used by the test-suite and the transformation passes.

Two notions are provided:

* :func:`states_equal_exact` — exact equality of the final states for one
  initial basis state (detects any difference, including global phase).
* :func:`circuits_equivalent` — equality on a set of basis states (all of
  them for small registers, a random sample for large ones).  Agreement on
  all ``2**n`` basis states is full functional equivalence; agreement on a
  sample is a Monte-Carlo check with one-sided error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence check."""

    equivalent: bool
    checked_inputs: List[int]
    #: First basis input on which the circuits differ (None when equivalent).
    counterexample: Optional[int] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def states_equal_exact(left: QuantumCircuit, right: QuantumCircuit,
                       initial_state: int = 0) -> bool:
    """True iff both circuits map ``|initial_state>`` to the *exact* same
    algebraic state (same integers after canonicalisation, no tolerance)."""
    if left.num_qubits != right.num_qubits:
        raise ValueError("circuits act on different register sizes")
    left_state = BitSliceSimulator.simulate(left, initial_state=initial_state)
    right_state = BitSliceSimulator.simulate(right, initial_state=initial_state)
    dimension = 1 << left.num_qubits
    for basis in range(dimension):
        if left_state.amplitude(basis) != right_state.amplitude(basis):
            return False
    return True


def circuits_equivalent(left: QuantumCircuit, right: QuantumCircuit,
                        max_exhaustive_qubits: int = 8,
                        samples: int = 16, seed: int = 0) -> EquivalenceReport:
    """Check functional equivalence of two circuits.

    For registers up to ``max_exhaustive_qubits`` every computational basis
    input is checked (complete functional equivalence).  For larger registers
    ``samples`` random basis inputs are checked, which catches any difference
    that is visible on a non-negligible fraction of inputs.
    """
    if left.num_qubits != right.num_qubits:
        raise ValueError("circuits act on different register sizes")
    num_qubits = left.num_qubits
    if num_qubits <= max_exhaustive_qubits:
        inputs = list(range(1 << num_qubits))
    else:
        rng = random.Random(seed)
        inputs = sorted({rng.randrange(1 << num_qubits) for _ in range(samples)} | {0})
    for basis in inputs:
        if not states_equal_exact(left, right, initial_state=basis):
            return EquivalenceReport(False, inputs, counterexample=basis)
    return EquivalenceReport(True, inputs)

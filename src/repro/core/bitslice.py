"""Bit-sliced algebraic state representation (paper Section III-B).

A state vector ``|psi>`` over ``n`` qubits whose amplitudes are written in
the algebraic form ``(a*w^3 + b*w^2 + c*w + d) / sqrt(2)^k`` is stored as

* four lists of ``r`` BDDs over the ``n`` qubit variables — one BDD per bit
  of the two's-complement integers in the vectors ``a``, ``b``, ``c``, ``d``
  (bit 0 is the least-significant bit, bit ``r-1`` the sign bit), and
* one shared integer exponent ``k``, plus
* one floating-point factor ``s`` (the measurement normalisation of Eq. 13;
  it stays exactly 1.0 until a collapse happens).

The truth table of slice ``j`` of vector ``a`` is exactly the ``j``-th bit of
the ``2**n``-entry integer vector ``a`` — Fig. 1 of the paper.

The integer width ``r`` is dynamic: gate application detects two's-complement
overflow symbolically and widens the representation (sign-extension) before
retrying, mirroring the "extra BDDs are allocated on overflow" behaviour of
the original implementation.  :meth:`BitSlicedState.shrink` drops redundant
sign bits again so ``r`` tracks the largest live coefficient.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import AlgebraicComplex
from repro.bdd import Bdd, BddManager, create_manager

#: The four vector names of the algebraic representation, in a fixed order.
VECTOR_NAMES = ("a", "b", "c", "d")


class BitSlicedState:
    """The 4r-BDD representation of an ``n``-qubit quantum state.

    Parameters
    ----------
    num_qubits:
        Number of qubits ``n``.  Qubit ``j`` is represented by BDD variable
        ``j`` of the manager (and is the ``j``-th most significant bit of a
        basis index).
    initial_state:
        Basis state ``|i>`` to initialise to (paper Eq. 6).
    initial_bits:
        Initial integer width ``r``.  The original tool starts at 32; the pure
        Python default is 2 because the width grows on demand anyway and
        smaller widths keep the constant factors low.
    manager:
        Optionally share an existing :class:`BddManager`; by default a private
        manager with ``num_qubits`` variables is created.
    substrate:
        Backend for the private manager (``dict`` / ``array`` /
        ``compiled`` / ``auto``; see :mod:`repro.bdd.substrate`).  ``None``
        keeps the default backend.  Mutually exclusive with ``manager`` —
        a shared manager already fixes the substrate.
    """

    def __init__(self, num_qubits: int, initial_state: int = 0,
                 initial_bits: int = 2, manager: Optional[BddManager] = None,
                 substrate: Optional[str] = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if initial_bits < 2:
            raise ValueError("need at least two bits for two's complement")
        if not 0 <= initial_state < (1 << num_qubits):
            raise ValueError("initial basis state out of range")
        if manager is not None and substrate is not None:
            raise ValueError("pass either manager or substrate, not both")
        self.num_qubits = num_qubits
        self.manager = manager or create_manager(num_qubits, substrate=substrate)
        if self.manager.num_vars < num_qubits:
            raise ValueError("manager does not have enough variables")
        self.r = initial_bits
        self.k = 0
        #: Floating point normalisation factor from measurements (Eq. 13).
        self.s = 1.0
        false = self.manager.false
        self.slices: Dict[str, List[Bdd]] = {
            name: [false for _ in range(initial_bits)] for name in VECTOR_NAMES
        }
        # Paper Eq. 6: the initial basis state sets bit 0 of vector d to the
        # minterm of |initial_state>, everything else stays constant 0.
        self.slices["d"][0] = self._minterm(initial_state)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _minterm(self, basis_index: int) -> Bdd:
        """The BDD that is 1 exactly on ``|basis_index>``."""
        cube = self.manager.true
        for qubit in range(self.num_qubits):
            bit = (basis_index >> (self.num_qubits - 1 - qubit)) & 1
            cube = cube & self.manager.literal(qubit, bool(bit))
        return cube

    def qubit_var(self, qubit: int) -> int:
        """BDD variable index representing ``qubit``."""
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        return qubit

    # ------------------------------------------------------------------ #
    # width management
    # ------------------------------------------------------------------ #
    def widen(self, extra_bits: int = 1) -> None:
        """Sign-extend every vector by ``extra_bits`` additional slices in
        one pass (the sign slice is shared, so this allocates no nodes)."""
        for name in VECTOR_NAMES:
            bits = self.slices[name]
            sign = bits[-1]
            bits.extend([sign] * extra_bits)
        self.r += extra_bits

    def widen_to(self, width: int) -> None:
        """Sign-extend every vector up to ``width`` slices (no-op when the
        state is already at least that wide).

        Convenience entry point for callers that know a target width up
        front (state preparation, deserialisation, tests).  The gate
        engine's overflow retry deliberately keeps widening by exactly one
        slice per retry instead: a gate's additions can only overflow by one
        bit, and overshooting would change the engine-visible ``bit_width``
        statistic for no saved work.
        """
        if width > self.r:
            self.widen(width - self.r)

    def shrink(self, min_bits: int = 2) -> int:
        """Drop redundant sign slices; returns the number removed.

        A sign slice is redundant when it equals the slice below it in every
        vector.  The removable count is computed in one pass — the length of
        the run of identical top slices, minimised over the four vectors —
        and each vector is truncated once, instead of the old pop-one-slice-
        and-recheck-everything loop.
        """
        removable = self.r - min_bits
        if removable <= 0:
            return 0
        for name in VECTOR_NAMES:
            bits = self.slices[name]
            sign = bits[-1]
            run = 0
            while run < removable and bits[-2 - run] == sign:
                run += 1
            removable = run
            if removable == 0:
                return 0
        for name in VECTOR_NAMES:
            del self.slices[name][self.r - removable:]
        self.r -= removable
        return removable

    def replace_slices(self, new_slices: Dict[str, List[Bdd]], delta_k: int = 0) -> None:
        """Install freshly computed slices (all four vectors, same width)."""
        widths = {len(bits) for bits in new_slices.values()}
        if len(widths) != 1:
            raise ValueError("all four vectors must have the same width")
        self.slices = {name: list(new_slices[name]) for name in VECTOR_NAMES}
        self.r = widths.pop()
        self.k += delta_k

    # ------------------------------------------------------------------ #
    # forking (prefix-resume support)
    # ------------------------------------------------------------------ #
    def fork(self) -> "BitSlicedState":
        """An independent state sharing this state's manager.

        BDD handles are immutable, so copying the 4r handle lists (plus
        ``r`` / ``k`` / ``s``) yields a state whose future gate
        applications never disturb the original — new nodes land in the
        shared manager, the original's slices keep their node ids.  This is
        what lets a retained session (:mod:`repro.cache.sessions`) be
        resumed from without consuming it.  O(4r) handle copies, no node
        allocation.
        """
        forked = BitSlicedState.__new__(BitSlicedState)
        forked.num_qubits = self.num_qubits
        forked.manager = self.manager
        forked.r = self.r
        forked.k = self.k
        forked.s = self.s
        forked.slices = {name: list(bits) for name, bits in self.slices.items()}
        return forked

    # ------------------------------------------------------------------ #
    # dynamic variable reordering
    # ------------------------------------------------------------------ #
    def sift(self, max_vars: int = 0, max_growth: float = 1.2) -> Dict[str, int]:
        """Dynamically reorder the manager's variables to shrink the state.

        Runs the manager's in-place Rudell sifting
        (:meth:`repro.bdd.manager.BddManager.sift`) over everything it
        owns — all 4r slice handles of this state reorder together and stay
        valid in place (node ids keep their functions), as does every other
        handle registered with the shared manager.  Gate application is
        order-independent (the rules address qubits by variable *index*),
        so sifting is safe at any gate boundary.

        Returns the sift's ``{"nodes_before", "nodes_after", "swaps"}``.
        """
        return self.manager.sift(max_vars=max_vars, max_growth=max_growth)

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def _decode_bits(self, bits: Sequence[Bdd], assignment: Dict[int, bool]) -> int:
        """Decode a two's-complement integer from bit-plane BDDs at a basis
        assignment."""
        value = 0
        for position, bit_bdd in enumerate(bits):
            if self._evaluate(bit_bdd, assignment):
                value |= 1 << position
        sign_weight = 1 << (len(bits) - 1)
        if value & sign_weight:
            value -= sign_weight << 1
        return value

    def _evaluate(self, function: Bdd, assignment: Dict[int, bool]) -> bool:
        manager = self.manager
        node = function.node
        while not manager.is_terminal(node):
            var = manager.node_var(node)
            node = (manager.node_high(node) if assignment.get(var, False)
                    else manager.node_low(node))
        return node == 1

    def _assignment_of(self, basis_index: int) -> Dict[int, bool]:
        return {
            qubit: bool((basis_index >> (self.num_qubits - 1 - qubit)) & 1)
            for qubit in range(self.num_qubits)
        }

    def coefficient_tuple(self, basis_index: int) -> Tuple[int, int, int, int, int]:
        """Raw ``(a, b, c, d, k)`` integers for basis state ``basis_index``
        (not canonicalised, ignoring the measurement factor ``s``)."""
        assignment = self._assignment_of(basis_index)
        return (
            self._decode_bits(self.slices["a"], assignment),
            self._decode_bits(self.slices["b"], assignment),
            self._decode_bits(self.slices["c"], assignment),
            self._decode_bits(self.slices["d"], assignment),
            self.k,
        )

    def amplitude(self, basis_index: int) -> AlgebraicComplex:
        """Exact amplitude of ``|basis_index>`` (ignoring the measurement
        normalisation factor ``s``, which is exposed separately)."""
        if not 0 <= basis_index < (1 << self.num_qubits):
            raise ValueError("basis index out of range")
        a, b, c, d, k = self.coefficient_tuple(basis_index)
        return AlgebraicComplex(a, b, c, d, k)

    def amplitude_complex(self, basis_index: int) -> complex:
        """Floating-point amplitude including the measurement factor ``s``."""
        return self.s * self.amplitude(basis_index).to_complex()

    def to_algebraic_vector(self):
        """The full dense exact state (only sensible for small ``n``)."""
        from repro.algebra import AlgebraicVector

        amplitudes = [self.amplitude(i) for i in range(1 << self.num_qubits)]
        return AlgebraicVector(self.num_qubits, amplitudes)

    def to_numpy(self):
        """The full dense complex state including ``s`` (small ``n`` only)."""
        import numpy as np

        return np.array(
            [self.amplitude_complex(i) for i in range(1 << self.num_qubits)],
            dtype=complex)

    # ------------------------------------------------------------------ #
    # collapse support (used by the measurement engine)
    # ------------------------------------------------------------------ #
    def project_qubit(self, qubit: int, outcome: int, probability: float,
                      exact=None) -> None:
        """Zero out all amplitudes inconsistent with ``qubit == outcome`` and
        renormalise (paper Section III-E, Eq. 13).

        The 4r slice conjunctions against the outcome literal run as one
        batched AND (one computed-table binding for the whole family).

        Renormalisation is *exact in the omega-algebra* whenever possible:
        when ``exact`` (an :class:`~repro.core.measurement.ExactProbability`
        for this outcome, measured in the state's own ``2**k`` scale) shows
        the outcome probability is an exact power of two ``2**(m-k)`` — the
        case for every Clifford-style measurement — the ``1/sqrt(p)`` factor
        is a pure ``sqrt(2)`` power and folds into the global exponent
        (``k`` becomes ``m``), keeping ``s`` at exactly 1.0 and the state
        exact.  Otherwise the floating-point factor ``s`` absorbs
        ``1/sqrt(p)`` as before.
        """
        if probability <= 0.0:
            raise ValueError("cannot project onto a zero-probability outcome")
        keep = self.manager.literal(self.qubit_var(qubit), bool(outcome))
        flat = [bit.node for bit in self.all_slices()]
        conjoined = self.manager.batcher().and_many(
            [(node, keep.node) for node in flat])
        for index, name in enumerate(VECTOR_NAMES):
            self.slices[name] = [Bdd(self.manager, node)
                                 for node in conjoined[index * self.r:(index + 1) * self.r]]
        if (exact is not None and self.s == 1.0 and exact.k == self.k
                and exact.y == 0 and exact.x > 0
                and exact.x & (exact.x - 1) == 0):
            # p = 2**m / 2**k  =>  1/sqrt(p) = sqrt(2)**(k-m): the global
            # divisor sqrt(2)**k becomes sqrt(2)**m exactly.
            self.k = exact.x.bit_length() - 1
        else:
            self.s /= probability ** 0.5

    # ------------------------------------------------------------------ #
    # symbolic structure queries
    # ------------------------------------------------------------------ #
    def nonzero_support(self) -> Bdd:
        """The BDD that is 1 exactly on basis states with a non-zero amplitude.

        This is simply the OR of all 4r slice BDDs: an amplitude is zero iff
        every bit of all four integers is zero.  The result is a symbolic
        characterisation of the state's support, independent of its size.
        """
        support = self.manager.false
        for bit in self.all_slices():
            support = support | bit
        return support

    def nonzero_amplitude_count(self) -> int:
        """Number of basis states with a non-zero amplitude.

        Computed symbolically via BDD model counting, so it works for states
        whose support would be far too large to enumerate (e.g. the 2**n
        uniform superposition on hundreds of qubits).
        """
        return self.nonzero_support().satcount(self.num_qubits)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def all_slices(self) -> List[Bdd]:
        """The 4r slice BDDs as one flat list (a, b, c, d order)."""
        return [bit for name in VECTOR_NAMES for bit in self.slices[name]]

    def num_nodes(self) -> int:
        """Distinct BDD nodes shared by all slices (the paper's memory
        metric)."""
        return self.manager.count_nodes([bit.node for bit in self.all_slices()])

    def substrate_stats(self) -> Dict[str, float]:
        """The owning manager's raw performance counters (see
        :meth:`repro.bdd.manager.BddManager.perf_stats`)."""
        return self.manager.perf_stats()

    def statistics(self) -> Dict[str, float]:
        """Summary dict used by the harness (width, k, node count, s)."""
        return {
            "num_qubits": self.num_qubits,
            "bit_width": self.r,
            "k": self.k,
            "normalisation": self.s,
            "bdd_nodes": self.num_nodes(),
            "manager_live_nodes": self.manager.num_live_nodes(),
        }

    def __repr__(self) -> str:
        return (f"BitSlicedState(num_qubits={self.num_qubits}, r={self.r}, "
                f"k={self.k}, nodes={self.num_nodes()})")

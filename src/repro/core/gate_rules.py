"""Pre-characterised Boolean update formulas for every supported gate.

This module is the reproduction of the paper's Table II.  Each gate has a
handler that maps the current slice BDDs ``(Fa_i, Fb_i, Fc_i, Fd_i)`` to the
updated slices, expressed purely through cofactors, Boolean connectives and
symbolic ripple-carry adders — no matrix-vector multiplication ever happens.

Derivation conventions (matching the paper's worked H-gate example):

* Applying a gate to target ``t`` relates, for every setting of the other
  qubits, the new amplitudes at ``q_t = 0 / 1`` to the old amplitudes at
  ``q_t = 0 / 1``.
* Multiplication of an algebraic value by ``i = w**2`` permutes the integer
  coefficients ``(a, b, c, d) -> (c, d, -a, -b)``; by ``w`` (the T gate)
  ``(a, b, c, d) -> (b, c, d, -a)``; negation is two's-complement negation
  (bitwise complement plus an initial carry-in), which is where the
  ``Ca0 = q_t`` style carry seeds of Table II come from.
* H, Rx(pi/2) and Ry(pi/2) add amplitudes, so they run a full symbolic adder
  and increment the shared exponent ``k`` by one (their 1/sqrt(2) factor).

Every handler returns a :class:`GateUpdate` carrying the new slices, the
``k`` increment and the symbolic overflow predicate of all additions
performed.  :class:`GateRuleEngine.apply` widens the state and retries when
the overflow predicate is satisfiable, reproducing the "allocate extra BDDs
on overflow" behaviour of the original implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bdd import Bdd, BddManager
from repro.circuit.gates import Gate, GateKind
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState
from repro.exceptions import UnsupportedGateError
from repro.perf import PerfCounters


@dataclass
class GateUpdate:
    """Result of characterising one gate application at the current width."""

    #: New slice BDDs per vector name, least-significant bit first.
    slices: Dict[str, List[Bdd]]
    #: Increment of the shared exponent ``k`` (0 or 1).
    delta_k: int
    #: True when some addition overflowed the current two's-complement width
    #: and the state must be widened before retrying.
    overflowed: bool


class GateRuleEngine:
    """Applies Table II update rules to a :class:`BitSlicedState`."""

    def __init__(self, state: BitSlicedState):
        self.state = state
        self.manager: BddManager = state.manager
        #: Per-gate-kind substrate counters (cache hits / misses, unique-table
        #: traffic, GC activity, elapsed seconds, application count).  Fed by
        #: :meth:`apply` from cheap raw-counter snapshots — two tuple reads
        #: per gate, no keyed-dict construction on the hot path.
        self.perf_by_gate: Dict[str, PerfCounters] = {}

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def apply(self, gate: Gate, max_widen_retries: int = 64) -> None:
        """Apply ``gate`` in place, widening the integer representation as
        needed when two's-complement overflow is detected."""
        handler = self._handler_for(gate.kind)
        before = self.manager.raw_perf_counters()
        started = time.perf_counter()
        for _ in range(max_widen_retries):
            update = handler(gate)
            if not update.overflowed:
                self.state.replace_slices(update.slices, update.delta_k)
                break
            self.state.widen(1)
        else:
            raise RuntimeError(
                f"gate {gate.kind.value} kept overflowing after "
                f"{max_widen_retries} widening attempts")
        elapsed = time.perf_counter() - started
        self._record_raw(gate.kind.value, before,
                         self.manager.raw_perf_counters(), elapsed)

    _RAW_KEYS = ("cache_hits", "cache_misses", "unique_probes",
                 "unique_inserts", "gc_runs", "gc_pause_seconds")

    def _record_raw(self, kind: str, before, after, elapsed: float) -> None:
        bag = self.perf_by_gate.get(kind)
        if bag is None:
            bag = self.perf_by_gate[kind] = PerfCounters()
        bag.add("applications", 1)
        bag.add("elapsed_seconds", elapsed)
        for key, before_value, after_value in zip(self._RAW_KEYS, before, after):
            bag.add(key, after_value - before_value)

    def perf_summary(self) -> Dict[str, Dict[str, float]]:
        """Accumulated substrate counters per gate kind, with cache hit
        rates recomputed over each kind's total hits / misses."""
        summary: Dict[str, Dict[str, float]] = {}
        for kind, bag in self.perf_by_gate.items():
            stats = bag.snapshot()
            lookups = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
            stats["cache_hit_rate"] = (stats.get("cache_hits", 0) / lookups
                                       if lookups else 0.0)
            summary[kind] = stats
        return summary

    def _handler_for(self, kind: GateKind) -> Callable[[Gate], GateUpdate]:
        handlers = {
            GateKind.X: self._apply_x,
            GateKind.Y: self._apply_y,
            GateKind.Z: self._apply_z,
            GateKind.H: self._apply_h,
            GateKind.S: self._apply_s,
            GateKind.SDG: self._apply_sdg,
            GateKind.T: self._apply_t,
            GateKind.TDG: self._apply_tdg,
            GateKind.RX_PI_2: self._apply_rx,
            GateKind.RY_PI_2: self._apply_ry,
            GateKind.CX: self._apply_cx,
            GateKind.CZ: self._apply_cz,
            GateKind.CCX: self._apply_ccx,
            GateKind.CSWAP: self._apply_cswap,
            GateKind.SWAP: self._apply_swap_gate,
        }
        if kind not in handlers:
            raise UnsupportedGateError(f"gate kind {kind.value} is not supported")
        return handlers[kind]

    # ------------------------------------------------------------------ #
    # Boolean building blocks
    # ------------------------------------------------------------------ #
    def _qvar(self, qubit: int) -> Bdd:
        return self.manager.var(self.state.qubit_var(qubit))

    def _bits(self, name: str) -> List[Bdd]:
        return list(self.state.slices[name])

    def _zeros(self) -> List[Bdd]:
        false = self.manager.false
        return [false for _ in range(self.state.r)]

    def _swap_on(self, function: Bdd, qubit: int) -> Bdd:
        """The function with the two cofactors of ``qubit`` exchanged: its
        value at ``q = b`` is the old value at ``q = not b`` (X-gate action)."""
        var = self.state.qubit_var(qubit)
        q = self._qvar(qubit)
        return q.ite(function.cofactor(var, False), function.cofactor(var, True))

    def _swap_two_vars(self, function: Bdd, qubit_a: int, qubit_b: int) -> Bdd:
        """The function with the roles of ``qubit_a`` and ``qubit_b``
        exchanged (SWAP action)."""
        var_a = self.state.qubit_var(qubit_a)
        var_b = self.state.qubit_var(qubit_b)
        qa, qb = self._qvar(qubit_a), self._qvar(qubit_b)
        f_01 = function.cofactor(var_a, False).cofactor(var_b, True)
        f_10 = function.cofactor(var_a, True).cofactor(var_b, False)
        same = qa.equiv(qb)
        return (same & function) | (qa & ~qb & f_01) | (~qa & qb & f_10)

    def _control_conjunction(self, controls: Sequence[int]) -> Bdd:
        product = self.manager.true
        for control in controls:
            product = product & self._qvar(control)
        return product

    @staticmethod
    def _carry(a: Bdd, b: Bdd, c: Bdd) -> Bdd:
        """Car(A, B, C) = AB + (A + B)C  (paper's carry formula)."""
        return (a & b) | ((a | b) & c)

    @staticmethod
    def _sum(a: Bdd, b: Bdd, c: Bdd) -> Bdd:
        """Sum(A, B, C) = A xor B xor C  (paper's sum formula)."""
        return a ^ b ^ c

    def _ripple_add(self, addend_a: Sequence[Bdd], addend_b: Sequence[Bdd],
                    carry_in: Bdd) -> Tuple[List[Bdd], bool]:
        """Symbolic two's-complement addition of equal-width bit-plane lists.

        Returns ``(sum_bits, overflowed)`` where ``overflowed`` is True when
        the signed result does not fit in the current width for at least one
        basis state (checked as satisfiability of carry-out xor carry-into-
        sign, the standard two's-complement overflow condition).
        """
        if len(addend_a) != len(addend_b):
            raise ValueError("adder operands must have the same width")
        carry = carry_in
        sums: List[Bdd] = []
        carry_into_sign = carry_in
        for position, (bit_a, bit_b) in enumerate(zip(addend_a, addend_b)):
            if position == len(addend_a) - 1:
                carry_into_sign = carry
            sums.append(self._sum(bit_a, bit_b, carry))
            carry = self._carry(bit_a, bit_b, carry)
        overflow = carry ^ carry_into_sign
        return sums, not overflow.is_false()

    def _conditional_negate_add(self, bits: Sequence[Bdd], condition: Bdd) -> Tuple[List[Bdd], bool]:
        """Two's-complement negate the integer wherever ``condition`` holds.

        Implements the Table II pattern ``G_i = cond' F_i + cond (not F_i)``
        with carry seed ``Ca0 = cond``: the bitwise complement plus one.
        """
        complemented = [condition.ite(~bit, bit) for bit in bits]
        return self._ripple_add(complemented, self._zeros(), condition)

    # ------------------------------------------------------------------ #
    # permutation-only gates (no adder, no overflow)
    # ------------------------------------------------------------------ #
    def _permute_all(self, transform: Callable[[Bdd], Bdd]) -> Dict[str, List[Bdd]]:
        return {name: [transform(bit) for bit in self._bits(name)]
                for name in VECTOR_NAMES}

    def _apply_x(self, gate: Gate) -> GateUpdate:
        target = gate.targets[0]
        new = self._permute_all(lambda f: self._swap_on(f, target))
        return GateUpdate(new, 0, False)

    def _apply_cx(self, gate: Gate) -> GateUpdate:
        control, target = gate.controls[0], gate.targets[0]
        qc = self._qvar(control)
        new = self._permute_all(lambda f: qc.ite(self._swap_on(f, target), f))
        return GateUpdate(new, 0, False)

    def _apply_ccx(self, gate: Gate) -> GateUpdate:
        target = gate.targets[0]
        condition = self._control_conjunction(gate.controls)
        new = self._permute_all(lambda f: condition.ite(self._swap_on(f, target), f))
        return GateUpdate(new, 0, False)

    def _apply_swap_gate(self, gate: Gate) -> GateUpdate:
        qubit_a, qubit_b = gate.targets
        new = self._permute_all(lambda f: self._swap_two_vars(f, qubit_a, qubit_b))
        return GateUpdate(new, 0, False)

    def _apply_cswap(self, gate: Gate) -> GateUpdate:
        qubit_a, qubit_b = gate.targets
        condition = self._control_conjunction(gate.controls)
        new = self._permute_all(
            lambda f: condition.ite(self._swap_two_vars(f, qubit_a, qubit_b), f))
        return GateUpdate(new, 0, False)

    # ------------------------------------------------------------------ #
    # phase gates (conditional coefficient permutation / negation)
    # ------------------------------------------------------------------ #
    def _apply_z(self, gate: Gate) -> GateUpdate:
        condition = self._qvar(gate.targets[0])
        return self._conditional_negate_all(condition)

    def _apply_cz(self, gate: Gate) -> GateUpdate:
        condition = self._qvar(gate.controls[0]) & self._qvar(gate.targets[0])
        return self._conditional_negate_all(condition)

    def _conditional_negate_all(self, condition: Bdd) -> GateUpdate:
        new: Dict[str, List[Bdd]] = {}
        overflowed = False
        for name in VECTOR_NAMES:
            bits, over = self._conditional_negate_add(self._bits(name), condition)
            new[name] = bits
            overflowed = overflowed or over
        return GateUpdate(new, 0, overflowed)

    def _apply_s(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by i: (a, b, c, d) -> (c, d, -a, -b).
        qt = self._qvar(gate.targets[0])
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        new_a = [qt.ite(c_bit, a_bit) for a_bit, c_bit in zip(fa, fc)]
        new_b = [qt.ite(d_bit, b_bit) for b_bit, d_bit in zip(fb, fd)]
        new_c, over_c = self._ripple_add(
            [qt.ite(~a_bit, c_bit) for a_bit, c_bit in zip(fa, fc)], self._zeros(), qt)
        new_d, over_d = self._ripple_add(
            [qt.ite(~b_bit, d_bit) for b_bit, d_bit in zip(fb, fd)], self._zeros(), qt)
        return GateUpdate({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                          0, over_c or over_d)

    def _apply_sdg(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by -i: (a, b, c, d) -> (-c, -d, a, b).
        qt = self._qvar(gate.targets[0])
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        new_a, over_a = self._ripple_add(
            [qt.ite(~c_bit, a_bit) for a_bit, c_bit in zip(fa, fc)], self._zeros(), qt)
        new_b, over_b = self._ripple_add(
            [qt.ite(~d_bit, b_bit) for b_bit, d_bit in zip(fb, fd)], self._zeros(), qt)
        new_c = [qt.ite(a_bit, c_bit) for a_bit, c_bit in zip(fa, fc)]
        new_d = [qt.ite(b_bit, d_bit) for b_bit, d_bit in zip(fb, fd)]
        return GateUpdate({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                          0, over_a or over_b)

    def _apply_t(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by w: (a, b, c, d) -> (b, c, d, -a).
        qt = self._qvar(gate.targets[0])
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        new_a = [qt.ite(b_bit, a_bit) for a_bit, b_bit in zip(fa, fb)]
        new_b = [qt.ite(c_bit, b_bit) for b_bit, c_bit in zip(fb, fc)]
        new_c = [qt.ite(d_bit, c_bit) for c_bit, d_bit in zip(fc, fd)]
        new_d, over_d = self._ripple_add(
            [qt.ite(~a_bit, d_bit) for a_bit, d_bit in zip(fa, fd)], self._zeros(), qt)
        return GateUpdate({"a": new_a, "b": new_b, "c": new_c, "d": new_d}, 0, over_d)

    def _apply_tdg(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by w**-1: (a, b, c, d) -> (-d, a, b, c).
        qt = self._qvar(gate.targets[0])
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        new_a, over_a = self._ripple_add(
            [qt.ite(~d_bit, a_bit) for a_bit, d_bit in zip(fa, fd)], self._zeros(), qt)
        new_b = [qt.ite(a_bit, b_bit) for b_bit, a_bit in zip(fb, fa)]
        new_c = [qt.ite(b_bit, c_bit) for c_bit, b_bit in zip(fc, fb)]
        new_d = [qt.ite(c_bit, d_bit) for d_bit, c_bit in zip(fd, fc)]
        return GateUpdate({"a": new_a, "b": new_b, "c": new_c, "d": new_d}, 0, over_a)

    def _apply_y(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = -i * old(q_t=1), new(q_t=1) = +i * old(q_t=0);
        # i * (a,b,c,d) = (c, d, -a, -b).
        target = gate.targets[0]
        qt = self._qvar(target)
        not_qt = ~qt
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        new: Dict[str, List[Bdd]] = {}
        overflowed = False
        # (source vector, negate-on-branch) per destination vector.
        plan = {
            "a": (fc, not_qt),  # a' = +c_other on q_t=1, -c_other on q_t=0
            "b": (fd, not_qt),
            "c": (fa, qt),      # c' = +a_other on q_t=0, -a_other on q_t=1
            "d": (fb, qt),
        }
        for name, (source, negate_when) in plan.items():
            swapped = [self._swap_on(bit, target) for bit in source]
            conditional = [negate_when.ite(~bit, bit) for bit in swapped]
            bits, over = self._ripple_add(conditional, self._zeros(), negate_when)
            new[name] = bits
            overflowed = overflowed or over
        return GateUpdate(new, 0, overflowed)

    # ------------------------------------------------------------------ #
    # superposing gates (symbolic adders, k increments)
    # ------------------------------------------------------------------ #
    def _apply_h(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = old(0) + old(1); new(q_t=1) = old(0) - old(1); k += 1.
        target = gate.targets[0]
        var = self.state.qubit_var(target)
        qt = self._qvar(target)
        new: Dict[str, List[Bdd]] = {}
        overflowed = False
        for name in VECTOR_NAMES:
            bits = self._bits(name)
            replicated_low = [bit.cofactor(var, False) for bit in bits]
            second = [qt.ite(~bit, bit.cofactor(var, True)) for bit in bits]
            summed, over = self._ripple_add(replicated_low, second, qt)
            new[name] = summed
            overflowed = overflowed or over
        return GateUpdate(new, 1, overflowed)

    def _apply_ry(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = old(0) - old(1); new(q_t=1) = old(0) + old(1); k += 1.
        target = gate.targets[0]
        var = self.state.qubit_var(target)
        qt = self._qvar(target)
        not_qt = ~qt
        new: Dict[str, List[Bdd]] = {}
        overflowed = False
        for name in VECTOR_NAMES:
            bits = self._bits(name)
            replicated_low = [bit.cofactor(var, False) for bit in bits]
            second = [qt.ite(bit, ~bit.cofactor(var, True)) for bit in bits]
            summed, over = self._ripple_add(replicated_low, second, not_qt)
            new[name] = summed
            overflowed = overflowed or over
        return GateUpdate(new, 1, overflowed)

    def _apply_rx(self, gate: Gate) -> GateUpdate:
        # new = old - i * old_swapped (per branch); k += 1.
        # Contributions: a' = a - c_swapped, b' = b - d_swapped,
        #                c' = c + a_swapped, d' = d + b_swapped.
        target = gate.targets[0]
        fa, fb, fc, fd = (self._bits(name) for name in VECTOR_NAMES)
        true = self.manager.true
        false = self.manager.false
        new: Dict[str, List[Bdd]] = {}
        overflowed = False
        plan = {
            "a": (fa, fc, True),
            "b": (fb, fd, True),
            "c": (fc, fa, False),
            "d": (fd, fb, False),
        }
        for name, (own, other, negate) in plan.items():
            swapped = [self._swap_on(bit, target) for bit in other]
            if negate:
                swapped = [~bit for bit in swapped]
                carry_in = true
            else:
                carry_in = false
            summed, over = self._ripple_add(own, swapped, carry_in)
            new[name] = summed
            overflowed = overflowed or over
        return GateUpdate(new, 1, overflowed)

"""Pre-characterised Boolean update formulas for every supported gate.

This module is the reproduction of the paper's Table II.  Each gate has a
handler that maps the current slice BDDs ``(Fa_i, Fb_i, Fc_i, Fd_i)`` to the
updated slices, expressed purely through cofactors, Boolean connectives and
symbolic ripple-carry adders — no matrix-vector multiplication ever happens.

Derivation conventions (matching the paper's worked H-gate example):

* Applying a gate to target ``t`` relates, for every setting of the other
  qubits, the new amplitudes at ``q_t = 0 / 1`` to the old amplitudes at
  ``q_t = 0 / 1``.
* Multiplication of an algebraic value by ``i = w**2`` permutes the integer
  coefficients ``(a, b, c, d) -> (c, d, -a, -b)``; by ``w`` (the T gate)
  ``(a, b, c, d) -> (b, c, d, -a)``; negation is two's-complement negation
  (bitwise complement plus an initial carry-in), which is where the
  ``Ca0 = q_t`` style carry seeds of Table II come from.
* H, Rx(pi/2) and Ry(pi/2) add amplitudes, so they run a full symbolic adder
  and increment the shared exponent ``k`` by one (their 1/sqrt(2) factor).

Hot-path design (this file issues every substrate operation of a gate):

* Handlers work on **raw node ids** and wrap the final slices in
  :class:`~repro.bdd.expr.Bdd` handles exactly once, so the inner loops
  allocate no handle objects and touch no reference counts.  This is safe
  because the substrate never garbage-collects inside an operation; the old
  slices stay anchored by the state's live handles until
  :meth:`~repro.core.bitslice.BitSlicedState.replace_slices` installs the new
  ones.
* Every per-slice sweep goes through a shared
  :class:`~repro.bdd.manager.BatchApplier`: one computed-table binding and
  one interner transaction per 4r-slice batch instead of per slice.
* The ripple-carry adders use the **fused kernels**
  :meth:`~repro.bdd.manager.BddManager.apply_xor3` /
  :meth:`~repro.bdd.manager.BddManager.apply_maj3` (sum and carry in one
  traversal each, two fused operations per bit instead of six binary
  applies), and all independent adders of a gate — the four vectors of H,
  the two of S — advance through their bit positions in lockstep so each
  position is a single batch.
* SWAP / CSWAP route through the fused
  :meth:`~repro.bdd.manager.BddManager.apply_swap_vars` cofactor kernel
  instead of the three-cofactor / five-connective formula.
* Multi-control cubes are memoised per sorted controls tuple, so repeated
  Toffoli / Fredkin gates on the same controls stop rebuilding the cube.
* **Reorder tolerance**: handlers address qubits exclusively by variable
  *index* (``state.qubit_var``), never by level, and the substrate's
  operations resolve levels at call time — so the variable order may change
  between gates (an in-place sift at a gate boundary, manual or triggered
  by ``auto_reorder_threshold``) without any handler noticing.  The control
  cube memo below is the one structure that holds node ids across gates;
  it is anchored in handles (reorder-safe) and dropped on every generation
  bump anyway.  Property tests pin this invariant.

The naive 2-operand composition formulas are kept (``_ripple_add``,
``_swap_two_vars``, ...) as the *reference path*: property tests assert the
fused kernels are node-for-node equivalent to them, and
``benchmarks/bench_gate_kernels.py`` measures the fusion speedup against
them.

Every handler returns a :class:`GateUpdate` carrying the new slices, the
``k`` increment and the symbolic overflow predicate of all additions
performed.  :class:`GateRuleEngine.apply` widens the state and retries when
the overflow predicate is satisfiable, reproducing the "allocate extra BDDs
on overflow" behaviour of the original implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bdd import BatchApplier, Bdd, BddManager
from repro.bdd.manager import FALSE, TRUE
from repro.circuit.gates import Gate, GateKind
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState
from repro.exceptions import UnsupportedGateError
from repro.perf import PerfCounters

#: Node-id lists per vector name — the internal currency of the handlers.
NodeSlices = Dict[str, List[int]]


@dataclass(slots=True)
class GateUpdate:
    """Result of characterising one gate application at the current width."""

    #: New slice BDDs per vector name, least-significant bit first.
    slices: Dict[str, List[Bdd]]
    #: Increment of the shared exponent ``k`` (0 or 1).
    delta_k: int
    #: True when some addition overflowed the current two's-complement width
    #: and the state must be widened before retrying.
    overflowed: bool


class GateRuleEngine:
    """Applies Table II update rules to a :class:`BitSlicedState`."""

    def __init__(self, state: BitSlicedState):
        self.state = state
        self.manager: BddManager = state.manager
        #: Shared batch front end: one computed-table binding per slice sweep.
        self.batch: BatchApplier = self.manager.batcher()
        #: Per-gate-kind substrate counters (cache hits / misses, unique-table
        #: traffic, GC activity, elapsed seconds, application count).  Fed by
        #: :meth:`apply` from cheap raw-counter snapshots — two tuple reads
        #: per gate, no keyed-dict construction on the hot path.
        self.perf_by_gate: Dict[str, PerfCounters] = {}
        # Memoised control cubes per sorted controls tuple.  The Bdd handles
        # anchor the cubes across garbage collections; the cache is dropped
        # whenever the manager's generation moves (GC or reorder) because a
        # reorder invalidates the stored node ids.
        self._control_cubes: Dict[Tuple[int, ...], Bdd] = {}
        self._control_cube_generation = self.manager.cache_generation
        # Bound once: rebuilding this dispatch table per gate would put 15
        # bound-method allocations back on the per-gate hot path.
        self._handlers: Dict[GateKind, Callable[[Gate], GateUpdate]] = {
            GateKind.X: self._apply_x,
            GateKind.Y: self._apply_y,
            GateKind.Z: self._apply_z,
            GateKind.H: self._apply_h,
            GateKind.S: self._apply_s,
            GateKind.SDG: self._apply_sdg,
            GateKind.T: self._apply_t,
            GateKind.TDG: self._apply_tdg,
            GateKind.RX_PI_2: self._apply_rx,
            GateKind.RY_PI_2: self._apply_ry,
            GateKind.CX: self._apply_cx,
            GateKind.CZ: self._apply_cz,
            GateKind.CCX: self._apply_ccx,
            GateKind.CSWAP: self._apply_cswap,
            GateKind.SWAP: self._apply_swap_gate,
        }

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def apply(self, gate: Gate, max_widen_retries: int = 64) -> None:
        """Apply ``gate`` in place, widening the integer representation as
        needed when two's-complement overflow is detected."""
        handler = self._handler_for(gate.kind)
        before = self.manager.raw_perf_counters()
        started = time.perf_counter()
        for _ in range(max_widen_retries):
            update = handler(gate)
            if not update.overflowed:
                self.state.replace_slices(update.slices, update.delta_k)
                break
            self.state.widen(1)
        else:
            raise RuntimeError(
                f"gate {gate.kind.value} kept overflowing after "
                f"{max_widen_retries} widening attempts")
        elapsed = time.perf_counter() - started
        self._record_raw(gate.kind.value, before,
                         self.manager.raw_perf_counters(), elapsed)

    _RAW_KEYS = ("cache_hits", "cache_misses", "unique_probes",
                 "unique_inserts", "gc_runs", "gc_pause_seconds")

    def _record_raw(self, kind: str, before, after, elapsed: float) -> None:
        bag = self.perf_by_gate.get(kind)
        if bag is None:
            bag = self.perf_by_gate[kind] = PerfCounters()
        bag.add("applications", 1)
        bag.add("elapsed_seconds", elapsed)
        for key, before_value, after_value in zip(self._RAW_KEYS, before, after):
            bag.add(key, after_value - before_value)

    def perf_summary(self) -> Dict[str, Dict[str, float]]:
        """Accumulated substrate counters per gate kind, with cache hit
        rates recomputed over each kind's total hits / misses."""
        summary: Dict[str, Dict[str, float]] = {}
        for kind, bag in self.perf_by_gate.items():
            stats = bag.snapshot()
            lookups = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
            stats["cache_hit_rate"] = (stats.get("cache_hits", 0) / lookups
                                       if lookups else 0.0)
            summary[kind] = stats
        return summary

    def _handler_for(self, kind: GateKind) -> Callable[[Gate], GateUpdate]:
        handler = self._handlers.get(kind)
        if handler is None:
            raise UnsupportedGateError(f"gate kind {kind.value} is not supported")
        return handler

    # ------------------------------------------------------------------ #
    # node-level building blocks (the batched hot path)
    # ------------------------------------------------------------------ #
    def _qvar_node(self, qubit: int) -> int:
        """Raw node id of the qubit's positive literal (no handle churn)."""
        return self.manager.var_node(self.state.qubit_var(qubit))

    def _node_bits(self, name: str) -> List[int]:
        """Node ids of one vector's slices, least-significant bit first."""
        return [bit.node for bit in self.state.slices[name]]

    def _all_node_bits(self) -> List[int]:
        """All 4r slice node ids, flat, in ``VECTOR_NAMES`` order."""
        slices = self.state.slices
        return [bit.node for name in VECTOR_NAMES for bit in slices[name]]

    def _unflatten(self, flat: Sequence[int]) -> NodeSlices:
        """Split a flat 4r node-id list back into the four vectors."""
        r = self.state.r
        return {name: list(flat[index * r:(index + 1) * r])
                for index, name in enumerate(VECTOR_NAMES)}

    def _update(self, nodes: NodeSlices, delta_k: int, overflowed: bool) -> GateUpdate:
        """Wrap the handler's raw node ids into handles exactly once."""
        manager = self.manager
        slices = {name: [Bdd(manager, node) for node in nodes[name]]
                  for name in VECTOR_NAMES}
        return GateUpdate(slices, delta_k, overflowed)

    def _swap_on_many(self, nodes: Sequence[int], qubit: int) -> List[int]:
        """X-gate action on every node: the value at ``q = b`` becomes the
        old value at ``q = not b`` (both cofactor sweeps and the recombining
        ITE sweep run as single batches)."""
        var = self.state.qubit_var(qubit)
        qt = self._qvar_node(qubit)
        batch = self.batch
        low = batch.restrict_many(nodes, var, False)
        high = batch.restrict_many(nodes, var, True)
        return batch.ite_many([(qt, lo, hi) for lo, hi in zip(low, high)])

    def _control_conjunction(self, controls: Sequence[int]) -> Bdd:
        """Conjunction of the positive control literals, memoised per sorted
        controls tuple so repeated multi-controlled gates reuse the cube."""
        key = tuple(sorted(controls))
        manager = self.manager
        if manager.cache_generation != self._control_cube_generation:
            self._control_cubes.clear()
            self._control_cube_generation = manager.cache_generation
        cube = self._control_cubes.get(key)
        if cube is None:
            node = TRUE
            for control in key:
                node = manager.apply_and(node, self._qvar_node(control))
            cube = Bdd(manager, node)
            self._control_cubes[key] = cube
        return cube

    def _ripple_add_many(self, adders: Sequence[Tuple[Sequence[int], Sequence[int], int]],
                         ) -> Tuple[List[List[int]], bool]:
        """Run several equal-width symbolic two's-complement adders in
        lockstep.

        ``adders`` is a list of ``(addend_a, addend_b, carry_in)`` with
        node-id bit lists.  Each bit position is one fused-sum batch
        (:meth:`~repro.bdd.manager.BddManager.apply_xor3`) plus one
        fused-carry batch (:meth:`~repro.bdd.manager.BddManager.apply_maj3`)
        across all adders, so an H gate's four vector additions cost two
        batched kernel sweeps per position instead of ~6 binary applies per
        vector per position.

        Returns ``(sum_bit_lists, overflowed)`` where ``overflowed`` is True
        when, for at least one adder and one basis state, the signed result
        does not fit the current width (satisfiability of carry-out xor
        carry-into-sign, the standard two's-complement overflow condition).
        """
        width = len(adders[0][0])
        for addend_a, addend_b, _ in adders:
            if len(addend_a) != width or len(addend_b) != width:
                raise ValueError("adder operands must have the same width")
        batch = self.batch
        carries = [carry_in for _, _, carry_in in adders]
        carry_into_sign = list(carries)
        sums: List[List[int]] = [[] for _ in adders]
        for position in range(width):
            if position == width - 1:
                carry_into_sign = list(carries)
            triples = [(addend_a[position], addend_b[position], carries[index])
                       for index, (addend_a, addend_b, _) in enumerate(adders)]
            sum_bits = batch.xor3_many(triples)
            carries = batch.maj3_many(triples)
            for index, sum_bit in enumerate(sum_bits):
                sums[index].append(sum_bit)
        overflow = batch.xor_many(list(zip(carries, carry_into_sign)))
        return sums, any(node != FALSE for node in overflow)

    # ------------------------------------------------------------------ #
    # reference composition path (kept for equivalence tests / benchmarks)
    # ------------------------------------------------------------------ #
    def _qvar(self, qubit: int) -> Bdd:
        return self.manager.var(self.state.qubit_var(qubit))

    def _bits(self, name: str) -> List[Bdd]:
        return list(self.state.slices[name])

    def _zeros(self) -> List[Bdd]:
        false = self.manager.false
        return [false for _ in range(self.state.r)]

    def _swap_on(self, function: Bdd, qubit: int) -> Bdd:
        """Reference form of :meth:`_swap_on_many` for a single function."""
        var = self.state.qubit_var(qubit)
        q = self._qvar(qubit)
        return q.ite(function.cofactor(var, False), function.cofactor(var, True))

    def _swap_two_vars(self, function: Bdd, qubit_a: int, qubit_b: int) -> Bdd:
        """Reference (pre-fusion) SWAP action: three full-function cofactor
        traversals recombined through five Boolean connectives.  The hot
        path uses :meth:`~repro.bdd.manager.BddManager.apply_swap_vars`."""
        var_a = self.state.qubit_var(qubit_a)
        var_b = self.state.qubit_var(qubit_b)
        qa, qb = self._qvar(qubit_a), self._qvar(qubit_b)
        f_01 = function.cofactor(var_a, False).cofactor(var_b, True)
        f_10 = function.cofactor(var_a, True).cofactor(var_b, False)
        same = qa.equiv(qb)
        return (same & function) | (qa & ~qb & f_01) | (~qa & qb & f_10)

    @staticmethod
    def _carry(a: Bdd, b: Bdd, c: Bdd) -> Bdd:
        """Car(A, B, C) = AB + (A + B)C  (paper's carry formula)."""
        return (a & b) | ((a | b) & c)

    @staticmethod
    def _sum(a: Bdd, b: Bdd, c: Bdd) -> Bdd:
        """Sum(A, B, C) = A xor B xor C  (paper's sum formula)."""
        return a ^ b ^ c

    def _ripple_add(self, addend_a: Sequence[Bdd], addend_b: Sequence[Bdd],
                    carry_in: Bdd) -> Tuple[List[Bdd], bool]:
        """Reference (pre-fusion) symbolic adder: one sum and one carry per
        position via chained 2-operand applies.  The hot path is
        :meth:`_ripple_add_many`; property tests assert the two agree
        node-for-node."""
        if len(addend_a) != len(addend_b):
            raise ValueError("adder operands must have the same width")
        carry = carry_in
        sums: List[Bdd] = []
        carry_into_sign = carry_in
        for position, (bit_a, bit_b) in enumerate(zip(addend_a, addend_b)):
            if position == len(addend_a) - 1:
                carry_into_sign = carry
            sums.append(self._sum(bit_a, bit_b, carry))
            carry = self._carry(bit_a, bit_b, carry)
        overflow = carry ^ carry_into_sign
        return sums, not overflow.is_false()

    def _conditional_negate_add(self, bits: Sequence[Bdd], condition: Bdd) -> Tuple[List[Bdd], bool]:
        """Reference form: two's-complement negate the integer wherever
        ``condition`` holds (``G_i = cond' F_i + cond (not F_i)`` with carry
        seed ``Ca0 = cond``: the bitwise complement plus one)."""
        complemented = [condition.ite(~bit, bit) for bit in bits]
        return self._ripple_add(complemented, self._zeros(), condition)

    # ------------------------------------------------------------------ #
    # permutation-only gates (no adder, no overflow)
    # ------------------------------------------------------------------ #
    def _apply_x(self, gate: Gate) -> GateUpdate:
        target = gate.targets[0]
        new_flat = self._swap_on_many(self._all_node_bits(), target)
        return self._update(self._unflatten(new_flat), 0, False)

    def _apply_cx(self, gate: Gate) -> GateUpdate:
        control, target = gate.controls[0], gate.targets[0]
        qc = self._qvar_node(control)
        flat = self._all_node_bits()
        swapped = self._swap_on_many(flat, target)
        new_flat = self.batch.ite_many(
            [(qc, sw, old) for sw, old in zip(swapped, flat)])
        return self._update(self._unflatten(new_flat), 0, False)

    def _apply_ccx(self, gate: Gate) -> GateUpdate:
        target = gate.targets[0]
        condition = self._control_conjunction(gate.controls).node
        flat = self._all_node_bits()
        swapped = self._swap_on_many(flat, target)
        new_flat = self.batch.ite_many(
            [(condition, sw, old) for sw, old in zip(swapped, flat)])
        return self._update(self._unflatten(new_flat), 0, False)

    def _apply_swap_gate(self, gate: Gate) -> GateUpdate:
        qubit_a, qubit_b = gate.targets
        var_a = self.state.qubit_var(qubit_a)
        var_b = self.state.qubit_var(qubit_b)
        new_flat = self.batch.swap_vars_many(self._all_node_bits(), var_a, var_b)
        return self._update(self._unflatten(new_flat), 0, False)

    def _apply_cswap(self, gate: Gate) -> GateUpdate:
        qubit_a, qubit_b = gate.targets
        var_a = self.state.qubit_var(qubit_a)
        var_b = self.state.qubit_var(qubit_b)
        condition = self._control_conjunction(gate.controls).node
        flat = self._all_node_bits()
        swapped = self.batch.swap_vars_many(flat, var_a, var_b)
        new_flat = self.batch.ite_many(
            [(condition, sw, old) for sw, old in zip(swapped, flat)])
        return self._update(self._unflatten(new_flat), 0, False)

    # ------------------------------------------------------------------ #
    # phase gates (conditional coefficient permutation / negation)
    # ------------------------------------------------------------------ #
    def _apply_z(self, gate: Gate) -> GateUpdate:
        condition = self._qvar_node(gate.targets[0])
        return self._conditional_negate_all(condition)

    def _apply_cz(self, gate: Gate) -> GateUpdate:
        condition = self.manager.apply_and(self._qvar_node(gate.controls[0]),
                                           self._qvar_node(gate.targets[0]))
        return self._conditional_negate_all(condition)

    def _conditional_negate_all(self, condition: int) -> GateUpdate:
        batch = self.batch
        flat = self._all_node_bits()
        nots = batch.not_many(flat)
        complemented = batch.ite_many(
            [(condition, nb, old) for nb, old in zip(nots, flat)])
        per_vector = self._unflatten(complemented)
        zeros = [FALSE] * self.state.r
        sums, overflowed = self._ripple_add_many(
            [(per_vector[name], zeros, condition) for name in VECTOR_NAMES])
        return self._update(dict(zip(VECTOR_NAMES, sums)), 0, overflowed)

    def _apply_s(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by i: (a, b, c, d) -> (c, d, -a, -b).
        qt = self._qvar_node(gate.targets[0])
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        nots = batch.not_many(fa + fb)
        r = self.state.r
        not_a, not_b = nots[:r], nots[r:]
        mixed = batch.ite_many(
            [(qt, c, a) for a, c in zip(fa, fc)]
            + [(qt, d, b) for b, d in zip(fb, fd)]
            + [(qt, na, c) for na, c in zip(not_a, fc)]
            + [(qt, nb, d) for nb, d in zip(not_b, fd)])
        new_a, new_b = mixed[:r], mixed[r:2 * r]
        pre_c, pre_d = mixed[2 * r:3 * r], mixed[3 * r:]
        zeros = [FALSE] * r
        (new_c, new_d), overflowed = self._ripple_add_many(
            [(pre_c, zeros, qt), (pre_d, zeros, qt)])
        return self._update({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                            0, overflowed)

    def _apply_sdg(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by -i: (a, b, c, d) -> (-c, -d, a, b).
        qt = self._qvar_node(gate.targets[0])
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        nots = batch.not_many(fc + fd)
        r = self.state.r
        not_c, not_d = nots[:r], nots[r:]
        mixed = batch.ite_many(
            [(qt, nc, a) for nc, a in zip(not_c, fa)]
            + [(qt, nd, b) for nd, b in zip(not_d, fb)]
            + [(qt, a, c) for c, a in zip(fc, fa)]
            + [(qt, b, d) for d, b in zip(fd, fb)])
        pre_a, pre_b = mixed[:r], mixed[r:2 * r]
        new_c, new_d = mixed[2 * r:3 * r], mixed[3 * r:]
        zeros = [FALSE] * r
        (new_a, new_b), overflowed = self._ripple_add_many(
            [(pre_a, zeros, qt), (pre_b, zeros, qt)])
        return self._update({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                            0, overflowed)

    def _apply_t(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by w: (a, b, c, d) -> (b, c, d, -a).
        qt = self._qvar_node(gate.targets[0])
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        not_a = batch.not_many(fa)
        r = self.state.r
        mixed = batch.ite_many(
            [(qt, b, a) for a, b in zip(fa, fb)]
            + [(qt, c, b) for b, c in zip(fb, fc)]
            + [(qt, d, c) for c, d in zip(fc, fd)]
            + [(qt, na, d) for na, d in zip(not_a, fd)])
        new_a, new_b = mixed[:r], mixed[r:2 * r]
        new_c, pre_d = mixed[2 * r:3 * r], mixed[3 * r:]
        zeros = [FALSE] * r
        (new_d,), overflowed = self._ripple_add_many([(pre_d, zeros, qt)])
        return self._update({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                            0, overflowed)

    def _apply_tdg(self, gate: Gate) -> GateUpdate:
        # On q_t = 1 multiply by w**-1: (a, b, c, d) -> (-d, a, b, c).
        qt = self._qvar_node(gate.targets[0])
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        not_d = batch.not_many(fd)
        r = self.state.r
        mixed = batch.ite_many(
            [(qt, nd, a) for nd, a in zip(not_d, fa)]
            + [(qt, a, b) for b, a in zip(fb, fa)]
            + [(qt, b, c) for c, b in zip(fc, fb)]
            + [(qt, c, d) for d, c in zip(fd, fc)])
        pre_a, new_b = mixed[:r], mixed[r:2 * r]
        new_c, new_d = mixed[2 * r:3 * r], mixed[3 * r:]
        zeros = [FALSE] * r
        (new_a,), overflowed = self._ripple_add_many([(pre_a, zeros, qt)])
        return self._update({"a": new_a, "b": new_b, "c": new_c, "d": new_d},
                            0, overflowed)

    def _apply_y(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = -i * old(q_t=1), new(q_t=1) = +i * old(q_t=0);
        # i * (a,b,c,d) = (c, d, -a, -b).
        target = gate.targets[0]
        qt = self._qvar_node(target)
        not_qt = self.manager.apply_not(qt)
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        r = self.state.r
        # (source vector, negate-on-branch) per destination vector, in
        # VECTOR_NAMES order: a' <- c, b' <- d (negate on q_t=0);
        # c' <- a, d' <- b (negate on q_t=1).
        sources = fc + fd + fa + fb
        negate_when = [not_qt] * (2 * r) + [qt] * (2 * r)
        swapped = self._swap_on_many(sources, target)
        nots = batch.not_many(swapped)
        conditional = batch.ite_many(
            [(cond, nb, sb) for cond, nb, sb in zip(negate_when, nots, swapped)])
        per_vector = self._unflatten(conditional)
        zeros = [FALSE] * r
        carries = {"a": not_qt, "b": not_qt, "c": qt, "d": qt}
        sums, overflowed = self._ripple_add_many(
            [(per_vector[name], zeros, carries[name]) for name in VECTOR_NAMES])
        return self._update(dict(zip(VECTOR_NAMES, sums)), 0, overflowed)

    # ------------------------------------------------------------------ #
    # superposing gates (symbolic adders, k increments)
    # ------------------------------------------------------------------ #
    def _apply_h(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = old(0) + old(1); new(q_t=1) = old(0) - old(1); k += 1.
        target = gate.targets[0]
        var = self.state.qubit_var(target)
        qt = self._qvar_node(target)
        batch = self.batch
        flat = self._all_node_bits()
        low = batch.restrict_many(flat, var, False)
        high = batch.restrict_many(flat, var, True)
        nots = batch.not_many(flat)
        second = batch.ite_many(
            [(qt, nb, hi) for nb, hi in zip(nots, high)])
        r = self.state.r
        adders = [(low[index * r:(index + 1) * r],
                   second[index * r:(index + 1) * r], qt)
                  for index in range(len(VECTOR_NAMES))]
        sums, overflowed = self._ripple_add_many(adders)
        return self._update(dict(zip(VECTOR_NAMES, sums)), 1, overflowed)

    def _apply_ry(self, gate: Gate) -> GateUpdate:
        # new(q_t=0) = old(0) - old(1); new(q_t=1) = old(0) + old(1); k += 1.
        target = gate.targets[0]
        var = self.state.qubit_var(target)
        qt = self._qvar_node(target)
        not_qt = self.manager.apply_not(qt)
        batch = self.batch
        flat = self._all_node_bits()
        low = batch.restrict_many(flat, var, False)
        high = batch.restrict_many(flat, var, True)
        not_high = batch.not_many(high)
        second = batch.ite_many(
            [(qt, old, nh) for old, nh in zip(flat, not_high)])
        r = self.state.r
        adders = [(low[index * r:(index + 1) * r],
                   second[index * r:(index + 1) * r], not_qt)
                  for index in range(len(VECTOR_NAMES))]
        sums, overflowed = self._ripple_add_many(adders)
        return self._update(dict(zip(VECTOR_NAMES, sums)), 1, overflowed)

    def _apply_rx(self, gate: Gate) -> GateUpdate:
        # new = old - i * old_swapped (per branch); k += 1.
        # Contributions: a' = a - c_swapped, b' = b - d_swapped,
        #                c' = c + a_swapped, d' = d + b_swapped.
        target = gate.targets[0]
        batch = self.batch
        fa, fb, fc, fd = (self._node_bits(name) for name in VECTOR_NAMES)
        r = self.state.r
        # "other" operand per destination vector, in VECTOR_NAMES order.
        others = fc + fd + fa + fb
        swapped = self._swap_on_many(others, target)
        negated = batch.not_many(swapped[:2 * r])
        second = negated + swapped[2 * r:]
        adders = [(fa, second[:r], TRUE),
                  (fb, second[r:2 * r], TRUE),
                  (fc, second[2 * r:3 * r], FALSE),
                  (fd, second[3 * r:], FALSE)]
        sums, overflowed = self._ripple_add_many(adders)
        return self._update(dict(zip(VECTOR_NAMES, sums)), 1, overflowed)

"""Measurement and probability calculation (paper Section III-E).

The bit-sliced representation spreads one state over ``4*r`` BDDs, so unlike
the QMDD approach there is no single diagram to traverse.  Following the
paper, the 4r slice BDDs are first combined into one *monolithic
hyper-function BDD* (Eq. 12) using fresh encoding variables placed **below**
all qubit variables:

* two selector variables ``x0 x1`` choose among the four vectors
  ``a, b, c, d``;
* ``ceil(log2 r)`` selector variables choose the bit index inside a vector.

For a fixed assignment of the qubit variables the residual function over the
encoding variables is exactly the bit pattern of the four integers of that
basis state, so the amplitude can be decoded by evaluating the residual on
the ``r`` encodings of each vector.

Probability accumulation walks the top ``n`` (qubit) levels of the monolithic
BDD once, memoising per node, and decodes amplitudes only at the boundary
nodes — the direct analogue of the QMDD traversal the paper compares against.
All accumulation is exact: a probability is kept as an integer pair
``(x, y)`` meaning ``(x + y*sqrt(2)) / 2**k`` until the final conversion to
float (this substitutes for the MPFR high-precision floats of the original
implementation and is at least as accurate).

Collapse follows Eq. 13: amplitudes inconsistent with the observed outcome
are zeroed in every slice BDD and the floating-point factor ``s`` of the
state absorbs the ``1/sqrt(p)`` renormalisation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd import Bdd
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState

try:  # pragma: no cover - numpy is a hard dependency, guard is cosmetic
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Square root of two, used only in the final exact-to-float conversion.
_SQRT2 = math.sqrt(2.0)


class ExactProbability:
    """An exact non-negative number of the form ``(x + y*sqrt(2)) / 2**k``.

    Instances are produced by summing squared amplitude magnitudes; the
    integer pair is exact, only :meth:`to_float` rounds.
    """

    __slots__ = ("x", "y", "k")

    def __init__(self, x: int = 0, y: int = 0, k: int = 0):
        self.x = x
        self.y = y
        self.k = k

    def add_numerator(self, x: int, y: int) -> None:
        """Add ``x + y*sqrt(2)`` to the numerator (same ``2**k`` scale)."""
        self.x += x
        self.y += y

    def scaled(self, factor: int) -> "ExactProbability":
        """A copy with the numerator multiplied by an integer factor."""
        return ExactProbability(self.x * factor, self.y * factor, self.k)

    def to_float(self, extra_scale: float = 1.0) -> float:
        """Convert to float, optionally multiplying by ``extra_scale``
        (used for the measurement normalisation ``s**2``)."""
        return (self.x + self.y * _SQRT2) / (2.0 ** self.k) * extra_scale

    def is_zero(self) -> bool:
        """True when the exact value is zero."""
        return self.x == 0 and self.y == 0

    def __repr__(self) -> str:
        return f"ExactProbability(({self.x} + {self.y}*sqrt2)/2^{self.k})"


class MeasurementEngine:
    """Monolithic-BDD measurement and probability queries for one state.

    The engine snapshots nothing: every public query rebuilds the
    hyper-function from the state's current slices, so it can be used before
    and after gate applications and collapses alike.  Construction is cheap
    relative to the probability recursion it feeds.
    """

    def __init__(self, state: BitSlicedState):
        self.state = state
        self.manager = state.manager

    # ------------------------------------------------------------------ #
    # hyper-function construction (paper Eq. 12)
    # ------------------------------------------------------------------ #
    def _encoding_vars(self, num_bit_selectors: int) -> Tuple[List[int], List[int]]:
        """Return (vector-selector vars, bit-selector vars), creating fresh
        manager variables below the qubit variables when necessary."""
        needed = 2 + num_bit_selectors
        existing = self.manager.num_vars - self.state.num_qubits
        for _ in range(max(0, needed - existing)):
            self.manager.new_var()
        base = self.state.num_qubits
        vector_vars = [base, base + 1]
        bit_vars = [base + 2 + i for i in range(num_bit_selectors)]
        return vector_vars, bit_vars

    def _bit_selector_count(self) -> int:
        r = self.state.r
        return max(1, (r - 1).bit_length())

    def build_hyperfunction(self) -> Bdd:
        """Combine the 4r slice BDDs into the monolithic BDD ``F`` of Eq. 12."""
        num_bit_selectors = self._bit_selector_count()
        vector_vars, bit_vars = self._encoding_vars(num_bit_selectors)
        manager = self.manager

        def bit_minterm(index: int) -> Bdd:
            cube = manager.true
            for position, var in enumerate(bit_vars):
                bit = (index >> (len(bit_vars) - 1 - position)) & 1
                cube = cube & manager.literal(var, bool(bit))
            return cube

        def vector_minterm(selector: int) -> Bdd:
            high = manager.literal(vector_vars[0], bool(selector >> 1))
            low = manager.literal(vector_vars[1], bool(selector & 1))
            return high & low

        combined = manager.false
        for selector, name in enumerate(VECTOR_NAMES):
            per_vector = manager.false
            for index, slice_bdd in enumerate(self.state.slices[name]):
                if slice_bdd.is_false():
                    continue
                per_vector = per_vector | (bit_minterm(index) & slice_bdd)
            combined = combined | (vector_minterm(selector) & per_vector)
        return combined

    # ------------------------------------------------------------------ #
    # amplitude decoding at boundary nodes
    # ------------------------------------------------------------------ #
    def _decode_boundary(self, node: int) -> Tuple[int, int, int, int]:
        """Decode the four two's-complement integers encoded by the residual
        function rooted at ``node`` (a node at or below the encoding levels)."""
        manager = self.manager
        num_bit_selectors = self._bit_selector_count()
        vector_vars, bit_vars = self._encoding_vars(num_bit_selectors)
        r = self.state.r
        values = []
        for selector in range(4):
            assignment = {
                vector_vars[0]: bool(selector >> 1),
                vector_vars[1]: bool(selector & 1),
            }
            value = 0
            for index in range(r):
                for position, var in enumerate(bit_vars):
                    assignment[var] = bool((index >> (len(bit_vars) - 1 - position)) & 1)
                current = node
                while not manager.is_terminal(current):
                    var = manager.node_var(current)
                    current = (manager.node_high(current)
                               if assignment.get(var, False)
                               else manager.node_low(current))
                if current == 1:
                    value |= 1 << index
            sign_weight = 1 << (r - 1)
            if value & sign_weight:
                value -= sign_weight << 1
            values.append(value)
        return tuple(values)  # type: ignore[return-value]

    def _boundary_numerator(self, node: int) -> Tuple[int, int]:
        """Exact ``|alpha|**2`` numerator ``(x, y)`` (over ``2**k``) of the
        amplitude encoded at a boundary node."""
        a, b, c, d = self._decode_boundary(node)
        x = a * a + b * b + c * c + d * d
        y = a * b + b * c + c * d - a * d
        return x, y

    # ------------------------------------------------------------------ #
    # probability recursion over the qubit levels
    # ------------------------------------------------------------------ #
    def _accumulate(self, root: Bdd) -> ExactProbability:
        """Total ``sum |alpha_i|**2`` (exact, before the ``s**2`` factor) of
        the sub-state encoded by ``root``."""
        manager = self.manager
        num_qubits = self.state.num_qubits
        boundary_cache: Dict[int, Tuple[int, int]] = {}
        level_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}

        def node_level(node: int) -> int:
            if manager.is_terminal(node):
                return num_qubits
            level = manager.level_of(manager.node_var(node))
            return min(level, num_qubits)

        def boundary(node: int) -> Tuple[int, int]:
            if node == 0:  # constant false: all bits zero, amplitude zero
                return (0, 0)
            cached = boundary_cache.get(node)
            if cached is None:
                cached = self._boundary_numerator(node)
                boundary_cache[node] = cached
            return cached

        def recurse(node: int, level: int) -> Tuple[int, int]:
            if level >= num_qubits:
                return boundary(node)
            key = (node, level)
            cached = level_cache.get(key)
            if cached is not None:
                return cached
            own_level = node_level(node)
            if own_level > level:
                # The qubit at this level does not constrain the node: both
                # branches contribute identically.
                x, y = recurse(node, own_level if own_level < num_qubits else num_qubits)
                shift = min(own_level, num_qubits) - level
                result = (x << shift, y << shift)
            else:
                low_x, low_y = recurse(manager.node_low(node), level + 1)
                high_x, high_y = recurse(manager.node_high(node), level + 1)
                result = (low_x + high_x, low_y + high_y)
            level_cache[key] = result
            return result

        x, y = recurse(root.node, 0)
        return ExactProbability(x, y, self.state.k)

    # ------------------------------------------------------------------ #
    # public probability queries
    # ------------------------------------------------------------------ #
    def total_probability(self) -> float:
        """Sum of all outcome probabilities (1.0 for a healthy state)."""
        exact = self._accumulate(self.build_hyperfunction())
        return exact.to_float(self.state.s ** 2)

    def probability_of_qubit_exact(self, qubit: int, value: int = 0) -> ExactProbability:
        """``Pr[qubit == value]`` as an exact :class:`ExactProbability`
        ``(x + y*sqrt(2)) / 2**k`` (before the measurement factor ``s**2``),
        without collapsing.  Feeding this into
        :meth:`~repro.core.bitslice.BitSlicedState.project_qubit` enables the
        exact omega-algebra renormalisation on power-of-two outcomes."""
        literal = self.manager.literal(self.state.qubit_var(qubit), bool(value))
        restricted = self.build_hyperfunction() & literal
        return self._accumulate(restricted)

    def probability_of_qubit(self, qubit: int, value: int = 0) -> float:
        """``Pr[qubit == value]`` without collapsing."""
        exact = self.probability_of_qubit_exact(qubit, value)
        return exact.to_float(self.state.s ** 2)

    def probability_of_outcome(self, qubits: Sequence[int], outcome: Sequence[int]) -> float:
        """Probability of jointly observing ``outcome`` on ``qubits``.

        This is the paper's preferred "measure all interesting qubits at
        once" query, which avoids intermediate renormalisation entirely.
        """
        if len(qubits) != len(outcome):
            raise ValueError("qubits and outcome must have the same length")
        cube = self.manager.true
        for qubit, value in zip(qubits, outcome):
            cube = cube & self.manager.literal(self.state.qubit_var(qubit), bool(value))
        restricted = self.build_hyperfunction() & cube
        exact = self._accumulate(restricted)
        return exact.to_float(self.state.s ** 2)

    def measurement_distribution(self, qubits: Optional[Sequence[int]] = None,
                                 cutoff: float = 1e-15) -> Dict[int, float]:
        """Joint distribution over ``qubits`` (default all), as a dict mapping
        outcome integers (first listed qubit = most significant bit) to
        probabilities above ``cutoff``."""
        if qubits is None:
            qubits = list(range(self.state.num_qubits))
        qubits = list(qubits)
        hyper = self.build_hyperfunction()
        scale = self.state.s ** 2
        distribution: Dict[int, float] = {}

        def descend(position: int, restricted: Bdd, outcome: int) -> None:
            exact = self._accumulate(restricted)
            probability = exact.to_float(scale)
            if probability <= cutoff:
                return
            if position == len(qubits):
                distribution[outcome] = probability
                return
            var = self.state.qubit_var(qubits[position])
            descend(position + 1, restricted & self.manager.nvar(var), outcome << 1)
            descend(position + 1, restricted & self.manager.var(var), (outcome << 1) | 1)

        descend(0, hyper, 0)
        return distribution

    # ------------------------------------------------------------------ #
    # measurement with collapse, and sampling
    # ------------------------------------------------------------------ #
    def measure_qubit(self, qubit: int, rng=None,
                      forced_outcome: Optional[int] = None) -> int:
        """Measure one qubit, collapse the state, and return the outcome.

        The collapse renormalises exactly in the omega-algebra whenever the
        outcome probability is an exact power of two (see
        :meth:`~repro.core.bitslice.BitSlicedState.project_qubit`); only
        irrational probabilities fall back to the floating-point factor
        ``s``.
        """
        exact_zero = self.probability_of_qubit_exact(qubit, 0)
        probability_zero = exact_zero.to_float(self.state.s ** 2)
        if forced_outcome is None:
            if rng is None:
                rng = np.random.default_rng() if np is not None else None
            draw = rng.random() if rng is not None else 0.5
            outcome = 0 if draw < probability_zero else 1
        else:
            outcome = int(forced_outcome)
        if outcome == 0:
            exact = exact_zero
            probability = probability_zero
        else:
            # With s == 1 the state is exactly normalised (only collapses
            # perturb the norm, and exact collapses preserve it), so the
            # outcome-1 numerator is the complement of the outcome-0 one at
            # the same 2**k scale — no second hyper-function build.  With
            # s != 1 the exact path is unused anyway (see project_qubit).
            exact = (ExactProbability((1 << self.state.k) - exact_zero.x,
                                      -exact_zero.y, self.state.k)
                     if self.state.s == 1.0 else None)
            probability = 1.0 - probability_zero
        self.state.project_qubit(qubit, outcome, probability, exact=exact)
        return outcome

    def measure_qubits(self, qubits: Sequence[int], rng=None,
                       forced_outcomes: Optional[Sequence[int]] = None) -> List[int]:
        """Measure several qubits sequentially (collapsing after each)."""
        outcomes: List[int] = []
        for position, qubit in enumerate(qubits):
            forced = None if forced_outcomes is None else forced_outcomes[position]
            outcomes.append(self.measure_qubit(qubit, rng=rng, forced_outcome=forced))
        return outcomes

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None,
               rng=None) -> Dict[int, int]:
        """Sample measurement outcomes without collapsing the state."""
        if qubits is None:
            qubits = list(range(self.state.num_qubits))
        qubits = list(qubits)
        if rng is None:
            rng = np.random.default_rng()
        counts: Dict[int, int] = {}
        if len(qubits) <= 16:
            distribution = self.measurement_distribution(qubits)
            outcomes = sorted(distribution)
            weights = [distribution[o] for o in outcomes]
            total = sum(weights)
            weights = [w / total for w in weights]
            draws = rng.choice(len(outcomes), size=shots, p=weights)
            for draw in draws:
                outcome = outcomes[int(draw)]
                counts[outcome] = counts.get(outcome, 0) + 1
            return counts
        hyper = self.build_hyperfunction()
        scale = self.state.s ** 2
        for _ in range(shots):
            outcome = 0
            restricted = hyper
            remaining = self._accumulate(restricted).to_float(scale)
            for qubit in qubits:
                var = self.state.qubit_var(qubit)
                zero_branch = restricted & self.manager.nvar(var)
                probability_zero = self._accumulate(zero_branch).to_float(scale)
                if rng.random() < (probability_zero / remaining if remaining > 0 else 0.0):
                    restricted = zero_branch
                    remaining = probability_zero
                    outcome = outcome << 1
                else:
                    restricted = restricted & self.manager.var(var)
                    remaining = remaining - probability_zero
                    outcome = (outcome << 1) | 1
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

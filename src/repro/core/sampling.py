"""Exact shot sampling directly on the bit-sliced BDD representation.

The generic engine sampler answers each conditional-probability query with a
fresh monolithic hyper-function traversal (paper Eq. 12).  This module walks
the *slices themselves* instead:

* fixing one more bit of the sampled prefix is a **cofactor restriction** of
  all ``4r`` slice BDDs at the qubit's variable — one
  :meth:`~repro.bdd.manager.BatchApplier.restrict_many` call per descent
  step (one computed-table binding for the whole slice family), and
* the probability mass of a restricted state is an exact **Gram-matrix
  accumulation**: with each vector written as ``v = sum_j w_j v_j`` over its
  bit-plane BDDs (``w_j = 2**j``, sign plane ``-2**(r-1)``), the sum of
  ``|amplitude|**2`` over all basis states needs only the model counts of
  pairwise slice conjunctions::

      sum_i u(i) * v(i) = sum_{j,l} w_j w_l |sat(u_j & v_l)|

  which yields the exact integer pair ``(x, y)`` of the total mass
  ``(x + y*sqrt(2)) / 2**k`` — squared amplitudes never materialise per
  basis state, and no hyper-function with encoding variables is ever built.

The sampler memoises restricted slice families per prefix (anchored in
:class:`~repro.bdd.expr.Bdd` handles so garbage collection cannot reclaim
them mid-descent) and model counts per node, so a full binomial descent
touches each distinct sampled outcome once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd import Bdd
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState

_SQRT2 = math.sqrt(2.0)


class SliceSampler:
    """Conditional-probability oracle over restrictions of one state.

    Parameters
    ----------
    state:
        The live :class:`~repro.core.bitslice.BitSlicedState` to sample
        from.  The sampler never mutates it; collapse-free sampling is the
        point.
    qubits:
        Measurement order; prefix bit ``i`` fixes ``qubits[i]``.

    Use :meth:`branch_probability` as the ``branch_probability`` callback of
    :func:`repro.engines.sampling.sample_by_descent` — or query
    :meth:`prefix_mass` directly for the exact integer mass of a prefix.
    """

    def __init__(self, state: BitSlicedState, qubits: Sequence[int]):
        self.state = state
        self.manager = state.manager
        self.qubits = list(qubits)
        self._batcher = self.manager.batcher()
        # prefix tuple -> anchored slice handles (a..d major, bit order).
        self._families: Dict[Tuple[int, ...], List[Bdd]] = {
            (): [Bdd(self.manager, bit.node) for bit in state.all_slices()]
        }
        self._satcounts: Dict[int, int] = {0: 0}
        # Satcounts are memoised per node id, so the memo must follow the
        # manager's generation: a garbage collection (or a dynamic reorder,
        # which runs one) between descent steps can recycle the id of an
        # unanchored conjunction node for a different function.  The
        # restricted families themselves are anchored in handles and the
        # restrictions address qubits by variable *index*, so sampling is
        # reorder-safe: each batch simply runs at the post-reorder levels.
        self._satcount_generation = self.manager.cache_generation
        self._masses: Dict[Tuple[int, ...], Tuple[int, int]] = {}
        #: Number of restrict_many batches issued (one per distinct prefix).
        self.restrict_batches = 0
        #: Number of Gram-matrix mass evaluations (one per distinct prefix).
        self.mass_evaluations = 0

    # ------------------------------------------------------------------ #
    # restricted slice families
    # ------------------------------------------------------------------ #
    def _family(self, prefix: Tuple[int, ...]) -> List[Bdd]:
        family = self._families.get(prefix)
        if family is None:
            parent = self._family(prefix[:-1])
            var = self.state.qubit_var(self.qubits[len(prefix) - 1])
            nodes = self._batcher.restrict_many(
                [handle.node for handle in parent], var, bool(prefix[-1]))
            family = [Bdd(self.manager, node) for node in nodes]
            self._families[prefix] = family
            self.restrict_batches += 1
        return family

    # ------------------------------------------------------------------ #
    # exact Gram-matrix mass
    # ------------------------------------------------------------------ #
    def _weights(self) -> List[int]:
        r = self.state.r
        return [1 << j for j in range(r - 1)] + [-(1 << (r - 1))]

    def _satcount(self, node: int) -> int:
        if self.manager.cache_generation != self._satcount_generation:
            self._satcounts = {0: 0}
            self._satcount_generation = self.manager.cache_generation
        cached = self._satcounts.get(node)
        if cached is None:
            cached = self.manager.satcount(node, self.state.num_qubits)
            self._satcounts[node] = cached
        return cached

    def prefix_mass(self, prefix: Tuple[int, ...]) -> Tuple[int, int]:
        """Exact integer pair ``(x, y)``: the summed ``|amplitude|**2`` of
        every basis state consistent with ``prefix`` equals
        ``(x + y*sqrt(2)) / 2**(k + len(prefix))`` before the measurement
        factor ``s**2``.

        (The ``2**len(prefix)`` accounts for model counting over the full
        variable set: restricted variables are free in every conjunction, so
        each surviving basis state is counted once per assignment of them.)
        """
        cached = self._masses.get(prefix)
        if cached is not None:
            return cached
        family = self._family(prefix)
        r = self.state.r
        weights = self._weights()
        blocks = {name: [handle.node for handle in family[index * r:(index + 1) * r]]
                  for index, name in enumerate(VECTOR_NAMES)}

        # One AND batch for every distinct unordered node pair we need.
        pair_keys = set()
        block_pairs = [(u, u) for u in VECTOR_NAMES] \
            + [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]
        for left, right in block_pairs:
            for u_node in blocks[left]:
                for v_node in blocks[right]:
                    if u_node != 0 and v_node != 0:
                        pair_keys.add((min(u_node, v_node), max(u_node, v_node)))
        pair_list = sorted(pair_keys)
        conjunctions = dict(zip(
            pair_list, self._batcher.and_many(pair_list))) if pair_list else {}

        def overlap(u_node: int, v_node: int) -> int:
            if u_node == 0 or v_node == 0:
                return 0
            key = (min(u_node, v_node), max(u_node, v_node))
            return self._satcount(conjunctions[key])

        def gram(left: str, right: str) -> int:
            total = 0
            left_nodes, right_nodes = blocks[left], blocks[right]
            for j, u_node in enumerate(left_nodes):
                for l, v_node in enumerate(right_nodes):
                    count = overlap(u_node, v_node)
                    if count:
                        total += weights[j] * weights[l] * count
            return total

        x = sum(gram(v, v) for v in VECTOR_NAMES)
        y = gram("a", "b") + gram("b", "c") + gram("c", "d") - gram("a", "d")
        self._masses[prefix] = (x, y)
        self.mass_evaluations += 1
        return (x, y)

    # ------------------------------------------------------------------ #
    # probability oracle
    # ------------------------------------------------------------------ #
    def prefix_probability(self, prefix: Tuple[int, ...]) -> float:
        """Absolute joint probability of observing ``prefix`` on the first
        ``len(prefix)`` sampled qubits (including the measurement factor
        ``s**2``)."""
        x, y = self.prefix_mass(tuple(prefix))
        scale = 2.0 ** (self.state.k + len(prefix))
        return (x + y * _SQRT2) / scale * (self.state.s ** 2)

    #: Alias matching the ``sample_by_descent`` callback name.
    branch_probability = prefix_probability

    def statistics(self) -> Dict[str, int]:
        """Work counters of this sampler instance (for engine extras)."""
        return {
            "sampler_restrict_batches": self.restrict_batches,
            "sampler_mass_evaluations": self.mass_evaluations,
            "sampler_distinct_prefixes": len(self._families) - 1,
        }


def sample_state(state: BitSlicedState, shots: int,
                 qubits: Optional[Sequence[int]] = None, rng=None) -> Dict[int, int]:
    """Draw ``shots`` outcomes from ``state`` by exact binomial descent.

    Convenience wrapper pairing a :class:`SliceSampler` with the shared
    descent of :func:`repro.engines.sampling.sample_by_descent`; returns
    outcome-integer -> count with the first sampled qubit as the most
    significant bit.
    """
    from repro.engines.sampling import sample_by_descent

    if qubits is None:
        qubits = list(range(state.num_qubits))
    if rng is None:
        import numpy as np

        rng = np.random.default_rng()
    sampler = SliceSampler(state, qubits)
    return sample_by_descent(sampler.branch_probability, len(sampler.qubits),
                             shots, rng)


__all__ = ["SliceSampler", "sample_state"]

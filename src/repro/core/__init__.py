"""The paper's primary contribution: bit-sliced BDD quantum simulation.

The pipeline is:

* :class:`~repro.core.bitslice.BitSlicedState` — an ``n``-qubit quantum state
  stored as ``4*r`` BDDs (bit-planes of the integer vectors ``a, b, c, d`` of
  the algebraic representation) plus the shared exponent ``k`` and the
  floating-point normalisation factor ``s`` introduced by measurement.
* :mod:`~repro.core.gate_rules` — the pre-characterised Boolean update
  formulas of the paper's Table II, one function per supported gate, built on
  cofactors and symbolic ripple-carry adders.
* :mod:`~repro.core.measurement` — the monolithic hyper-function BDD of
  Eq. (12), exact accumulated-probability computation, sampling and collapse.
* :class:`~repro.core.simulator.BitSliceSimulator` — the user-facing engine
  tying the above together, with the resource-limit hooks the benchmark
  harness uses.
"""

from repro.core.bitslice import BitSlicedState
from repro.core.simulator import BitSliceSimulator
from repro.core.measurement import MeasurementEngine
from repro.core.equivalence import EquivalenceReport, circuits_equivalent, states_equal_exact

__all__ = [
    "BitSlicedState",
    "BitSliceSimulator",
    "MeasurementEngine",
    "EquivalenceReport",
    "circuits_equivalent",
    "states_equal_exact",
]

"""Command-line entry point regenerating the paper's tables.

Examples::

    python -m repro.harness table3                 # laptop-scale Table III
    python -m repro.harness table5 --paper-scale   # original qubit counts
    python -m repro.harness all --quick            # small smoke sweep
    python -m repro.harness table3 --quick --engines bitslice,qmdd --jobs 4
    python -m repro.harness all --quick --json out.json
    python -m repro.harness accuracy
    python -m repro.harness table3 --quick --server 127.0.0.1:7621
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engines import available_engines, engine_aliases
from repro.harness.experiments import (
    accuracy_experiment,
    table3_experiment,
    table4_experiment,
    table5_experiment,
    table6_experiment,
)
from repro.harness.report import experiment_to_dict
from repro.harness.runner import ResourceLimits
from repro.harness.tables import (
    format_accuracy,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
)

#: Reduced parameters used by ``--quick`` (CI-sized smoke sweep).
QUICK_TABLE3_QUBITS = (6, 10)
QUICK_TABLE4_FAMILIES = ("add8", "cpu_ctrl3", "nested_if6")
QUICK_TABLE5_QUBITS = (10, 20)
QUICK_TABLE6_QUBITS = (16,)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the evaluation tables of the bit-slicing paper.")
    parser.add_argument("experiment",
                        choices=["table3", "table4", "table5", "table6",
                                 "accuracy", "all"],
                        help="which experiment to run")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's original qubit counts and "
                             "7200 s budgets (very slow in pure Python)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny parameters for a fast smoke run")
    parser.add_argument("--engines", type=str, default=None,
                        help="comma-separated engine names/aliases to compare "
                             f"(registered: {', '.join(available_engines())}; "
                             "'auto' selects per circuit by capability)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process workers for the (engine x circuit) grid "
                             "(default 1 = serial)")
    parser.add_argument("--server", type=str, default=None, metavar="ADDR",
                        help="route the experiment grids through a running "
                             "repro-serve instance at ADDR (host:port or "
                             "unix:/path) instead of executing locally; "
                             "results are byte-identical to a local run")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="wall-clock budget per case in seconds")
    parser.add_argument("--node-limit", type=int, default=None,
                        help="decision-diagram node budget per case")
    parser.add_argument("--seeds", type=int, default=None,
                        help="circuits per size for the randomised suites")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the rendered tables to this file")
    parser.add_argument("--json", type=str, default=None, dest="json_out",
                        help="write the machine-readable experiment report "
                             "(every run + summaries) to this JSON file")
    return parser


def _limits_from_args(args: argparse.Namespace) -> Optional[ResourceLimits]:
    if args.time_limit is None and args.node_limit is None:
        return None
    return ResourceLimits(
        max_seconds=args.time_limit if args.time_limit is not None else 60.0,
        max_nodes=args.node_limit if args.node_limit is not None else 400_000)


def _engines_from_args(args: argparse.Namespace) -> Optional[List[str]]:
    if args.engines is None:
        return None
    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    if not engines:
        raise SystemExit("--engines needs at least one engine name")
    known = set(available_engines()) | set(engine_aliases()) | {"auto"}
    unknown = [name for name in engines if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown engine(s): {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(known))}")
    return engines


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiment(s) and print the rendered tables."""
    args = _build_parser().parse_args(argv)
    limits = _limits_from_args(args)
    engines = _engines_from_args(args)
    # One place decides the compared engines: the user's --engines list, or
    # the paper's default pair (Table V additionally appends the stabilizer
    # when the user did not pin the set).
    engine_list = tuple(engines) if engines else ("qmdd", "bitslice")
    table5_engines = (engine_list if engines
                      else engine_list + ("stabilizer",))
    seeds = args.seeds
    sections: List[str] = []
    experiments = []
    client = None
    runner = None
    if args.server is not None:
        from repro.resilience.retry import RetryPolicy, connect_with_retry
        from repro.service.client import Client

        # The server may still be binding its socket when the harness
        # starts (compose-style orchestration launches both at once), so
        # the initial connection retries with backoff instead of dying on
        # the first ECONNREFUSED; once connected, the same policy lets the
        # idempotent grid submissions survive a mid-sweep restart.
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=1.0)
        client = connect_with_retry(
            lambda: Client(args.server, timeout=None, retry=policy),
            policy=policy)
        runner = client.run_tasks

    def want(name: str) -> bool:
        return args.experiment in (name, "all")

    if want("table3"):
        experiment = table3_experiment(
            qubit_counts=QUICK_TABLE3_QUBITS if args.quick else None,
            circuits_per_size=seeds or (2 if args.quick else 3),
            engines=engine_list,
            limits=limits, paper_scale=args.paper_scale, jobs=args.jobs,
            runner=runner)
        experiments.append(experiment)
        sections.append(format_table3(experiment, engines=engine_list))
    if want("table4"):
        experiment = table4_experiment(
            families=QUICK_TABLE4_FAMILIES if args.quick else None,
            engines=engine_list,
            limits=limits, paper_scale=args.paper_scale, jobs=args.jobs,
            runner=runner)
        experiments.append(experiment)
        sections.append(format_table4(experiment, engines=engine_list))
    if want("table5"):
        experiment = table5_experiment(
            qubit_counts=QUICK_TABLE5_QUBITS if args.quick else None,
            engines=engine_list,
            include_stabilizer=engines is None,
            limits=limits, paper_scale=args.paper_scale, jobs=args.jobs,
            runner=runner)
        experiments.append(experiment)
        sections.append(format_table5(experiment, engines=table5_engines))
    if want("table6"):
        experiment = table6_experiment(
            qubit_counts=QUICK_TABLE6_QUBITS if args.quick else None,
            circuits_per_size=seeds or (1 if args.quick else 2),
            engines=engine_list,
            limits=limits, paper_scale=args.paper_scale, jobs=args.jobs,
            runner=runner)
        experiments.append(experiment)
        sections.append(format_table6(experiment, engines=engine_list))
    if want("accuracy"):
        experiment = accuracy_experiment(
            num_qubits=4 if args.quick else 6,
            layers=(4, 16) if args.quick else (4, 16, 64, 128))
        experiments.append(experiment)
        sections.append(format_accuracy(experiment))

    output = "\n".join(sections)
    print(output)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
    if args.json_out:
        payload = {"experiments": [experiment_to_dict(e) for e in experiments]}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
    if client is not None:
        client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

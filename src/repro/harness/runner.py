"""Harness-facing façade over the unified engine API.

The paper's protocol gives every case a 7200 s time-out and a 2 GB memory
limit on a Xeon server; the reproduction applies configurable budgets
through the one :class:`~repro.engines.limits.LimitEnforcer` shared by all
engines.  Since the engine redesign this module carries no per-engine code
at all: engines live behind the capability-aware registry in
:mod:`repro.engines`, :func:`run_circuit` delegates to the
:func:`repro.engines.frontdoor.run` front door (which already classifies
outcomes into the paper's success / TO / MO / error / unsupported classes
and normalises statistics into the canonical schema), and the per-engine
stats-key remapping that used to live here is gone.

Kept here for the harness and for backward compatibility:

* re-exports of :class:`ResourceLimits`, :class:`RunResult`, the
  ``STATUS_*`` constants, :data:`BYTES_PER_NODE` and :func:`summarise`;
* :data:`ENGINE_LABELS`, derived from the registry's capability records;
* :func:`run_suite`, the serial one-engine convenience used by examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.engines import (  # noqa: F401  (re-exported harness API)
    BYTES_PER_NODE,
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    ResourceLimits,
    RunResult,
    available_engines,
    engine_labels,
    run as _run,
    run_tasks,
    summarise,
)
from repro.engines.frontdoor import final_query_qubits as _final_query_qubits  # noqa: F401

__all__ = [
    "BYTES_PER_NODE",
    "ENGINE_LABELS",
    "ResourceLimits",
    "RunResult",
    "STATUS_CRASH",
    "STATUS_ERROR",
    "STATUS_MEMORY",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_UNSUPPORTED",
    "available_engines",
    "engine_labels",
    "run_circuit",
    "run_suite",
    "run_tasks",
    "summarise",
]

#: Human-readable engine labels used in rendered tables, derived from each
#: registered engine's :class:`~repro.engines.base.Capabilities`.  A live
#: view would also show late registrations; the snapshot is taken at import
#: for stable table headers (formatters fall back to the raw name anyway).
ENGINE_LABELS: Dict[str, str] = engine_labels()


def run_circuit(engine: str, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None,
                shots: Optional[int] = None,
                seed: Optional[int] = None) -> RunResult:
    """Run ``circuit`` on ``engine`` under ``limits`` and classify the
    outcome (thin wrapper over :func:`repro.engines.frontdoor.run`).

    ``shots`` / ``seed`` sample measurement counts into
    :attr:`RunResult.counts` exactly as the front door does.
    """
    return _run(circuit, engine=engine, limits=limits, shots=shots, seed=seed)


def run_suite(engine: str, circuits: Sequence[QuantumCircuit],
              limits: Optional[ResourceLimits] = None,
              jobs: int = 1,
              shots: Optional[int] = None,
              seed: Optional[int] = None) -> List[RunResult]:
    """Run a list of circuits on one engine (optionally on process workers).

    ``shots`` / ``seed`` sample counts per circuit with deterministic
    per-task seeds (identical serial vs parallel)."""
    return run_tasks([(engine, circuit) for circuit in circuits],
                     limits=limits, jobs=jobs, shots=shots, seed=seed)

"""Run one circuit on one engine under resource limits and classify the
outcome the way the paper does (success / TO / MO / error / unsupported).

The paper's protocol gives every case a 7200 s time-out and a 2 GB memory
limit on a Xeon server.  The Python reproduction uses the same protocol with
configurable budgets: wall-clock seconds, and a *node budget* for the
decision-diagram engines (decision-diagram nodes are the natural memory unit
of both the BDD and the QMDD engines; an approximate byte conversion is
reported alongside for comparison with the paper's MB numbers).

After the circuit is applied, each engine answers one final probability query
(the probability of the all-zeros outcome on the measured qubits, or on all
qubits when the circuit marks none), so the measured runtime includes the
measurement machinery of Section III-E exactly as in the paper's runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.qmdd import QmddSimulator
from repro.baselines.stabilizer import StabilizerSimulator
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator
from repro.exceptions import (
    NumericalError,
    SimulationMemoryExceeded,
    SimulationTimeout,
    UnsupportedGateError,
)

#: Approximate bytes per decision-diagram node, used only to convert node
#: counts into the MB figures reported next to the paper's numbers.  A CUDD /
#: DDSIM node is ~32-48 bytes; the pure-Python stores cost more, but the
#: comparison between engines uses the same constant so relative numbers are
#: unaffected.
BYTES_PER_NODE = 48

#: Outcome classes, matching the paper's table annotations.
STATUS_OK = "ok"
STATUS_TIMEOUT = "TO"
STATUS_MEMORY = "MO"
STATUS_ERROR = "error"
STATUS_UNSUPPORTED = "unsupported"
STATUS_CRASH = "crash"


@dataclass
class ResourceLimits:
    """Per-run budgets (``None`` disables a limit)."""

    max_seconds: Optional[float] = 60.0
    max_nodes: Optional[int] = 500_000
    #: Dense statevector cut-off, in qubits (its memory is 16 * 2**n bytes).
    max_dense_qubits: int = 24


@dataclass
class RunResult:
    """Outcome of one (engine, circuit) run."""

    engine: str
    circuit_name: str
    num_qubits: int
    num_gates: int
    status: str
    runtime_seconds: float = 0.0
    memory_nodes: int = 0
    detail: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the run completed without TO/MO/error."""
        return self.status == STATUS_OK

    @property
    def memory_mb(self) -> float:
        """Approximate memory footprint in MB (node count based)."""
        return self.memory_nodes * BYTES_PER_NODE / (1024.0 * 1024.0)


def _final_query_qubits(circuit: QuantumCircuit, cap: int = 64) -> List[int]:
    """Qubits for the end-of-run probability query (measured qubits if any,
    otherwise all qubits, capped to keep the query linear-time)."""
    qubits = circuit.measured_qubits or list(range(circuit.num_qubits))
    return qubits[:cap]


def _run_bitslice(circuit: QuantumCircuit, limits: ResourceLimits) -> Dict[str, float]:
    simulator = BitSliceSimulator(circuit.num_qubits,
                                  max_seconds=limits.max_seconds,
                                  max_nodes=limits.max_nodes)
    simulator.run(circuit)
    qubits = _final_query_qubits(circuit)
    probability = simulator.probability_of_outcome(qubits, [0] * len(qubits))
    stats = simulator.statistics()
    stats["final_probability"] = probability
    stats["memory_nodes"] = stats.pop("peak_bdd_nodes")
    return stats


def _run_qmdd(circuit: QuantumCircuit, limits: ResourceLimits) -> Dict[str, float]:
    simulator = QmddSimulator(circuit.num_qubits,
                              max_seconds=limits.max_seconds,
                              max_nodes=limits.max_nodes)
    simulator.run(circuit)
    qubits = _final_query_qubits(circuit)
    probability = simulator.probability_of_outcome(qubits, [0] * len(qubits))
    stats = simulator.statistics()
    stats["final_probability"] = probability
    stats["memory_nodes"] = stats.pop("peak_dd_nodes")
    return stats


def _run_statevector(circuit: QuantumCircuit, limits: ResourceLimits) -> Dict[str, float]:
    simulator = StatevectorSimulator(circuit.num_qubits,
                                     max_qubits=limits.max_dense_qubits)
    start = time.perf_counter()
    simulator.run(circuit)
    qubits = _final_query_qubits(circuit)
    probability = simulator.probability_of_outcome(qubits, [0] * len(qubits))
    return {
        "final_probability": probability,
        "memory_nodes": (1 << circuit.num_qubits),
        "elapsed_seconds": time.perf_counter() - start,
    }


def _run_stabilizer(circuit: QuantumCircuit, limits: ResourceLimits) -> Dict[str, float]:
    simulator = StabilizerSimulator(circuit.num_qubits, max_seconds=limits.max_seconds)
    simulator.run(circuit)
    qubits = _final_query_qubits(circuit, cap=1)
    probability = simulator.probability_of_qubit(qubits[0], 0) if qubits else 1.0
    stats = simulator.statistics()
    stats["final_probability"] = probability
    stats["memory_nodes"] = int(stats.pop("tableau_bytes")) // BYTES_PER_NODE
    return stats


#: Engine registry: name -> runner callable.
ENGINES: Dict[str, Callable[[QuantumCircuit, ResourceLimits], Dict[str, float]]] = {
    "bitslice": _run_bitslice,
    "qmdd": _run_qmdd,
    "statevector": _run_statevector,
    "stabilizer": _run_stabilizer,
}

#: Human-readable engine labels used in rendered tables (the QMDD engine is
#: labelled after the tool it stands in for).
ENGINE_LABELS: Dict[str, str] = {
    "bitslice": "Ours (bit-sliced BDD)",
    "qmdd": "QMDD (DDSIM-style)",
    "statevector": "Dense statevector",
    "stabilizer": "CHP stabilizer",
}


def run_circuit(engine: str, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> RunResult:
    """Run ``circuit`` on ``engine`` under ``limits`` and classify the outcome."""
    if engine not in ENGINES:
        raise KeyError(f"unknown engine {engine!r}; available: {sorted(ENGINES)}")
    limits = limits or ResourceLimits()
    start = time.perf_counter()
    status = STATUS_OK
    detail = ""
    memory_nodes = 0
    extra: Dict[str, float] = {}
    try:
        stats = ENGINES[engine](circuit, limits)
        memory_nodes = int(stats.get("memory_nodes", 0))
        extra = {key: value for key, value in stats.items()
                 if isinstance(value, (int, float))}
    except SimulationTimeout as exc:
        status, detail = STATUS_TIMEOUT, str(exc)
    except (SimulationMemoryExceeded, MemoryError) as exc:
        status, detail = STATUS_MEMORY, str(exc)
    except NumericalError as exc:
        status, detail = STATUS_ERROR, str(exc)
    except UnsupportedGateError as exc:
        status, detail = STATUS_UNSUPPORTED, str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        status, detail = STATUS_CRASH, f"recursion depth exceeded: {exc}"
    runtime = time.perf_counter() - start
    if (status == STATUS_OK and limits.max_seconds is not None
            and runtime > limits.max_seconds):
        # The engine finished right at the edge of the budget; classify as
        # timeout so the tables stay consistent with the budget.
        status = STATUS_TIMEOUT
        detail = f"completed in {runtime:.1f}s, over the {limits.max_seconds:.1f}s budget"
    return RunResult(
        engine=engine,
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates,
        status=status,
        runtime_seconds=runtime,
        memory_nodes=memory_nodes,
        detail=detail,
        extra=extra,
    )


def run_suite(engine: str, circuits: Sequence[QuantumCircuit],
              limits: Optional[ResourceLimits] = None) -> List[RunResult]:
    """Run a list of circuits on one engine."""
    return [run_circuit(engine, circuit, limits) for circuit in circuits]


def summarise(results: Sequence[RunResult]) -> Dict[str, float]:
    """Aggregate a result list the way the paper's table rows do.

    Returns average runtime over successes, the failure counts per class and
    the average memory (MB) over all runs.
    """
    successes = [result for result in results if result.succeeded]
    summary = {
        "runs": len(results),
        "successes": len(successes),
        "avg_runtime": (sum(r.runtime_seconds for r in successes) / len(successes)
                        if successes else float("nan")),
        "avg_memory_mb": (sum(r.memory_mb for r in results) / len(results)
                          if results else 0.0),
        "timeouts": sum(1 for r in results if r.status == STATUS_TIMEOUT),
        "memouts": sum(1 for r in results if r.status == STATUS_MEMORY),
        "errors": sum(1 for r in results if r.status == STATUS_ERROR),
        "unsupported": sum(1 for r in results if r.status == STATUS_UNSUPPORTED),
        "crashes": sum(1 for r in results if r.status == STATUS_CRASH),
    }
    # Substrate-instrumented engines report computed-table effectiveness in
    # their extras; surface the average hit rate next to the runtime columns.
    hit_rates = [r.extra["substrate_cache_hit_rate"] for r in successes
                 if "substrate_cache_hit_rate" in r.extra]
    if hit_rates:
        summary["avg_cache_hit_rate"] = sum(hit_rates) / len(hit_rates)
    return summary

"""Machine-readable experiment reports (JSON and Markdown).

The text renderers in :mod:`repro.harness.tables` mirror the paper's layout;
this module adds the formats a downstream consumer wants:

* :func:`experiment_to_dict` / :func:`experiment_to_json` — lossless dump of
  every run (engine, status, runtime, node count) plus the per-group
  summaries, suitable for plotting or regression tracking;
* :func:`experiment_to_markdown` — a GitHub-flavoured Markdown table of the
  per-group summaries, which is what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.harness.experiments import ExperimentResult
from repro.harness.runner import ENGINE_LABELS, RunResult


def _run_to_dict(result: RunResult) -> Dict[str, object]:
    # Canonical stats schema (peak_memory_nodes / elapsed_seconds /
    # final_probability); the extra mapping carries engine-specific counters
    # such as the bit-sliced engine's substrate_* performance series.
    return result.to_dict()


def experiment_to_dict(experiment: ExperimentResult) -> Dict[str, object]:
    """Convert an experiment to plain dict/list structures."""
    groups = []
    for group, per_engine in experiment.runs.items():
        entry: Dict[str, object] = {"group": group if not isinstance(group, tuple) else list(group)}
        entry["engines"] = {
            engine: {
                "runs": [_run_to_dict(result) for result in results],
                "summary": experiment.summaries[group][engine],
            }
            for engine, results in per_engine.items()
        }
        groups.append(entry)
    metadata = {}
    for key, value in experiment.metadata.items():
        try:
            json.dumps(value)
            metadata[key] = value
        except TypeError:
            metadata[key] = repr(value)
    return {"name": experiment.name, "metadata": metadata, "groups": groups}


def experiment_to_json(experiment: ExperimentResult, indent: int = 2) -> str:
    """JSON dump of :func:`experiment_to_dict`."""
    return json.dumps(experiment_to_dict(experiment), indent=indent, default=str)


def experiment_to_markdown(experiment: ExperimentResult,
                           engines: Sequence[str] = ("qmdd", "bitslice")) -> str:
    """A Markdown summary table: one row per group, columns per engine."""
    headers = ["group", "#gates"]
    for engine in engines:
        label = ENGINE_LABELS.get(engine, engine)
        headers.extend([f"{label} time (s)", f"{label} outcome"])
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(["---"] * len(headers)) + "|"]
    for group in sorted(experiment.runs, key=str):
        per_engine = experiment.runs[group]
        sample_engine = next(engine for engine in engines if engine in per_engine)
        num_gates = per_engine[sample_engine][0].num_gates
        cells: List[str] = [str(group), str(num_gates)]
        for engine in engines:
            if engine not in per_engine:
                cells.extend(["-", "-"])
                continue
            summary = experiment.summaries[group][engine]
            if summary["successes"]:
                cells.append(f"{summary['avg_runtime']:.2f}")
            else:
                cells.append("failed")
            cells.append(
                f"{int(summary['successes'])}/{int(summary['runs'])} ok, "
                f"TO={int(summary['timeouts'])}, MO={int(summary['memouts'])}, "
                f"err={int(summary['errors'])}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def save_experiment(experiment: ExperimentResult, path: str) -> None:
    """Write the JSON report of an experiment to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(experiment_to_json(experiment))

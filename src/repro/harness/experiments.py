"""Experiment definitions: one per table of the paper plus accuracy/ablations.

Each ``*_experiment`` function builds the workload, runs it on the requested
engines under the requested limits and returns a structured result that the
formatters in :mod:`repro.harness.tables` turn into the paper's table layout.

Every table experiment accepts ``jobs``: the (engine x circuit) grid is
flattened into tasks and executed through
:func:`repro.engines.frontdoor.run_tasks`, so ``jobs > 1`` spreads the grid
over process workers while producing the exact same grouped results (task
order is deterministic and independent of worker scheduling).

Scaling: the original evaluation ran C/C++ engines for up to 7200 s per case
on a Xeon server.  The pure-Python reproduction is orders of magnitude slower
per node operation, so the default parameters use smaller qubit counts and
budgets; passing ``paper_scale=True`` restores the published parameters
(expect very long runtimes).  EXPERIMENTS.md records which scale was used for
the numbers shipped with the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.engines.frontdoor import run_tasks
from repro.harness.runner import (
    ResourceLimits,
    RunResult,
    summarise,
)
from repro.workloads.algorithms import bernstein_vazirani_circuit, ghz_circuit
from repro.workloads.random_circuits import generate_random_circuit
from repro.workloads.revlib import revlib_suite
from repro.workloads.supremacy import TABLE6_LATTICES, grcs_circuit

#: Default engines compared in the paper's tables.
DEFAULT_ENGINES: Tuple[str, ...] = ("qmdd", "bitslice")

#: Anything with the :func:`repro.engines.frontdoor.run_tasks` signature —
#: the local executor itself, or a service client's ``run_tasks``.
Runner = Callable[..., List[RunResult]]


@dataclass
class ExperimentResult:
    """Raw per-run results plus per-group summaries for one experiment."""

    name: str
    #: Mapping group key (e.g. qubit count or benchmark name) ->
    #: engine -> list of RunResult.
    runs: Dict[object, Dict[str, List[RunResult]]] = field(default_factory=dict)
    #: Mapping group key -> engine -> summary dict (see runner.summarise).
    summaries: Dict[object, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: Free-form metadata (workload parameters, limits, scale).
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, group: object, engine: str, results: List[RunResult]) -> None:
        """Record the results of one engine on one group."""
        self.runs.setdefault(group, {})[engine] = results
        self.summaries.setdefault(group, {})[engine] = summarise(results)


def _run_grouped(experiment: ExperimentResult,
                 grid: Sequence[Tuple[object, str, QuantumCircuit]],
                 limits: Optional[ResourceLimits],
                 jobs: int,
                 runner: Optional[Runner] = None) -> None:
    """Execute a (group, engine, circuit) grid and record grouped results.

    The grid is flattened into engine tasks, executed (serially or across
    process workers), and regrouped in grid order, so the populated
    ``experiment.runs``/``summaries`` are identical for any ``jobs`` value.

    ``runner`` swaps the executor: any callable with the
    :func:`repro.engines.frontdoor.run_tasks` signature, e.g. a service
    client's ``run_tasks`` (``harness --server ADDR``), which routes the
    whole grid through a running ``repro-serve`` instance and returns
    byte-identical results.
    """
    execute = runner if runner is not None else run_tasks
    results = execute([(engine, circuit) for _, engine, circuit in grid],
                      limits=limits, jobs=jobs)
    grouped: Dict[Tuple[object, str], List[RunResult]] = {}
    for (group, engine, _), result in zip(grid, results):
        grouped.setdefault((group, engine), []).append(result)
    for (group, engine), group_results in grouped.items():
        experiment.add(group, engine, group_results)


# --------------------------------------------------------------------------- #
# Table III: random circuits
# --------------------------------------------------------------------------- #
#: Paper Table III qubit counts.
TABLE3_PAPER_QUBITS = (40, 80, 120, 160, 200, 300, 400, 500)
#: Laptop-scale default qubit counts.
TABLE3_DEFAULT_QUBITS = (10, 20, 30, 40)


def table3_experiment(qubit_counts: Optional[Sequence[int]] = None,
                      circuits_per_size: int = 3,
                      engines: Sequence[str] = DEFAULT_ENGINES,
                      limits: Optional[ResourceLimits] = None,
                      paper_scale: bool = False,
                      base_seed: int = 2021,
                      jobs: int = 1,
                      runner: Optional[Runner] = None) -> ExperimentResult:
    """Random circuits (paper Table III): 3:1 gate:qubit ratio, H prologue."""
    if qubit_counts is None:
        qubit_counts = TABLE3_PAPER_QUBITS if paper_scale else TABLE3_DEFAULT_QUBITS
    if paper_scale and circuits_per_size < 10:
        circuits_per_size = 10
    limits = limits or (ResourceLimits(max_seconds=7200, max_nodes=None)
                        if paper_scale else ResourceLimits(max_seconds=60.0,
                                                           max_nodes=400_000))
    experiment = ExperimentResult("table3_random_circuits")
    experiment.metadata.update({
        "qubit_counts": list(qubit_counts),
        "circuits_per_size": circuits_per_size,
        "limits": limits,
        "paper_scale": paper_scale,
    })
    grid: List[Tuple[object, str, QuantumCircuit]] = []
    for num_qubits in qubit_counts:
        circuits = [
            generate_random_circuit(num_qubits,
                                    seed=base_seed * 1_000_003 + num_qubits * 1_009 + index)
            for index in range(circuits_per_size)
        ]
        for engine in engines:
            grid.extend((num_qubits, engine, circuit) for circuit in circuits)
    _run_grouped(experiment, grid, limits, jobs, runner=runner)
    return experiment


# --------------------------------------------------------------------------- #
# Table IV: RevLib reversible circuits, original and H-modified
# --------------------------------------------------------------------------- #
def table4_experiment(families: Optional[Sequence[str]] = None,
                      engines: Sequence[str] = DEFAULT_ENGINES,
                      limits: Optional[ResourceLimits] = None,
                      paper_scale: bool = False,
                      jobs: int = 1,
                      runner: Optional[Runner] = None) -> ExperimentResult:
    """RevLib-style circuits (paper Table IV): original vs H-modified."""
    limits = limits or (ResourceLimits(max_seconds=7200, max_nodes=None)
                        if paper_scale else ResourceLimits(max_seconds=60.0,
                                                           max_nodes=400_000))
    experiment = ExperimentResult("table4_revlib")
    experiment.metadata.update({"limits": limits, "paper_scale": paper_scale})
    grid: List[Tuple[object, str, QuantumCircuit]] = []
    for name, original, modified, constants in revlib_suite(families):
        experiment.metadata.setdefault("constants", {})[name] = constants  # type: ignore[index]
        for variant_label, circuit in (("original", original), ("modified", modified)):
            group = (name, variant_label)
            for engine in engines:
                grid.append((group, engine, circuit))
    _run_grouped(experiment, grid, limits, jobs, runner=runner)
    return experiment


# --------------------------------------------------------------------------- #
# Table V: quantum algorithm circuits (entanglement / Bernstein-Vazirani)
# --------------------------------------------------------------------------- #
#: Paper Table V qubit counts.
TABLE5_PAPER_QUBITS = (80, 90, 100, 500, 1000, 5000, 10000)
#: Laptop-scale default qubit counts.
TABLE5_DEFAULT_QUBITS = (20, 40, 80, 160, 320)


def table5_experiment(qubit_counts: Optional[Sequence[int]] = None,
                      engines: Sequence[str] = DEFAULT_ENGINES,
                      include_stabilizer: bool = True,
                      limits: Optional[ResourceLimits] = None,
                      paper_scale: bool = False,
                      jobs: int = 1,
                      runner: Optional[Runner] = None) -> ExperimentResult:
    """Entanglement (GHZ) and Bernstein–Vazirani circuits (paper Table V)."""
    if qubit_counts is None:
        qubit_counts = TABLE5_PAPER_QUBITS if paper_scale else TABLE5_DEFAULT_QUBITS
    limits = limits or (ResourceLimits(max_seconds=7200, max_nodes=None)
                        if paper_scale else ResourceLimits(max_seconds=120.0,
                                                           max_nodes=400_000))
    engine_list = list(engines)
    if include_stabilizer and "stabilizer" not in engine_list:
        engine_list.append("stabilizer")
    experiment = ExperimentResult("table5_algorithms")
    experiment.metadata.update({
        "qubit_counts": list(qubit_counts),
        "limits": limits,
        "paper_scale": paper_scale,
    })
    grid: List[Tuple[object, str, QuantumCircuit]] = []
    for num_qubits in qubit_counts:
        entanglement = ghz_circuit(num_qubits)
        # The paper's BV column counts total qubits; the data register is one
        # smaller because of the ancilla.
        bv = bernstein_vazirani_circuit(max(1, num_qubits - 1))
        for engine in engine_list:
            grid.append((("entanglement", num_qubits), engine, entanglement))
            grid.append((("bv", num_qubits), engine, bv))
    _run_grouped(experiment, grid, limits, jobs, runner=runner)
    return experiment


# --------------------------------------------------------------------------- #
# Table VI: Google GRCS supremacy circuits
# --------------------------------------------------------------------------- #
#: Paper Table VI qubit counts.
TABLE6_PAPER_QUBITS = tuple(sorted(TABLE6_LATTICES))
#: Laptop-scale default qubit counts.
TABLE6_DEFAULT_QUBITS = (16, 20, 25)


def table6_experiment(qubit_counts: Optional[Sequence[int]] = None,
                      circuits_per_size: int = 2,
                      depth: int = 5,
                      engines: Sequence[str] = DEFAULT_ENGINES,
                      limits: Optional[ResourceLimits] = None,
                      paper_scale: bool = False,
                      base_seed: int = 2021,
                      jobs: int = 1,
                      runner: Optional[Runner] = None) -> ExperimentResult:
    """Google supremacy (GRCS) circuits at depth 5 (paper Table VI)."""
    if qubit_counts is None:
        qubit_counts = TABLE6_PAPER_QUBITS if paper_scale else TABLE6_DEFAULT_QUBITS
    if paper_scale and circuits_per_size < 10:
        circuits_per_size = 10
    limits = limits or (ResourceLimits(max_seconds=7200, max_nodes=None)
                        if paper_scale else ResourceLimits(max_seconds=120.0,
                                                           max_nodes=400_000))
    experiment = ExperimentResult("table6_supremacy")
    experiment.metadata.update({
        "qubit_counts": list(qubit_counts),
        "circuits_per_size": circuits_per_size,
        "depth": depth,
        "limits": limits,
        "paper_scale": paper_scale,
    })
    grid: List[Tuple[object, str, QuantumCircuit]] = []
    for count in qubit_counts:
        rows, columns = TABLE6_LATTICES[count]
        circuits = [grcs_circuit(rows, columns, depth=depth,
                                 seed=base_seed * 7_919 + count * 101 + index)
                    for index in range(circuits_per_size)]
        for engine in engines:
            grid.extend((count, engine, circuit) for circuit in circuits)
    _run_grouped(experiment, grid, limits, jobs, runner=runner)
    return experiment


# --------------------------------------------------------------------------- #
# Accuracy experiment (Section III-A / the "error" columns)
# --------------------------------------------------------------------------- #
def accuracy_circuit(num_qubits: int, layers: int, seed: int = 7) -> QuantumCircuit:
    """A deep H/T/CX circuit that stresses floating-point weight accumulation.

    Long alternating H and T layers produce amplitudes whose algebraic
    coefficients grow, which is exactly where tolerance-based complex
    interning starts merging distinct values.
    """
    import random as _random

    rng = _random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"accuracy_{num_qubits}x{layers}")
    for _ in range(layers):
        for qubit in range(num_qubits):
            circuit.h(qubit)
        for qubit in range(num_qubits):
            circuit.t(qubit)
        control, target = rng.sample(range(num_qubits), 2) if num_qubits > 1 else (0, 0)
        if num_qubits > 1:
            circuit.cx(control, target)
    return circuit


def accuracy_experiment(num_qubits: int = 6, layers: Sequence[int] = (4, 16, 64, 128),
                        tolerances: Sequence[float] = (1e-6, 1e-10, 1e-13),
                        limits: Optional[ResourceLimits] = None) -> ExperimentResult:
    """Quantify precision loss of the float-weighted QMDD engine versus the
    exact bit-sliced engine on deep superposition circuits.

    For every depth and interning tolerance the experiment records how far the
    QMDD state norm drifts from 1; the bit-sliced engine's norm is exact by
    construction (its only float enters at measurement), so its row is always
    0 drift — this is the paper's accuracy claim in quantitative form.
    """
    from repro.baselines.qmdd import QmddSimulator
    from repro.core.simulator import BitSliceSimulator

    limits = limits or ResourceLimits(max_seconds=120.0, max_nodes=400_000)
    experiment = ExperimentResult("accuracy")
    experiment.metadata.update({
        "num_qubits": num_qubits,
        "layers": list(layers),
        "tolerances": list(tolerances),
    })
    drift_rows: List[Dict[str, float]] = []
    for depth in layers:
        circuit = accuracy_circuit(num_qubits, depth)
        exact = BitSliceSimulator.simulate(circuit, max_seconds=limits.max_seconds,
                                           max_nodes=limits.max_nodes)
        exact_norm = exact.total_probability()
        row: Dict[str, float] = {"layers": depth, "exact_norm_drift": abs(exact_norm - 1.0)}
        for tolerance in tolerances:
            simulator = QmddSimulator(circuit.num_qubits, tolerance=tolerance,
                                      error_threshold=float("inf"),
                                      max_seconds=limits.max_seconds)
            simulator.run(circuit)
            row[f"qmdd_drift_tol_{tolerance:g}"] = abs(simulator.norm_squared() - 1.0)
        drift_rows.append(row)
    experiment.metadata["drift_rows"] = drift_rows
    return experiment

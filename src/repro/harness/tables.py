"""Render experiment results in the paper's table layouts.

Each ``format_tableN`` function takes the :class:`ExperimentResult` produced
by the corresponding experiment and returns plain text whose columns mirror
the published table, so the regenerated numbers can be placed side-by-side
with the paper (EXPERIMENTS.md does exactly that).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.harness.experiments import ExperimentResult
from repro.harness.runner import (
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_TIMEOUT,
    ENGINE_LABELS,
)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with one header row."""
    columns = len(headers)
    normalised_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in normalised_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)))
    lines.append(separator)
    for row in normalised_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines) + "\n"


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "failed"
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)


def _time_cell(summary: Dict[str, float]) -> object:
    """Average-runtime cell: 'failed' when no case succeeded (as in the paper)."""
    if summary["successes"] == 0:
        return float("nan")
    return summary["avg_runtime"]


def _failure_cell(summary: Dict[str, float]) -> str:
    """The paper's ``TO/MO/err./seg.`` style counter cell (the crash counter
    stands in for the segfault column)."""
    return (f"{int(summary['timeouts'])}/{int(summary['memouts'])}/"
            f"{int(summary['errors'])}/{int(summary['crashes'])}")


def format_table3(experiment: ExperimentResult,
                  engines: Sequence[str] = ("qmdd", "bitslice")) -> str:
    """Table III layout: qubits, gates, then per engine avg time + failures."""
    headers: List[str] = ["#Qubits", "#Gates"]
    for engine in engines:
        label = ENGINE_LABELS.get(engine, engine)
        headers.extend([f"{label} Time(s)", f"{label} TO/MO/err/crash"])
    rows = []
    for group in sorted(experiment.runs):
        per_engine = experiment.summaries[group]
        sample_engine = engines[0]
        sample_runs = experiment.runs[group][sample_engine]
        num_gates = sample_runs[0].num_gates if sample_runs else 0
        row: List[object] = [group, num_gates]
        for engine in engines:
            summary = per_engine[engine]
            row.extend([_time_cell(summary), _failure_cell(summary)])
        rows.append(row)
    return render_table(headers, rows, title="Table III — random circuits")


def format_table4(experiment: ExperimentResult,
                  engines: Sequence[str] = ("qmdd", "bitslice")) -> str:
    """Table IV layout: benchmark, qubits, per-variant gate counts and times."""
    headers: List[str] = ["Benchmark", "#Qubits", "Variant", "#Gates"]
    for engine in engines:
        headers.append(f"{ENGINE_LABELS.get(engine, engine)} Time(s)")
    rows = []
    for group in sorted(experiment.runs, key=lambda key: (key[0], key[1])):
        name, variant = group
        per_engine = experiment.runs[group]
        sample = per_engine[engines[0]][0]
        row: List[object] = [name, sample.num_qubits, variant, sample.num_gates]
        for engine in engines:
            result = per_engine[engine][0]
            row.append(result.elapsed_seconds if result.succeeded else result.status)
        rows.append(row)
    return render_table(headers, rows, title="Table IV — RevLib-style circuits")


def format_table5(experiment: ExperimentResult,
                  engines: Sequence[str] = ("qmdd", "bitslice", "stabilizer")) -> str:
    """Table V layout: per qubit count, entanglement and BV columns."""
    headers: List[str] = ["#Qubits", "Family", "#Gates"]
    for engine in engines:
        headers.append(f"{ENGINE_LABELS.get(engine, engine)} Time(s)")
    rows = []
    for group in sorted(experiment.runs, key=lambda key: (key[1], key[0])):
        family, num_qubits = group
        per_engine = experiment.runs[group]
        sample_engine = next(engine for engine in engines if engine in per_engine)
        sample = per_engine[sample_engine][0]
        row: List[object] = [num_qubits, family, sample.num_gates]
        for engine in engines:
            if engine not in per_engine:
                row.append(None)
                continue
            result = per_engine[engine][0]
            row.append(result.elapsed_seconds if result.succeeded else result.status)
        rows.append(row)
    return render_table(headers, rows, title="Table V — quantum algorithm circuits")


def format_table6(experiment: ExperimentResult,
                  engines: Sequence[str] = ("qmdd", "bitslice")) -> str:
    """Table VI layout: qubits, gates, per engine time, memory and TO/MO."""
    headers: List[str] = ["#Qubits", "#Gates"]
    for engine in engines:
        label = ENGINE_LABELS.get(engine, engine)
        headers.extend([f"{label} Time(s)", f"{label} Mem(MB)", f"{label} TO/MO"])
    rows = []
    for group in sorted(experiment.runs):
        per_engine = experiment.summaries[group]
        sample_runs = experiment.runs[group][engines[0]]
        num_gates = sample_runs[0].num_gates if sample_runs else 0
        row: List[object] = [group, num_gates]
        for engine in engines:
            summary = per_engine[engine]
            row.extend([
                _time_cell(summary),
                summary["avg_memory_mb"],
                f"{int(summary['timeouts'])}/{int(summary['memouts'])}",
            ])
        rows.append(row)
    return render_table(headers, rows, title="Table VI — Google supremacy circuits")


def format_accuracy(experiment: ExperimentResult) -> str:
    """Accuracy experiment layout: norm drift per depth and tolerance."""
    drift_rows: List[Dict[str, float]] = experiment.metadata.get("drift_rows", [])  # type: ignore[assignment]
    if not drift_rows:
        return "(no accuracy data collected)\n"
    tolerance_keys = [key for key in drift_rows[0] if key.startswith("qmdd_drift")]
    headers = ["Layers", "Exact engine |1 - norm|"] + [
        key.replace("qmdd_drift_tol_", "QMDD drift @ tol=") for key in tolerance_keys]
    rows = []
    for row in drift_rows:
        rows.append([row["layers"], row["exact_norm_drift"]]
                    + [row[key] for key in tolerance_keys])
    return render_table(headers, rows,
                        title="Accuracy — state-norm drift (exact vs float-weighted DD)")

"""Experiment harness reproducing the paper's evaluation protocol.

The harness mirrors Section IV of the paper:

* every (circuit, engine) pair runs under a wall-clock limit and a memory
  limit and is classified as success / TO / MO / numerical error /
  unsupported — the same outcome classes as the paper's tables; execution
  goes through the unified engine API of :mod:`repro.engines` (registry,
  ``"auto"`` selection, one limit-enforcement wrapper for every engine);
* :mod:`repro.harness.experiments` defines one experiment per table
  (Tables III–VI) plus the accuracy experiment and the ablations listed in
  DESIGN.md, each with laptop-scale default parameters, a
  ``paper_scale=True`` switch restoring the original qubit counts, and a
  ``jobs`` parameter spreading the grid over process workers;
* :mod:`repro.harness.tables` renders collected results in the same row
  layout the paper uses, so the regenerated tables can be compared
  side-by-side with the published ones (see EXPERIMENTS.md).

Command-line entry point::

    python -m repro.harness table3            # regenerate Table III (scaled)
    python -m repro.harness table5 --paper-scale
    python -m repro.harness all --quick --engines bitslice,qmdd --jobs 4 \\
        --json out.json
"""

from repro.harness.runner import (
    ENGINE_LABELS,
    ResourceLimits,
    RunResult,
    available_engines,
    run_circuit,
    run_suite,
    summarise,
)
from repro.harness.experiments import (
    accuracy_experiment,
    table3_experiment,
    table4_experiment,
    table5_experiment,
    table6_experiment,
)
from repro.harness.tables import (
    format_accuracy,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    render_table,
)
from repro.harness.report import (
    experiment_to_dict,
    experiment_to_json,
    experiment_to_markdown,
    save_experiment,
)

__all__ = [
    "ENGINE_LABELS",
    "ResourceLimits",
    "RunResult",
    "available_engines",
    "run_circuit",
    "run_suite",
    "summarise",
    "table3_experiment",
    "table4_experiment",
    "table5_experiment",
    "table6_experiment",
    "accuracy_experiment",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_accuracy",
    "render_table",
    "experiment_to_dict",
    "experiment_to_json",
    "experiment_to_markdown",
    "save_experiment",
]

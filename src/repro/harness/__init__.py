"""Experiment harness reproducing the paper's evaluation protocol.

The harness mirrors Section IV of the paper:

* every (circuit, engine) pair runs under a wall-clock limit and a memory
  limit and is classified as success / TO / MO / numerical error /
  unsupported — the same outcome classes as the paper's tables;
* :mod:`repro.harness.experiments` defines one experiment per table
  (Tables III–VI) plus the accuracy experiment and the ablations listed in
  DESIGN.md, each with laptop-scale default parameters and a
  ``paper_scale=True`` switch restoring the original qubit counts;
* :mod:`repro.harness.tables` renders collected results in the same row
  layout the paper uses, so the regenerated tables can be compared
  side-by-side with the published ones (see EXPERIMENTS.md).

Command-line entry point::

    python -m repro.harness table3            # regenerate Table III (scaled)
    python -m repro.harness table5 --paper-scale
    python -m repro.harness all --quick
"""

from repro.harness.runner import (
    ENGINES,
    ResourceLimits,
    RunResult,
    run_circuit,
)
from repro.harness.experiments import (
    accuracy_experiment,
    table3_experiment,
    table4_experiment,
    table5_experiment,
    table6_experiment,
)
from repro.harness.tables import (
    format_accuracy,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    render_table,
)
from repro.harness.report import (
    experiment_to_dict,
    experiment_to_json,
    experiment_to_markdown,
    save_experiment,
)

__all__ = [
    "ENGINES",
    "ResourceLimits",
    "RunResult",
    "run_circuit",
    "table3_experiment",
    "table4_experiment",
    "table5_experiment",
    "table6_experiment",
    "accuracy_experiment",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_accuracy",
    "render_table",
    "experiment_to_dict",
    "experiment_to_json",
    "experiment_to_markdown",
    "save_experiment",
]

"""Structural analysis and export helpers for BDDs.

These functions mirror the utility layer a CUDD user gets from the library:
shared node counting across several roots, truth-table export for small
functions (used heavily by the test-suite oracles), enumeration of satisfying
assignments, and a Graphviz ``dot`` dump for debugging.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bdd.expr import Bdd


def count_nodes(roots: Sequence[Bdd]) -> int:
    """Number of distinct nodes shared among ``roots`` (including terminals).

    All roots must belong to the same manager.  An empty sequence counts as 0.
    """
    roots = list(roots)
    if not roots:
        return 0
    manager = roots[0].manager
    for root in roots:
        if root.manager is not manager:
            raise ValueError("roots belong to different managers")
    return manager.count_nodes([root.node for root in roots])


def truth_table(function: Bdd, variables: Sequence[int]) -> List[bool]:
    """Evaluate ``function`` on every assignment of ``variables``.

    The result is indexed by the integer whose *most-significant bit* is
    ``variables[0]`` — the same convention the simulator uses for basis-state
    indices (qubit 0 is the most significant bit).
    """
    num_vars = len(variables)
    table: List[bool] = []
    for index in range(1 << num_vars):
        assignment: Dict[int, bool] = {}
        for position, var in enumerate(variables):
            bit = (index >> (num_vars - 1 - position)) & 1
            assignment[var] = bool(bit)
        table.append(_evaluate_partial(function, assignment))
    return table


def _evaluate_partial(function: Bdd, assignment: Dict[int, bool]) -> bool:
    """Evaluate tolerating assignments that mention variables outside the
    support (extra variables are simply ignored)."""
    manager = function.manager
    node = function.node
    while not manager.is_terminal(node):
        var = manager.node_var(node)
        if var not in assignment:
            raise KeyError(f"assignment missing variable {var} in support")
        node = manager.node_high(node) if assignment[var] else manager.node_low(node)
    return node == 1


def satisfying_assignments(function: Bdd, variables: Sequence[int]) -> List[Dict[int, bool]]:
    """All satisfying assignments of ``function`` over ``variables`` as a list."""
    return list(function.iter_satisfying(variables))


def function_density(function: Bdd, variables: Sequence[int]) -> float:
    """Fraction of assignments over ``variables`` on which the function is 1."""
    total = 1 << len(variables)
    return function.satcount(len(variables)) / total if total else 0.0


def to_dot(roots: Sequence[Bdd], names: Iterable[str] = ()) -> str:
    """Render one or more BDDs as a Graphviz ``dot`` string.

    Solid edges are 1-edges, dashed edges are 0-edges.  Shared nodes are
    rendered once.
    """
    roots = list(roots)
    if not roots:
        return "digraph bdd {\n}\n"
    manager = roots[0].manager
    names = list(names) or [f"f{i}" for i in range(len(roots))]
    lines = ["digraph bdd {", '  rankdir=TB;']
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen = set()
    stack = []
    for name, root in zip(names, roots):
        lines.append(f'  "{name}" [shape=plaintext];')
        lines.append(f'  "{name}" -> node{root.node};')
        stack.append(root.node)
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        var = manager.node_var(node)
        low = manager.node_low(node)
        high = manager.node_high(node)
        lines.append(f'  node{node} [label="x{var}", shape=circle];')
        lines.append(f'  node{node} -> node{low} [style=dashed];')
        lines.append(f'  node{node} -> node{high};')
        stack.append(low)
        stack.append(high)
    lines.append("}")
    return "\n".join(lines) + "\n"


def dag_export(roots: Sequence[Bdd]) -> Dict[str, list]:
    """Canonical, backend- and id-independent serialisation of a shared DAG.

    Nodes reachable from ``roots`` are renumbered 2, 3, ... in depth-first
    postorder (low subtree, then high subtree, then the node itself; roots
    in the given order), so every child reference points backwards; the
    terminals keep their fixed ids 0 and 1.  The result is a
    JSON-ready ``{"roots": [...], "nodes": [[var, low, high], ...]}`` where
    ``nodes[i]`` describes renumbered node ``i + 2``.  Two managers export
    equal values exactly when their DAGs are isomorphic with identical
    variable labels — regardless of raw node ids, so the golden-shape
    fixtures survive changes to allocation order while still pinning the
    exact reduced structure.
    """
    roots = list(roots)
    if not roots:
        return {"roots": [], "nodes": []}
    manager = roots[0].manager
    for root in roots:
        if root.manager is not manager:
            raise ValueError("roots belong to different managers")
    renumber: Dict[int, int] = {0: 0, 1: 1}
    nodes: List[List[int]] = []

    def visit(node: int) -> int:
        known = renumber.get(node)
        if known is not None:
            return known
        low = visit(manager.node_low(node))
        high = visit(manager.node_high(node))
        renumber[node] = len(nodes) + 2
        nodes.append([manager.node_var(node), low, high])
        return renumber[node]

    return {"roots": [visit(root.node) for root in roots], "nodes": nodes}


def shared_size_profile(roots: Sequence[Bdd]) -> Dict[int, int]:
    """Histogram mapping variable index -> number of nodes labelled with it
    across the shared structure of ``roots``."""
    roots = list(roots)
    if not roots:
        return {}
    manager = roots[0].manager
    histogram: Dict[int, int] = {}
    seen = set()
    stack = [root.node for root in roots]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        var = manager.node_var(node)
        histogram[var] = histogram.get(var, 0) + 1
        stack.append(manager.node_low(node))
        stack.append(manager.node_high(node))
    return histogram

"""A from-scratch, pure-Python ROBDD package.

This subpackage is the reproduction's substitute for CUDD (the C decision
diagram package used by the paper's implementation inside ABC).  It provides
everything the bit-sliced simulator needs:

* hash-consed reduced ordered BDD nodes with two terminals,
* the ITE operator plus direct AND / OR / XOR / NOT apply operations with a
  computed-table cache,
* cofactor / restrict, cube cofactor, existential quantification, variable
  composition,
* structural queries: support, node counting, satisfying-assignment counting,
  evaluation, truth-table export,
* mark-and-sweep garbage collection keyed on live :class:`~repro.bdd.expr.Bdd`
  handles, and
* in-place dynamic variable reordering: adjacent-level swaps, Rudell
  sifting and a growth-triggered automatic mode, all preserving every
  registered handle (plus the static order helpers).

The public entry point is :class:`~repro.bdd.manager.BddManager`; user code
manipulates :class:`~repro.bdd.expr.Bdd` handles returned by it.  The node
storage comes in three interchangeable backends (``dict`` / ``array`` /
``compiled``, see :mod:`repro.bdd.substrate`), all producing node-for-node
identical DAGs; :func:`~repro.bdd.substrate.create_manager` selects one at
runtime.
"""

from repro.bdd.manager import BatchApplier, BddManager
from repro.bdd.array_manager import ArrayBddManager
from repro.bdd.substrate import (
    DEFAULT_SUBSTRATE,
    SUBSTRATES,
    available_substrates,
    create_manager,
    resolve_substrate,
)
from repro.bdd.expr import Bdd
from repro.bdd.ordering import natural_order, interleaved_order, sift
from repro.bdd.analysis import (
    count_nodes,
    dag_export,
    satisfying_assignments,
    truth_table,
    to_dot,
)

__all__ = [
    "BatchApplier",
    "BddManager",
    "ArrayBddManager",
    "Bdd",
    "DEFAULT_SUBSTRATE",
    "SUBSTRATES",
    "available_substrates",
    "create_manager",
    "resolve_substrate",
    "natural_order",
    "interleaved_order",
    "sift",
    "count_nodes",
    "dag_export",
    "satisfying_assignments",
    "truth_table",
    "to_dot",
]

"""Variable-order utilities and a rebuild-based sifting heuristic.

The paper's implementation relies on CUDD's dynamic variable reordering
(the symmetric sifting of Panda/Somenzi/Plessier).  This module provides the
equivalent capability for the pure-Python manager:

* :func:`natural_order` / :func:`interleaved_order` — common static orders,
* :func:`sift` — a sifting-style heuristic that moves one variable at a time
  to the position minimising total live node count, rebuilding the registered
  roots under each candidate order.

The rebuild-based sifting is asymptotically more expensive per move than the
in-place level-swap used by CUDD, but it is simple, obviously correct, and
sufficient for the circuit sizes exercised by the Python reproduction.  The
simulator treats reordering as optional (off by default), exactly as dynamic
reordering is a tuning knob in the original tool.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.expr import Bdd
from repro.bdd.manager import BddManager


def natural_order(num_vars: int) -> List[int]:
    """The identity order ``[0, 1, ..., num_vars - 1]``."""
    return list(range(num_vars))


def interleaved_order(groups: Sequence[Sequence[int]]) -> List[int]:
    """Interleave several groups of variables round-robin.

    ``interleaved_order([[0, 1, 2], [3, 4, 5]])`` yields ``[0, 3, 1, 4, 2, 5]``.
    Groups may have different lengths; shorter groups simply run out earlier.
    """
    order: List[int] = []
    longest = max((len(group) for group in groups), default=0)
    for position in range(longest):
        for group in groups:
            if position < len(group):
                order.append(group[position])
    return order


def reversed_order(num_vars: int) -> List[int]:
    """The order ``[num_vars - 1, ..., 1, 0]``."""
    return list(range(num_vars - 1, -1, -1))


def _total_nodes(roots: Sequence[Bdd]) -> int:
    if not roots:
        return 0
    manager = roots[0].manager
    return manager.count_nodes([root.node for root in roots])


def sift(manager: BddManager, roots: Sequence[Bdd],
         max_vars: int = 0, max_growth: float = 1.2) -> Tuple[List[Bdd], List[int]]:
    """Sifting-style reordering of ``manager`` for the functions ``roots``.

    Variables are processed in decreasing order of how many nodes are
    labelled with them; each is tried at every position in the order and left
    at the best one found (smallest shared node count).  ``max_vars`` limits
    how many variables are sifted (0 = all); ``max_growth`` aborts a trial
    early when the node count exceeds ``max_growth`` times the best seen.

    Returns ``(new_roots, new_order)``.  The input handles must not be used
    afterwards (the manager's node store is rebuilt).
    """
    roots = list(roots)
    order = manager.current_order()
    if not roots or manager.num_vars <= 1:
        return roots, order

    # Count label frequency per variable to choose the sifting schedule.
    label_count = {var: 0 for var in order}
    seen = set()
    stack = [root.node for root in roots]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        label_count[manager.node_var(node)] += 1
        stack.append(manager.node_low(node))
        stack.append(manager.node_high(node))

    schedule = sorted(label_count, key=lambda var: -label_count[var])
    if max_vars:
        schedule = schedule[:max_vars]

    # ``current_roots`` always holds handles valid under the manager's
    # *current* order; any call to ``set_order`` invalidates older handles,
    # so every trial threads the latest handles through.
    current_roots = roots
    best_order = list(order)
    best_size = _total_nodes(roots)

    for var in schedule:
        for position in range(len(best_order)):
            candidate = [v for v in best_order if v != var]
            candidate.insert(position, var)
            if candidate == manager.current_order():
                size = _total_nodes(current_roots)
            else:
                current_roots = manager.set_order(candidate, current_roots)
                size = _total_nodes(current_roots)
            if size < best_size:
                best_size = size
                best_order = candidate
            elif size > max_growth * best_size and candidate != best_order:
                # Return to the best order so the working set stays small
                # before probing further positions.
                current_roots = manager.set_order(best_order, current_roots)
        # End this variable's pass on the best order found so far.
        if manager.current_order() != best_order:
            current_roots = manager.set_order(best_order, current_roots)

    return current_roots, best_order

"""Variable-order utilities on top of the manager's in-place reordering.

The paper's implementation relies on CUDD's dynamic variable reordering
(the symmetric sifting of Panda/Somenzi/Plessier).  This module provides the
equivalent capability for the pure-Python manager:

* :func:`natural_order` / :func:`interleaved_order` — common static orders,
* :func:`sift` — Rudell sifting, delegating to
  :meth:`repro.bdd.manager.BddManager.sift`: each variable is moved through
  every level by **in-place adjacent swaps** and left at the position
  minimising the live node count.

Historically this module carried a rebuild-based sifting loop (every trial
position rebuilt all roots via ITE under a fresh node store).  The manager
now swaps adjacent levels in place — node ids keep their functions, so
every registered handle survives a reorder — which made the rebuild path,
and its silent invalidation of handles not passed as roots, obsolete.
The simulator treats reordering as optional (off by default), exactly as
dynamic reordering is a tuning knob in the original tool; see
``BddManager.auto_reorder_threshold`` for the growth-triggered automatic
mode.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.expr import Bdd
from repro.bdd.manager import BddManager


def natural_order(num_vars: int) -> List[int]:
    """The identity order ``[0, 1, ..., num_vars - 1]``."""
    return list(range(num_vars))


def interleaved_order(groups: Sequence[Sequence[int]]) -> List[int]:
    """Interleave several groups of variables round-robin.

    ``interleaved_order([[0, 1, 2], [3, 4, 5]])`` yields ``[0, 3, 1, 4, 2, 5]``.
    Groups may have different lengths; shorter groups simply run out earlier.
    """
    order: List[int] = []
    longest = max((len(group) for group in groups), default=0)
    for position in range(longest):
        for group in groups:
            if position < len(group):
                order.append(group[position])
    return order


def reversed_order(num_vars: int) -> List[int]:
    """The order ``[num_vars - 1, ..., 1, 0]``."""
    return list(range(num_vars - 1, -1, -1))


def sift(manager: BddManager, roots: Sequence[Bdd],
         max_vars: int = 0, max_growth: float = 1.2) -> Tuple[List[Bdd], List[int]]:
    """Sifting-style reordering of ``manager`` (Rudell's algorithm, in place).

    Delegates to :meth:`~repro.bdd.manager.BddManager.sift`: variables are
    processed in decreasing order of how many nodes carry their label, each
    is moved through all levels by adjacent swaps and left at the best
    position found (smallest live node count).  ``max_vars`` limits how
    many variables are sifted (0 = all); ``max_growth`` aborts a direction
    early when the node count exceeds ``max_growth`` times the best seen.

    Because the swaps are in place, *every* handle registered with the
    manager stays valid — the size metric covers all of them, not only
    ``roots``.  Returns ``(new_roots, new_order)`` for backwards
    compatibility: ``new_roots`` are fresh handles to the same (unchanged)
    root nodes, and the input handles remain usable as well.
    """
    roots = list(roots)
    if not roots or manager.num_vars <= 1:
        return roots, manager.current_order()
    manager.sift(max_vars=max_vars, max_growth=max_growth)
    return ([Bdd(manager, root.node) for root in roots],
            manager.current_order())

"""Optional numba-compiled apply kernel over the array substrate.

:class:`CompiledBddManager` extends :class:`~repro.bdd.array_manager.ArrayBddManager`
with a compiled hot loop for the commutative binary connectives (AND / OR /
XOR, plus the NOT sub-walks XOR's terminal rule needs): the explicit-stack
apply of :meth:`BddManager._apply_binary` re-expressed over flat ``int64``
scratch arrays and open-addressed unique / computed tables, so numba can
JIT the whole walk with zero object-mode round trips.

Layout
------
* Node columns are the inherited ``array.array('i')`` buffers, read through
  zero-copy ``int32`` views.  The kernel never writes them: freshly interned
  nodes are recorded in a *new-node log* (``(id, var, low, high)`` rows) the
  host replays after the call — binary apply never reads the columns of a
  node it just created, so the log can stay scratch-only.
* Open-addressed tables pack triples into 21-bit fields
  (``(var << 42) | (low << 21) | high``); computed keys carry the op tag in
  the top field.  Linear probing with a Knuth multiplicative start slot;
  the host mirrors every probe sequence bit-for-bit (plain-int arithmetic
  and wrapped ``int64`` arithmetic agree on the masked low bits).
* All mutable scalars travel in one ``int64`` state vector so the helpers
  can update them in place under numba's nopython calling convention.

Node-identity contract
----------------------
The kernel replays the visit / build discipline of the interpreted
explicit-stack apply exactly (push build, high, low; pop low first), and
recomputing a subproblem the interpreted backend would have found in its
computed table creates no nodes (every find-or-create hits the unique
table), so computed-table divergence between backends never changes which
nodes are created or in what order.  The differential harness in
``tests/substrate`` pins this.

Fallback contract
-----------------
Without numba the kernel functions run as plain Python — same code,
interpreted — so the backend stays *testable* everywhere; the substrate
registry simply refuses to *select* it (``repro.bdd.substrate`` resolves
``compiled`` to ``array``) because an interpreted kernel is strictly slower
than the tuned closures it replaces.  Managers whose node ids or variable
indices outgrow the 21-bit packing abort the kernel cleanly (the partial
new-node log is still committed — every logged node is a valid interned
node) and fall back to the inherited interpreted path, counted by the
``compiled_fallbacks`` perf counter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as _host_np

from repro.bdd.array_manager import _VAR_SHIFT, ArrayBddManager
from repro.bdd.manager import _KEY_BITS, OP_AND, OP_NOT, OP_OR, OP_XOR

try:  # pragma: no cover - absent in the no-numba environments
    from numba import njit as _njit

    HAS_NUMBA = True
except ImportError:
    _njit = None
    HAS_NUMBA = False

np = _host_np

#: Field width of the packed 64-bit table keys: node ids and variable
#: indices must stay below ``1 << 21`` for the kernel to engage.
FIELD_BITS = 21
FIELD_LIMIT = 1 << FIELD_BITS

#: Empty-slot sentinel of the open-addressed tables (valid keys are > 0).
_EMPTY = -1

#: Knuth multiplicative-hash constant; the masked product's low bits agree
#: between arbitrary-precision host ints and wrapped int64 arithmetic.
_MULT = 2654435761

# State-vector indices (one int64 slot per mutable scalar).
_S_FREE_TOP = 0      # unconsumed entries remaining in the free-list snapshot
_S_NEW_COUNT = 1     # rows used in the new-node log
_S_NEXT_ID = 2       # next appended node id
_S_UCOUNT = 3        # occupied slots in the unique table
_S_CCOUNT = 4        # occupied slots in the computed table
_S_HITS = 5          # binary computed-table hits
_S_MISSES = 6
_S_UPROBES = 7
_S_UINSERTS = 8
_S_NOT_HITS = 9      # NOT sub-walk computed-table hits
_S_NOT_MISSES = 10
_S_STATUS = 11       # 0 ok, 1 = id space exhausted (host falls back)
_STATE_SLOTS = 12


def _grow_table(keys, vals):
    """Double an open-addressed table, rehashing every occupied slot."""
    cap = keys.shape[0] * 2
    mask = cap - 1
    new_keys = np.full(cap, _EMPTY, np.int64)
    new_vals = np.empty(cap, np.int64)
    for i in range(keys.shape[0]):
        key = int(keys[i])
        if key == _EMPTY:
            continue
        slot = (key * _MULT) & mask
        while int(new_keys[slot]) != _EMPTY:
            slot = (slot + 1) & mask
        new_keys[slot] = key
        new_vals[slot] = vals[i]
    return new_keys, new_vals


def _grow1(arr):
    """Double a flat int64 scratch array, keeping its contents."""
    out = np.empty(arr.shape[0] * 2, np.int64)
    out[: arr.shape[0]] = arr
    return out


def _cache_get(key, ckeys, cvals):
    """Probe the computed table; -1 on miss (node ids are non-negative)."""
    mask = ckeys.shape[0] - 1
    slot = (key * _MULT) & mask
    while True:
        k = int(ckeys[slot])
        if k == key:
            return int(cvals[slot])
        if k == _EMPTY:
            return -1
        slot = (slot + 1) & mask


def _cache_put(key, node, ckeys, cvals, st):
    """Insert / overwrite a computed-table entry, growing at 5/8 load."""
    if (int(st[_S_CCOUNT]) + 1) * 8 > ckeys.shape[0] * 5:
        ckeys, cvals = _grow_table(ckeys, cvals)
    mask = ckeys.shape[0] - 1
    slot = (key * _MULT) & mask
    while True:
        k = int(ckeys[slot])
        if k == key:
            cvals[slot] = node
            return ckeys, cvals
        if k == _EMPTY:
            ckeys[slot] = key
            cvals[slot] = node
            st[_S_CCOUNT] += 1
            return ckeys, cvals
        slot = (slot + 1) & mask


def _intern(var, low, high, free_arr, new_log, ukeys, uvals, st):
    """Find-or-create on the open-addressed unique table.

    Mirrors :meth:`BddManager._interner` exactly: the ``low == high``
    reduction, free-list reuse popping from the end, then fresh append ids.
    New nodes are recorded in the log (the host writes the columns).  On id
    exhaustion sets the status flag and returns -1.
    """
    if low == high:
        return low, new_log, ukeys, uvals
    key = (var << 42) | (low << FIELD_BITS) | high
    st[_S_UPROBES] += 1
    mask = ukeys.shape[0] - 1
    slot = (key * _MULT) & mask
    while True:
        k = int(ukeys[slot])
        if k == key:
            return int(uvals[slot]), new_log, ukeys, uvals
        if k == _EMPTY:
            break
        slot = (slot + 1) & mask
    st[_S_UINSERTS] += 1
    if int(st[_S_FREE_TOP]) > 0:
        st[_S_FREE_TOP] -= 1
        node = int(free_arr[int(st[_S_FREE_TOP])])
    else:
        node = int(st[_S_NEXT_ID])
        if node >= FIELD_LIMIT:
            st[_S_STATUS] = 1
            return -1, new_log, ukeys, uvals
        st[_S_NEXT_ID] = node + 1
    row = int(st[_S_NEW_COUNT])
    if row >= new_log.shape[0]:
        bigger = np.empty((new_log.shape[0] * 2, 4), np.int64)
        bigger[:row] = new_log[:row]
        new_log = bigger
    new_log[row, 0] = node
    new_log[row, 1] = var
    new_log[row, 2] = low
    new_log[row, 3] = high
    st[_S_NEW_COUNT] = row + 1
    if (int(st[_S_UCOUNT]) + 1) * 8 > ukeys.shape[0] * 5:
        ukeys, uvals = _grow_table(ukeys, uvals)
        mask = ukeys.shape[0] - 1
        slot = (key * _MULT) & mask
        while int(ukeys[slot]) != _EMPTY:
            slot = (slot + 1) & mask
    ukeys[slot] = key
    uvals[slot] = node
    st[_S_UCOUNT] += 1
    return node, new_log, ukeys, uvals


def _not_walk(root, var_col, low_col, high_col, free_arr, new_log,
              ukeys, uvals, ckeys, cvals, st):
    """Explicit-stack negation (XOR's ``a == 1`` rule), mirroring
    :meth:`BddManager._apply_not_iter` node for node."""
    kind_s = np.empty(256, np.int64)
    a_s = np.empty(256, np.int64)
    kind_s[0] = 0
    a_s[0] = root
    sp = 1
    rstack = np.empty(256, np.int64)
    rsp = 0
    while sp > 0:
        sp -= 1
        kind = int(kind_s[sp])
        a = int(a_s[sp])
        if sp + 3 >= kind_s.shape[0]:
            kind_s = _grow1(kind_s)
            a_s = _grow1(a_s)
        if rsp + 1 >= rstack.shape[0]:
            rstack = _grow1(rstack)
        if kind == 1:
            rsp -= 1
            high = int(rstack[rsp])
            rsp -= 1
            low = int(rstack[rsp])
            node, new_log, ukeys, uvals = _intern(
                int(var_col[a]), low, high, free_arr, new_log, ukeys, uvals, st)
            if int(st[_S_STATUS]) != 0:
                return -1, new_log, ukeys, uvals, ckeys, cvals
            ckeys, cvals = _cache_put((OP_NOT << 42) | a, node, ckeys, cvals, st)
            rstack[rsp] = node
            rsp += 1
            continue
        if a < 2:
            rstack[rsp] = a ^ 1
            rsp += 1
            continue
        cached = _cache_get((OP_NOT << 42) | a, ckeys, cvals)
        if cached >= 0:
            st[_S_NOT_HITS] += 1
            rstack[rsp] = cached
            rsp += 1
            continue
        st[_S_NOT_MISSES] += 1
        kind_s[sp] = 1
        a_s[sp] = a
        kind_s[sp + 1] = 0
        a_s[sp + 1] = int(high_col[a])
        kind_s[sp + 2] = 0
        a_s[sp + 2] = int(low_col[a])
        sp += 3
    return int(rstack[0]), new_log, ukeys, uvals, ckeys, cvals


def _binary_kernel(op, root_f, root_g, var_col, low_col, high_col, v2l,
                   free_arr, ukeys, uvals, ckeys, cvals, new_log, st):
    """Explicit-stack commutative binary apply over flat arrays.

    A faithful port of :meth:`BddManager._apply_binary` (same task
    discipline: push build / high / low, pop low first; same terminal and
    canonicalisation rules), with dict probes replaced by open-addressed
    table probes.  Returns the result node and the (possibly reallocated)
    log and tables; -1 with status set means the id space ran out and the
    host must fall back after committing the partial log.
    """
    kind_s = np.empty(1024, np.int64)
    a_s = np.empty(1024, np.int64)
    b_s = np.empty(1024, np.int64)
    kind_s[0] = 0
    a_s[0] = root_f
    b_s[0] = root_g
    sp = 1
    rstack = np.empty(1024, np.int64)
    rsp = 0
    while sp > 0:
        sp -= 1
        kind = int(kind_s[sp])
        a = int(a_s[sp])
        b = int(b_s[sp])
        if sp + 3 >= kind_s.shape[0]:
            kind_s = _grow1(kind_s)
            a_s = _grow1(a_s)
            b_s = _grow1(b_s)
        if rsp + 1 >= rstack.shape[0]:
            rstack = _grow1(rstack)
        if kind == 1:
            # Build: a = branching variable, b = computed-table key.
            rsp -= 1
            high = int(rstack[rsp])
            rsp -= 1
            low = int(rstack[rsp])
            node, new_log, ukeys, uvals = _intern(
                a, low, high, free_arr, new_log, ukeys, uvals, st)
            if int(st[_S_STATUS]) != 0:
                return -1, new_log, ukeys, uvals, ckeys, cvals
            ckeys, cvals = _cache_put(b, node, ckeys, cvals, st)
            rstack[rsp] = node
            rsp += 1
            continue
        # Visit: a, b are operand node ids.  Terminal rules first.
        if op == OP_AND:
            if a == 0 or b == 0:
                rstack[rsp] = 0
                rsp += 1
                continue
            if a == 1:
                rstack[rsp] = b
                rsp += 1
                continue
            if b == 1 or a == b:
                rstack[rsp] = a
                rsp += 1
                continue
        elif op == OP_OR:
            if a == 1 or b == 1:
                rstack[rsp] = 1
                rsp += 1
                continue
            if a == 0:
                rstack[rsp] = b
                rsp += 1
                continue
            if b == 0 or a == b:
                rstack[rsp] = a
                rsp += 1
                continue
        else:  # OP_XOR
            if a == b:
                rstack[rsp] = 0
                rsp += 1
                continue
            if a == 0:
                rstack[rsp] = b
                rsp += 1
                continue
            if b == 0:
                rstack[rsp] = a
                rsp += 1
                continue
            if a == 1 or b == 1:
                operand = b if a == 1 else a
                node, new_log, ukeys, uvals, ckeys, cvals = _not_walk(
                    operand, var_col, low_col, high_col, free_arr, new_log,
                    ukeys, uvals, ckeys, cvals, st)
                if int(st[_S_STATUS]) != 0:
                    return -1, new_log, ukeys, uvals, ckeys, cvals
                rstack[rsp] = node
                rsp += 1
                continue
        if a > b:
            a, b = b, a
        key = (op << 42) | (a << FIELD_BITS) | b
        cached = _cache_get(key, ckeys, cvals)
        if cached >= 0:
            st[_S_HITS] += 1
            rstack[rsp] = cached
            rsp += 1
            continue
        st[_S_MISSES] += 1
        avar = int(var_col[a])
        bvar = int(var_col[b])
        alev = int(v2l[avar])
        blev = int(v2l[bvar])
        if alev == blev:
            kind_s[sp] = 1
            a_s[sp] = avar
            b_s[sp] = key
            kind_s[sp + 1] = 0
            a_s[sp + 1] = int(high_col[a])
            b_s[sp + 1] = int(high_col[b])
            kind_s[sp + 2] = 0
            a_s[sp + 2] = int(low_col[a])
            b_s[sp + 2] = int(low_col[b])
        elif alev < blev:
            kind_s[sp] = 1
            a_s[sp] = avar
            b_s[sp] = key
            kind_s[sp + 1] = 0
            a_s[sp + 1] = int(high_col[a])
            b_s[sp + 1] = b
            kind_s[sp + 2] = 0
            a_s[sp + 2] = int(low_col[a])
            b_s[sp + 2] = b
        else:
            kind_s[sp] = 1
            a_s[sp] = bvar
            b_s[sp] = key
            kind_s[sp + 1] = 0
            a_s[sp + 1] = a
            b_s[sp + 1] = int(high_col[b])
            kind_s[sp + 2] = 0
            a_s[sp + 2] = a
            b_s[sp + 2] = int(low_col[b])
        sp += 3
    return int(rstack[0]), new_log, ukeys, uvals, ckeys, cvals


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _grow_table = _njit(cache=True)(_grow_table)
    _grow1 = _njit(cache=True)(_grow1)
    _cache_get = _njit(cache=True)(_cache_get)
    _cache_put = _njit(cache=True)(_cache_put)
    _intern = _njit(cache=True)(_intern)
    _not_walk = _njit(cache=True)(_not_walk)
    _binary_kernel = _njit(cache=True)(_binary_kernel)


def _next_pow2(value: int) -> int:
    return 1 << max(11, (value - 1).bit_length() if value > 1 else 1)


class _OpenTables:
    """The kernel-side open-addressed unique / computed tables."""

    __slots__ = ("ukeys", "uvals", "ckeys", "cvals", "ucount", "ccount")

    def __init__(self, ucap: int):
        self.ukeys = np.full(ucap, _EMPTY, np.int64)
        self.uvals = np.empty(ucap, np.int64)
        self.ckeys = np.full(2048, _EMPTY, np.int64)
        self.cvals = np.empty(2048, np.int64)
        self.ucount = 0
        self.ccount = 0

    def clear_cache(self) -> None:
        self.ckeys.fill(_EMPTY)
        self.ccount = 0


class CompiledBddManager(ArrayBddManager):
    """Array substrate plus the compiled binary-apply kernel.

    Parameters are those of :class:`~repro.bdd.manager.BddManager` plus
    ``jit``: ``None`` uses numba when importable and the interpreted
    kernel otherwise; ``True`` requires numba (raising ``ImportError``
    without it); ``False`` forces the interpreted kernel (the differential
    tests use this to exercise the kernel code path everywhere).
    """

    substrate_name = "compiled"
    _backend_index = 2

    def __init__(self, num_vars: int = 0,
                 auto_gc_threshold: Optional[int] = 1_000_000,
                 cache_size_limit: Optional[int] = 2_000_000,
                 auto_reorder_threshold: Optional[int] = None,
                 jit: Optional[bool] = None):
        if jit is True and not HAS_NUMBA:
            raise ImportError("CompiledBddManager(jit=True) requires numba")
        super().__init__(num_vars, auto_gc_threshold=auto_gc_threshold,
                         cache_size_limit=cache_size_limit,
                         auto_reorder_threshold=auto_reorder_threshold)
        self.jit_enabled = bool(HAS_NUMBA) if jit is None else bool(jit)
        self._oa: Optional[_OpenTables] = None
        self._oa_dirty = True
        self._oa_overflow = False
        self._compiled_calls = 0
        self._compiled_fallbacks = 0

    # ------------------------------------------------------------------ #
    # table synchronisation
    # ------------------------------------------------------------------ #
    def _kernel_ready(self) -> bool:
        """Whether the next binary apply may run in the kernel."""
        return (not self._oa_overflow
                and len(self._var) < FIELD_LIMIT
                and self.num_vars < FIELD_LIMIT)

    def _sync_tables(self) -> _OpenTables:
        """Rebuild the open-addressed tables from the unique dict after an
        invalidation (GC / reorder / clear), re-packing the 30-bit dict
        keys into the kernel's 21-bit fields."""
        tables = self._oa
        if tables is not None and not self._oa_dirty:
            return tables
        entries = len(self._unique)
        tables = _OpenTables(_next_pow2(2 * entries))
        ukeys = tables.ukeys
        uvals = tables.uvals
        mask = ukeys.shape[0] - 1
        low_mask = (1 << _KEY_BITS) - 1
        for packed, node in self._unique.items():
            var = packed >> _VAR_SHIFT
            low = (packed >> _KEY_BITS) & low_mask
            high = packed & low_mask
            key = (var << 42) | (low << FIELD_BITS) | high
            slot = (key * _MULT) & mask
            while int(ukeys[slot]) != _EMPTY:
                slot = (slot + 1) & mask
            ukeys[slot] = key
            uvals[slot] = node
        tables.ucount = entries
        self._oa = tables
        self._oa_dirty = False
        return tables

    def _invalidate_caches(self) -> None:
        super()._invalidate_caches()
        # Node ids may be recycled (GC) or relabelled (reorder) after this:
        # both open-addressed tables belong to the dead generation.
        self._oa_dirty = True

    def _oa_write_through(self, var: int, low: int, high: int, node: int) -> None:
        """Mirror a Python-side unique-table insert into the kernel table
        so later kernel calls cannot re-create an existing node."""
        tables = self._oa
        if tables is None or self._oa_dirty:
            return
        if (var >= FIELD_LIMIT or low >= FIELD_LIMIT or high >= FIELD_LIMIT
                or node >= FIELD_LIMIT):
            self._oa_overflow = True
            return
        if (tables.ucount + 1) * 8 > tables.ukeys.shape[0] * 5:
            tables.ukeys, tables.uvals = _grow_table(tables.ukeys, tables.uvals)
        key = (var << 42) | (low << FIELD_BITS) | high
        ukeys = tables.ukeys
        mask = ukeys.shape[0] - 1
        slot = (key * _MULT) & mask
        while int(ukeys[slot]) != _EMPTY:
            if int(ukeys[slot]) == key:
                return
            slot = (slot + 1) & mask
        ukeys[slot] = key
        tables.uvals[slot] = node
        tables.ucount += 1

    def _mk(self, var: int, low: int, high: int) -> int:
        before = len(self._unique)
        node = super()._mk(var, low, high)
        if len(self._unique) != before:
            self._oa_write_through(var, low, high, node)
        return node

    def _interner(self):
        # Always wrap: a worker bound while the tables were dirty can call
        # apply_and / apply_or mid-recursion (the ITE terminal rules do),
        # whose kernel dispatch rebuilds the tables and clears the dirty
        # flag — after which the outer worker's creations must sync too.
        # _oa_write_through re-checks dirtiness at call time, so wrapping
        # is correct in every interleaving.
        make, counts = super()._interner()
        unique = self._unique
        write_through = self._oa_write_through

        def make_synced(var: int, low: int, high: int) -> int:
            before = len(unique)
            node = make(var, low, high)
            if len(unique) != before:
                write_through(var, low, high, node)
            return node

        return make_synced, counts

    # ------------------------------------------------------------------ #
    # kernel dispatch
    # ------------------------------------------------------------------ #
    def _binary_via_kernel(self, op: int, f: int, g: int) -> int:
        """Run one canonicalised binary apply through the kernel, then
        replay its new-node log into the Python-side stores."""
        tables = self._sync_tables()
        var_view, low_view, high_view = self._column_views()
        v2l = np.array(self._var_to_level, np.int64)
        free = self._free
        free_arr = np.array(free, np.int64) if free else np.empty(0, np.int64)
        new_log = np.empty((1024, 4), np.int64)
        st = np.zeros(_STATE_SLOTS, np.int64)
        st[_S_FREE_TOP] = len(free)
        st[_S_NEXT_ID] = len(self._var)
        st[_S_UCOUNT] = tables.ucount
        st[_S_CCOUNT] = tables.ccount
        self._compiled_calls += 1
        result, new_log, ukeys, uvals, ckeys, cvals = _binary_kernel(
            op, f, g, var_view, low_view, high_view, v2l, free_arr,
            tables.ukeys, tables.uvals, tables.ckeys, tables.cvals,
            new_log, st)
        # The views pin the column buffers (array.array refuses to resize
        # while a buffer is exported); release them before the appends.
        del var_view, low_view, high_view
        tables.ukeys = ukeys
        tables.uvals = uvals
        tables.ckeys = ckeys
        tables.cvals = cvals
        tables.ucount = int(st[_S_UCOUNT])
        tables.ccount = int(st[_S_CCOUNT])
        # Commit: consume the free slots the kernel popped, then replay the
        # new-node log in creation order (appended ids are contiguous, and
        # dict insertion order must equal creation order — the GC sweep's
        # free-list order depends on it).
        del free[int(st[_S_FREE_TOP]):]
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        for node, var, low, high in new_log[: int(st[_S_NEW_COUNT])].tolist():
            if node == len(var_arr):
                var_arr.append(var)
                low_arr.append(low)
                high_arr.append(high)
            else:
                var_arr[node] = var
                low_arr[node] = low
                high_arr[node] = high
            unique[(var << _VAR_SHIFT) | (low << _KEY_BITS) | high] = node
        self._op_hits[op] += int(st[_S_HITS])
        self._op_misses[op] += int(st[_S_MISSES])
        self._op_hits[OP_NOT] += int(st[_S_NOT_HITS])
        self._op_misses[OP_NOT] += int(st[_S_NOT_MISSES])
        self._unique_probes += int(st[_S_UPROBES])
        self._unique_inserts += int(st[_S_UINSERTS])
        limit = self._cache_size_limit
        if limit is not None and tables.ccount > limit:
            tables.clear_cache()
            self._cache_evictions += 1
        self._after_operation(op, self._tables[op])
        if int(st[_S_STATUS]) != 0:
            # Id space exhausted mid-walk.  Every logged node was committed
            # above (all are valid interned nodes), so the interpreted path
            # simply finishes the remaining work.
            self._oa_overflow = True
            self._compiled_fallbacks += 1
            return self._interpreted_binary(op, f, g)
        return result

    def _interpreted_binary(self, op: int, f: int, g: int) -> int:
        if op == OP_AND:
            return super().apply_and(f, g)
        if op == OP_OR:
            return super().apply_or(f, g)
        return super().apply_xor(f, g)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two node ids (kernel-dispatched)."""
        if f == 0 or g == 0:
            return 0
        if f == 1:
            return g
        if g == 1 or f == g:
            return f
        if not self._kernel_ready():
            self._compiled_fallbacks += 1
            return super().apply_and(f, g)
        if f > g:
            f, g = g, f
        return self._binary_via_kernel(OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two node ids (kernel-dispatched)."""
        if f == 1 or g == 1:
            return 1
        if f == 0:
            return g
        if g == 0 or f == g:
            return f
        if not self._kernel_ready():
            self._compiled_fallbacks += 1
            return super().apply_or(f, g)
        if f > g:
            f, g = g, f
        return self._binary_via_kernel(OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two node ids (kernel-dispatched)."""
        if f == g:
            return 0
        if f == 0:
            return g
        if g == 0:
            return f
        if f == 1:
            return self.apply_not(g)
        if g == 1:
            return self.apply_not(f)
        if not self._kernel_ready():
            self._compiled_fallbacks += 1
            return super().apply_xor(f, g)
        if f > g:
            f, g = g, f
        return self._binary_via_kernel(OP_XOR, f, g)

    def batch_binary(self, op: int, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Batched binary apply: each pair dispatches to the kernel (the
        open-addressed tables persist across the batch, playing the role
        of the shared computed-table binding)."""
        pairs = list(pairs)
        if not pairs:
            return []
        if not self._kernel_ready():
            return super().batch_binary(op, pairs)
        self._count_batch(len(pairs))
        apply_one = (self.apply_and, self.apply_or, self.apply_xor)[op]
        return [apply_one(f, g) for f, g in pairs]

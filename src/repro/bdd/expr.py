"""User-facing BDD handles.

A :class:`Bdd` is a lightweight, immutable handle pairing a manager with a
node id.  Handles register themselves with the manager as external references
so that garbage collection keeps everything reachable from a live handle.

Handles support the natural Boolean operators::

    f & g       conjunction
    f | g       disjunction
    f ^ g       exclusive or
    ~f          negation
    f.ite(g, h) if-then-else
    f.cofactor(var, value)
    f.compose(var, g)
    f.exists(vars)

Equality between handles of the same manager is semantic equality of the
Boolean functions (which, for ROBDDs, is node-id equality).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.bdd.manager import BddManager


class Bdd:
    """Handle to a node owned by a :class:`~repro.bdd.manager.BddManager`."""

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: "BddManager", node: int):
        self.manager = manager
        self.node = node
        manager._incref(node)

    def __del__(self):  # pragma: no cover - depends on interpreter GC timing
        try:
            self.manager._decref(self.node)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # constants and structure
    # ------------------------------------------------------------------ #
    def is_false(self) -> bool:
        """True iff this is the constant-false function."""
        from repro.bdd.manager import FALSE

        return self.node == FALSE

    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        from repro.bdd.manager import TRUE

        return self.node == TRUE

    def is_terminal(self) -> bool:
        """True for either constant."""
        return self.manager.is_terminal(self.node)

    @property
    def top_var(self) -> Optional[int]:
        """Variable index decided at the root, or ``None`` for constants."""
        if self.is_terminal():
            return None
        return self.manager.node_var(self.node)

    @property
    def low(self) -> "Bdd":
        """The 0-child (cofactor of the top variable at 0)."""
        if self.is_terminal():
            raise ValueError("terminal nodes have no children")
        return Bdd(self.manager, self.manager.node_low(self.node))

    @property
    def high(self) -> "Bdd":
        """The 1-child (cofactor of the top variable at 1)."""
        if self.is_terminal():
            raise ValueError("terminal nodes have no children")
        return Bdd(self.manager, self.manager.node_high(self.node))

    # ------------------------------------------------------------------ #
    # Boolean operations
    # ------------------------------------------------------------------ #
    def _check_same_manager(self, other: "Bdd") -> None:
        if self.manager is not other.manager:
            raise ValueError("cannot combine BDDs from different managers")

    def __and__(self, other: "Bdd") -> "Bdd":
        self._check_same_manager(other)
        return Bdd(self.manager, self.manager.apply_and(self.node, other.node))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check_same_manager(other)
        return Bdd(self.manager, self.manager.apply_or(self.node, other.node))

    def __xor__(self, other: "Bdd") -> "Bdd":
        self._check_same_manager(other)
        return Bdd(self.manager, self.manager.apply_xor(self.node, other.node))

    def __invert__(self) -> "Bdd":
        return Bdd(self.manager, self.manager.apply_not(self.node))

    def ite(self, then_bdd: "Bdd", else_bdd: "Bdd") -> "Bdd":
        """If-then-else with ``self`` as the condition."""
        self._check_same_manager(then_bdd)
        self._check_same_manager(else_bdd)
        return Bdd(self.manager,
                   self.manager.apply_ite(self.node, then_bdd.node, else_bdd.node))

    def implies(self, other: "Bdd") -> "Bdd":
        """Logical implication ``self -> other``."""
        return (~self) | other

    def equiv(self, other: "Bdd") -> "Bdd":
        """Logical equivalence ``self <-> other``."""
        return ~(self ^ other)

    def maj3(self, other: "Bdd", third: "Bdd") -> "Bdd":
        """Fused three-operand majority (the full-adder carry):
        ``self·other + self·third + other·third`` in a single recursion."""
        self._check_same_manager(other)
        self._check_same_manager(third)
        return Bdd(self.manager,
                   self.manager.apply_maj3(self.node, other.node, third.node))

    def xor3(self, other: "Bdd", third: "Bdd") -> "Bdd":
        """Fused three-operand exclusive-or (the full-adder sum):
        ``self ^ other ^ third`` in a single recursion."""
        self._check_same_manager(other)
        self._check_same_manager(third)
        return Bdd(self.manager,
                   self.manager.apply_xor3(self.node, other.node, third.node))

    def swap_vars(self, var_a: int, var_b: int) -> "Bdd":
        """The function with the roles of ``var_a`` / ``var_b`` exchanged
        (the Boolean action of a SWAP gate), in one cofactor-based pass."""
        return Bdd(self.manager, self.manager.apply_swap_vars(self.node, var_a, var_b))

    def cofactor(self, var: int, value: bool) -> "Bdd":
        """Positive/negative cofactor with respect to ``var``."""
        return Bdd(self.manager, self.manager.apply_restrict(self.node, var, value))

    def cofactor_cube(self, assignments: Sequence[Tuple[int, bool]]) -> "Bdd":
        """Cofactor with respect to a cube of ``(var, value)`` literals."""
        return Bdd(self.manager, self.manager.apply_restrict_cube(self.node, assignments))

    def compose(self, var: int, function: "Bdd") -> "Bdd":
        """Substitute ``function`` for ``var``."""
        self._check_same_manager(function)
        return Bdd(self.manager, self.manager.apply_compose(self.node, var, function.node))

    def exists(self, variables: Sequence[int]) -> "Bdd":
        """Existentially quantify ``variables``."""
        return Bdd(self.manager, self.manager.apply_exists(self.node, variables))

    def forall(self, variables: Sequence[int]) -> "Bdd":
        """Universally quantify ``variables``."""
        return ~((~self).exists(variables))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under an assignment covering the support."""
        return self.manager.evaluate(self.node, assignment)

    def support(self) -> List[int]:
        """Sorted variable indices the function depends on."""
        return self.manager.support(self.node)

    def satcount(self, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        return self.manager.satcount(self.node, num_vars)

    def count_nodes(self) -> int:
        """Number of BDD nodes (including terminals) in this function."""
        return self.manager.count_nodes([self.node])

    def iter_satisfying(self, variables: Sequence[int]):
        """Iterate satisfying assignments over ``variables``."""
        return self.manager.iter_satisfying(self.node, variables)

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bdd):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError("Bdd truthiness is ambiguous; use is_true()/is_false()")

    def __repr__(self) -> str:
        if self.is_false():
            return "Bdd(FALSE)"
        if self.is_true():
            return "Bdd(TRUE)"
        return f"Bdd(node={self.node}, top_var={self.top_var})"

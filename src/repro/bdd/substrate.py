"""Substrate backend registry: selection, fallback and construction.

Three backends implement the same :class:`~repro.bdd.manager.BddManager`
contract (same API, and — pinned by the differential harness in
``tests/substrate`` — node-for-node identical DAGs for the same operation
sequence):

``dict``
    The tuned pure-Python manager: list columns, tuple-keyed unique table.
    Always available; the default and the fallback of last resort.
``array``
    :class:`~repro.bdd.array_manager.ArrayBddManager`: ``array.array('i')``
    typed columns and packed single-int unique keys, with numpy-vectorised
    GC / reachability walks when numpy is importable.  Always available
    (the ``array`` module is stdlib; numpy only accelerates it).
``compiled``
    :class:`~repro.bdd._compiled.CompiledBddManager`: the array substrate
    plus a numba-JIT binary-apply kernel.  Selectable only when numba is
    importable; requesting it without numba resolves to ``array`` (the
    same storage layout minus the kernel) — the *fallback contract*
    documented in ``docs/substrate.md`` and pinned by the no-numba CI job.

``auto`` resolves to the fastest selectable backend: ``compiled`` with
numba, else ``dict`` (whose tuned closures beat the interpreted kernel).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bdd.array_manager import ArrayBddManager
from repro.bdd.manager import BddManager

try:  # numpy accelerates the array backend's walks; optional.
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    _np = None
    HAS_NUMPY = False

try:  # the kernel module needs numpy even in interpreted mode
    from repro.bdd._compiled import HAS_NUMBA, CompiledBddManager
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    CompiledBddManager = None
    HAS_NUMBA = False

#: Every backend name, in gauge-index order (``perf_stats()["backend"]``).
SUBSTRATES: Tuple[str, ...] = ("dict", "array", "compiled")

#: The default backend: the tuned pure-Python manager.
DEFAULT_SUBSTRATE = "dict"

#: Backend name -> numeric value of the ``backend`` perf-stats gauge.
BACKEND_INDICES = {name: index for index, name in enumerate(SUBSTRATES)}

_CLASSES = {
    "dict": BddManager,
    "array": ArrayBddManager,
    # Without numpy the kernel module is unimportable; resolve_substrate
    # degrades "compiled" to "array" before this mapping is consulted.
    "compiled": CompiledBddManager if CompiledBddManager is not None else ArrayBddManager,
}


def available_substrates() -> Tuple[str, ...]:
    """The backend names selectable in this environment (``compiled``
    requires numba; ``dict`` and ``array`` are always present)."""
    if HAS_NUMBA:  # pragma: no cover - exercised only where numba exists
        return SUBSTRATES
    return ("dict", "array")


def resolve_substrate(name: Optional[str]) -> str:
    """Map a requested backend name to the one that will actually run.

    ``None`` means the default; ``auto`` picks ``compiled`` when numba is
    importable and ``dict`` otherwise; ``compiled`` without numba degrades
    to ``array``.  Unknown names raise ``ValueError``.
    """
    if name is None:
        return DEFAULT_SUBSTRATE
    if name == "auto":
        return "compiled" if HAS_NUMBA else DEFAULT_SUBSTRATE
    if name not in _CLASSES:
        options = ("auto",) + SUBSTRATES
        raise ValueError(
            f"unknown substrate {name!r}; expected one of {sorted(options)}")
    if name == "compiled" and not HAS_NUMBA:
        return "array"
    return name


def create_manager(num_vars: int = 0, substrate: Optional[str] = None,
                   **manager_kwargs) -> BddManager:
    """Construct a manager on the resolved backend.

    ``manager_kwargs`` are forwarded to the manager constructor
    (``auto_gc_threshold``, ``cache_size_limit``,
    ``auto_reorder_threshold``).  The returned object reports its actual
    backend via ``manager.substrate_name``.
    """
    resolved = resolve_substrate(substrate)
    return _CLASSES[resolved](num_vars, **manager_kwargs)

"""The ROBDD manager: node store, unique table, and core operations.

The manager owns every node.  A node is identified by a small integer id; the
two terminals are ``FALSE = 0`` and ``TRUE = 1``.  Internal nodes are triples
``(var, low, high)`` interned in the unique table so that structural equality
of functions is pointer (id) equality, the defining property of reduced
ordered BDDs.

Variables are identified by an integer *index* assigned at creation time.  The
manager separately maintains a variable *order* (``var_to_level`` /
``level_to_var``); all operations compare nodes by level so the order can be
changed (see :mod:`repro.bdd.ordering`) without renaming variables.

Garbage collection is mark-and-sweep over the roots registered by live
:class:`repro.bdd.expr.Bdd` handles; freed slots are recycled.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bdd.expr import Bdd

#: Terminal node ids.
FALSE = 0
TRUE = 1

#: Pseudo-level of terminal nodes (below every variable).
_TERMINAL_LEVEL = 1 << 60

# Operation tags for the computed table.
_OP_AND = "and"
_OP_OR = "or"
_OP_XOR = "xor"
_OP_ITE = "ite"
_OP_RESTRICT = "restrict"
_OP_EXISTS = "exists"
_OP_COMPOSE = "compose"


class BddManager:
    """Owns BDD nodes and implements the core symbolic operations.

    Parameters
    ----------
    num_vars:
        Number of variables to create eagerly.  More can be added later with
        :meth:`new_var`.
    auto_gc_threshold:
        When the node store grows past this many *dead-eligible* nodes the
        manager runs a garbage collection automatically at the next safe
        point (entry to a top-level operation).  ``None`` disables automatic
        collection.
    """

    def __init__(self, num_vars: int = 0, auto_gc_threshold: Optional[int] = 1_000_000):
        # Parallel arrays describing nodes.  Slots 0 and 1 are the terminals.
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        # Unique table: (var, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Computed table: (op, ...operands) -> node id.
        self._cache: Dict[Tuple, int] = {}
        # Free slots available for reuse after garbage collection.
        self._free: List[int] = []
        # Variable order bookkeeping.
        self._var_to_level: List[int] = []
        self._level_to_var: List[int] = []
        # Live external references: node id -> reference count.
        self._external_refs: Dict[int, int] = {}
        self._auto_gc_threshold = auto_gc_threshold
        self._gc_count = 0
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------ #
    # variables and terminals
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables known to the manager."""
        return len(self._var_to_level)

    def new_var(self) -> int:
        """Create a fresh variable at the bottom of the current order and
        return its index."""
        index = len(self._var_to_level)
        self._var_to_level.append(len(self._level_to_var))
        self._level_to_var.append(index)
        return index

    def var(self, index: int) -> Bdd:
        """The BDD of the single positive literal ``x_index``."""
        self._check_var(index)
        return self._wrap(self._mk(index, FALSE, TRUE))

    def nvar(self, index: int) -> Bdd:
        """The BDD of the single negative literal ``not x_index``."""
        self._check_var(index)
        return self._wrap(self._mk(index, TRUE, FALSE))

    def literal(self, index: int, phase: bool) -> Bdd:
        """``x_index`` if ``phase`` is truthy, else ``not x_index``."""
        return self.var(index) if phase else self.nvar(index)

    @property
    def false(self) -> Bdd:
        """The constant-false BDD."""
        return self._wrap(FALSE)

    @property
    def true(self) -> Bdd:
        """The constant-true BDD."""
        return self._wrap(TRUE)

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self.num_vars:
            raise ValueError(f"unknown variable index {index}")

    # ------------------------------------------------------------------ #
    # order accessors
    # ------------------------------------------------------------------ #
    def level_of(self, var_index: int) -> int:
        """Current level (position in the order, 0 = top) of a variable."""
        return self._var_to_level[var_index]

    def var_at_level(self, level: int) -> int:
        """Variable index currently placed at ``level``."""
        return self._level_to_var[level]

    def current_order(self) -> List[int]:
        """The current order as a list of variable indices from top to bottom."""
        return list(self._level_to_var)

    def _node_level(self, node: int) -> int:
        var = self._var[node]
        if var < 0:
            return _TERMINAL_LEVEL
        return self._var_to_level[var]

    # ------------------------------------------------------------------ #
    # node construction
    # ------------------------------------------------------------------ #
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` applying the
        reduction rule ``low == high``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        return node

    def _wrap(self, node: int) -> Bdd:
        return Bdd(self, node)

    # -- external reference management used by Bdd handles -------------- #
    def _incref(self, node: int) -> None:
        self._external_refs[node] = self._external_refs.get(node, 0) + 1

    def _decref(self, node: int) -> None:
        count = self._external_refs.get(node)
        if count is None:
            return
        if count <= 1:
            del self._external_refs[node]
        else:
            self._external_refs[node] = count - 1

    # ------------------------------------------------------------------ #
    # structural accessors
    # ------------------------------------------------------------------ #
    def node_var(self, node: int) -> int:
        """Variable index decided at ``node`` (-1 for terminals)."""
        return self._var[node]

    def node_low(self, node: int) -> int:
        """0-child of ``node``."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """1-child of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the FALSE / TRUE terminals."""
        return node == FALSE or node == TRUE

    def num_live_nodes(self) -> int:
        """Number of allocated (non-freed) nodes including terminals."""
        return len(self._var) - len(self._free)

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two node ids."""
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_AND, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv, gv = self._node_level(f), self._node_level(g)
        top = min(fv, gv)
        f0, f1 = (self._low[f], self._high[f]) if fv == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if gv == top else (g, g)
        result = self._mk(self._level_to_var[top],
                          self.apply_and(f0, g0),
                          self.apply_and(f1, g1))
        self._cache[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two node ids."""
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_OR, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv, gv = self._node_level(f), self._node_level(g)
        top = min(fv, gv)
        f0, f1 = (self._low[f], self._high[f]) if fv == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if gv == top else (g, g)
        result = self._mk(self._level_to_var[top],
                          self.apply_or(f0, g0),
                          self.apply_or(f1, g1))
        self._cache[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two node ids."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.apply_not(g)
        if g == TRUE:
            return self.apply_not(f)
        if f > g:
            f, g = g, f
        key = (_OP_XOR, f, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fv, gv = self._node_level(f), self._node_level(g)
        top = min(fv, gv)
        f0, f1 = (self._low[f], self._high[f]) if fv == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if gv == top else (g, g)
        result = self._mk(self._level_to_var[top],
                          self.apply_xor(f0, g0),
                          self.apply_xor(f1, g1))
        self._cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        """Negation of a node id."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        key = ("not", f)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[f],
                          self.apply_not(self._low[f]),
                          self.apply_not(self._high[f]))
        self._cache[key] = result
        return result

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.apply_not(f)
        key = (_OP_ITE, f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        levels = (self._node_level(f), self._node_level(g), self._node_level(h))
        top = min(levels)
        var = self._level_to_var[top]

        def cofs(node: int, level: int) -> Tuple[int, int]:
            if level == top:
                return self._low[node], self._high[node]
            return node, node

        f0, f1 = cofs(f, levels[0])
        g0, g1 = cofs(g, levels[1])
        h0, h1 = cofs(h, levels[2])
        result = self._mk(var,
                          self.apply_ite(f0, g0, h0),
                          self.apply_ite(f1, g1, h1))
        self._cache[key] = result
        return result

    def apply_restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor ``f`` with respect to literal ``var = value``."""
        target_level = self._var_to_level[var]
        return self._restrict_rec(f, var, target_level, bool(value))

    def _restrict_rec(self, f: int, var: int, target_level: int, value: bool) -> int:
        level = self._node_level(f)
        if level > target_level:
            # Variable does not appear in f (below or terminal).
            return f
        if level == target_level and self._var[f] == var:
            return self._high[f] if value else self._low[f]
        key = (_OP_RESTRICT, f, var, value)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[f],
                          self._restrict_rec(self._low[f], var, target_level, value),
                          self._restrict_rec(self._high[f], var, target_level, value))
        self._cache[key] = result
        return result

    def apply_restrict_cube(self, f: int, assignments: Sequence[Tuple[int, bool]]) -> int:
        """Cofactor with respect to a cube given as ``(var, value)`` pairs."""
        node = f
        for var, value in assignments:
            node = self.apply_restrict(node, var, value)
        return node

    def apply_exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification of ``variables`` from ``f``."""
        if not variables:
            return f
        var_set = frozenset(variables)
        return self._exists_rec(f, var_set)

    def _exists_rec(self, f: int, var_set: frozenset) -> int:
        if self.is_terminal(f):
            return f
        key = (_OP_EXISTS, f, var_set)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[f]
        low = self._exists_rec(self._low[f], var_set)
        high = self._exists_rec(self._high[f], var_set)
        if var in var_set:
            result = self.apply_or(low, high)
        else:
            result = self._mk(var, low, high)
        self._cache[key] = result
        return result

    def apply_compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        key = (_OP_COMPOSE, f, var, g)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.is_terminal(f):
            return f
        fvar = self._var[f]
        if fvar == var:
            result = self.apply_ite(g, self._high[f], self._low[f])
        elif self._var_to_level[fvar] > self._var_to_level[var]:
            # var cannot appear below this point.
            result = f
        else:
            low = self.apply_compose(self._low[f], var, g)
            high = self.apply_compose(self._high[f], var, g)
            result = self.apply_ite(self._mk(fvar, FALSE, TRUE), high, low)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a (total for its support) variable assignment."""
        node = f
        while not self.is_terminal(node):
            var = self._var[node]
            if var not in assignment:
                raise KeyError(f"assignment missing variable {var}")
            node = self._high[node] if assignment[var] else self._low[node]
        return node == TRUE

    def support(self, f: int) -> List[int]:
        """Sorted list of variable indices on which ``f`` depends."""
        seen = set()
        variables = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(variables)

    def count_nodes(self, roots: Iterable[int]) -> int:
        """Number of distinct nodes (including terminals) reachable from
        ``roots``."""
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if not self.is_terminal(node):
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def satcount(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``num_vars``
        variables (defaults to all variables of the manager)."""
        if num_vars is None:
            num_vars = self.num_vars
        cache: Dict[int, int] = {}

        def rec(node: int) -> Tuple[int, int]:
            """Return (count, level) where count is over variables strictly
            below the returned level."""
            if node == FALSE:
                return 0, num_vars
            if node == TRUE:
                return 1, num_vars
            if node in cache:
                return cache[node]
            level = self._node_level(node)
            lo_count, lo_level = rec(self._low[node])
            hi_count, hi_level = rec(self._high[node])
            count = (lo_count << (lo_level - level - 1)) + (hi_count << (hi_level - level - 1))
            cache[node] = (count, level)
            return count, level

        count, level = rec(f)
        return count << level

    def iter_satisfying(self, f: int, variables: Sequence[int]):
        """Yield satisfying assignments of ``f`` as dicts over ``variables``.

        Variables in ``variables`` that are not in the support of ``f`` are
        enumerated over both values, so the iteration yields exactly
        ``satcount(f, len(variables))`` assignments.
        """
        order = sorted(variables, key=lambda v: self._var_to_level[v])

        def rec(node: int, position: int, partial: Dict[int, bool]):
            if node == FALSE:
                return
            if position == len(order):
                if node == TRUE:
                    yield dict(partial)
                return
            var = order[position]
            node_var = self._var[node] if not self.is_terminal(node) else None
            if node_var == var:
                for value, child in ((False, self._low[node]), (True, self._high[node])):
                    partial[var] = value
                    yield from rec(child, position + 1, partial)
                del partial[var]
            else:
                for value in (False, True):
                    partial[var] = value
                    yield from rec(node, position + 1, partial)
                del partial[var]

        yield from rec(f, 0, {})

    # ------------------------------------------------------------------ #
    # cache / memory management
    # ------------------------------------------------------------------ #
    def clear_cache(self) -> None:
        """Drop the computed table (safe at any time)."""
        self._cache.clear()

    def garbage_collect(self) -> int:
        """Mark-and-sweep collection of nodes unreachable from live handles.

        Returns the number of freed node slots.  The computed table is
        cleared because it may reference dead nodes.
        """
        marked = set((FALSE, TRUE))
        stack = list(self._external_refs.keys())
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            if not self.is_terminal(node):
                stack.append(self._low[node])
                stack.append(self._high[node])
        freed = 0
        for key, node in list(self._unique.items()):
            if node not in marked:
                del self._unique[key]
                self._var[node] = -2
                self._low[node] = -2
                self._high[node] = -2
                self._free.append(node)
                freed += 1
        self._cache.clear()
        self._gc_count += 1
        return freed

    def maybe_collect(self) -> None:
        """Run :meth:`garbage_collect` if the auto-GC threshold is exceeded."""
        if self._auto_gc_threshold is None:
            return
        if len(self._var) - len(self._free) > self._auto_gc_threshold:
            self.garbage_collect()

    # ------------------------------------------------------------------ #
    # reordering support
    # ------------------------------------------------------------------ #
    def set_order(self, new_order: Sequence[int], roots: Sequence[Bdd]) -> List[Bdd]:
        """Install a new variable order and rebuild ``roots`` under it.

        ``new_order`` must be a permutation of all variable indices, listed
        from top to bottom.  Returns the rebuilt handles in the same order as
        ``roots``; the original handles remain valid but refer to nodes built
        under the old order and should be discarded by the caller.
        """
        if sorted(new_order) != list(range(self.num_vars)):
            raise ValueError("new_order must be a permutation of all variables")
        old_nodes = [root.node for root in roots]
        # Take a private snapshot of the old structure before rewiring tables.
        old_var = list(self._var)
        old_low = list(self._low)
        old_high = list(self._high)

        self._var_to_level = [0] * self.num_vars
        for level, var in enumerate(new_order):
            self._var_to_level[var] = level
        self._level_to_var = list(new_order)

        # Reset the node store and rebuild each root bottom-up via ITE, which
        # re-normalises the structure for the new order.
        self._var = [-1, -1]
        self._low = [-1, -1]
        self._high = [-1, -1]
        self._unique = {}
        self._cache = {}
        self._free = []
        self._external_refs = {}

        memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

        def rebuild(node: int) -> int:
            if node in memo:
                return memo[node]
            var = old_var[node]
            low = rebuild(old_low[node])
            high = rebuild(old_high[node])
            var_bdd = self._mk(var, FALSE, TRUE)
            result = self.apply_ite(var_bdd, high, low)
            memo[node] = result
            return result

        new_handles = []
        for node in old_nodes:
            new_handles.append(self._wrap(rebuild(node)))
        return new_handles

    def __repr__(self) -> str:
        return (f"BddManager(num_vars={self.num_vars}, "
                f"live_nodes={self.num_live_nodes()})")

"""The ROBDD manager: node store, unique table, and core operations.

The manager owns every node.  A node is identified by a small integer id; the
two terminals are ``FALSE = 0`` and ``TRUE = 1``.  Internal nodes are triples
``(var, low, high)`` interned in the unique table so that structural equality
of functions is pointer (id) equality, the defining property of reduced
ordered BDDs.

Variables are identified by an integer *index* assigned at creation time.  The
manager separately maintains a variable *order* (``var_to_level`` /
``level_to_var``); all operations compare nodes by level so the order can be
changed (see :mod:`repro.bdd.ordering`) without renaming variables.

Hot-path design (every gate of the bit-sliced simulator funnels through
here, so the constant factors of this file dominate end-to-end runtime):

* **Per-operation computed tables** indexed by small integer op tags instead
  of one shared dict keyed on string-tagged tuples.  Binary-operation keys
  pack both node ids into a single integer, which hashes faster than a tuple.
* **Commutative canonicalisation**: AND / OR / XOR arguments are ordered
  ``f <= g`` before the table lookup, halving the effective key space.
* **ITE standard-triple reduction**: ``ite(f, 1, h)`` routes to OR,
  ``ite(f, g, 0)`` to AND, ``ite(f, 0, h)`` to ``~f & h`` and
  ``ite(f, g, 1)`` to ``~f | g``, so ITE-heavy workloads share the binary
  computed tables instead of fragmenting their memoisation.
* **Iterative applies**: the core operations run an explicit work stack, not
  Python recursion, so 30+ qubit supremacy circuits (BDD depth well past the
  interpreter's recursion limit) cannot crash the simulator.
* **Fused multi-operand kernels**: :meth:`BddManager.apply_maj3` (the
  full-adder carry ``ab + ac + bc``) and :meth:`BddManager.apply_xor3` (the
  full-adder sum ``a ^ b ^ c``) traverse all three operands in a single
  recursion with one ternary computed table, instead of chaining generic
  2-operand applies that materialise intermediate BDDs.
  :meth:`BddManager.apply_swap_vars` exchanges the roles of two variables in
  one cofactor-based pass, replacing the compose/cube-algebra SWAP path.
* **Batched application**: :class:`BatchApplier` runs one operation over many
  operand tuples sharing a single computed-table binding and one interner
  transaction, so a 4r-slice gate update pays the per-operation setup once
  instead of 4r times.
* **Size-bounded tables with generation-based invalidation**: each table is
  flushed when it exceeds ``cache_size_limit`` entries (checked at operation
  boundaries), and every garbage collection or variable reorder advances a
  generation counter while swapping in fresh tables, so stale node ids can
  never be served.
* **In-place dynamic variable reordering**: :meth:`BddManager.swap_adjacent_levels`
  exchanges two neighbouring levels by rewiring only the upper level's
  nodes (node ids keep their functions, so external references survive),
  :meth:`BddManager.sift` runs Rudell sifting on top of it, and
  :meth:`BddManager.maybe_reorder` triggers sifting automatically when the
  node store grows past ``auto_reorder_threshold`` — the same
  operation-boundary pattern as ``auto_gc_threshold``.
  :meth:`BddManager.set_order` is a sequence of adjacent swaps, so
  installing an explicit order also preserves every registered reference.

Garbage collection is mark-and-sweep over the roots registered by live
:class:`repro.bdd.expr.Bdd` handles; freed slots are recycled.  All cache,
unique-table and GC activity is counted; :meth:`BddManager.perf_stats`
exposes the counters and :mod:`repro.perf` builds spans / reports on top.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bdd.expr import Bdd

#: Terminal node ids.
FALSE = 0
TRUE = 1

#: Pseudo-level of terminal nodes (below every variable).
_TERMINAL_LEVEL = 1 << 60

#: Integer operation tags indexing the per-operation computed tables.
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_NOT = 3
OP_ITE = 4
OP_RESTRICT = 5
OP_EXISTS = 6
OP_COMPOSE = 7
OP_MAJ3 = 8
OP_XOR3 = 9
OP_SWAPVARS = 10
_NUM_OPS = 11

#: Human-readable op names, index-aligned with the op tags (used for stats).
OP_NAMES = ("and", "or", "xor", "not", "ite", "restrict", "exists", "compose",
            "maj3", "xor3", "swapvars")

#: Node ids and variable indices are packed into single-integer cache keys.
#: 30 bits bounds both at ~10**9, far beyond what one process can hold.
_KEY_BITS = 30

#: Managers with at most this many variables use the recursive fast path
#: (apply depth is bounded by the number of levels plus a constant, so this
#: keeps a wide margin below CPython's default 1000-frame recursion limit);
#: deeper managers switch to the explicit-stack implementations.
_MAX_RECURSIVE_VARS = 600


class BddManager:
    """Owns BDD nodes and implements the core symbolic operations.

    Parameters
    ----------
    num_vars:
        Number of variables to create eagerly.  More can be added later with
        :meth:`new_var`.
    auto_gc_threshold:
        When the node store grows past this many live nodes the manager runs
        a garbage collection automatically at the next safe point (entry to a
        top-level operation).  ``None`` disables automatic collection.
    cache_size_limit:
        Maximum number of entries per per-operation computed table.  A table
        exceeding the limit is flushed at the next operation boundary (an
        eviction, counted in :meth:`perf_stats`).  ``None`` disables the
        bound.
    auto_reorder_threshold:
        When the live node count grows past this threshold the manager runs
        an in-place :meth:`sift` at the next safe point (a call to
        :meth:`maybe_reorder`, issued by the simulator at gate boundaries
        next to :meth:`maybe_collect`).  After a triggered reorder the
        threshold backs off geometrically (see :meth:`maybe_reorder`) so a
        workload that genuinely needs many nodes does not thrash.  ``None``
        (the default) disables automatic reordering.
    """

    #: Substrate backend identity, overridden by subclasses (see
    #: :mod:`repro.bdd.substrate`).  ``substrate_name`` is the registry
    #: name; ``_backend_index`` is the numeric ``backend`` gauge value
    #: reported by :meth:`perf_stats` (stats stay a flat numeric dict).
    substrate_name = "dict"
    _backend_index = 0

    #: Compiled-path counters: calls dispatched to the compiled apply
    #: kernel and calls that fell back to the interpreted path.  Class
    #: attributes so :meth:`perf_stats` has a stable schema on every
    #: backend; :class:`repro.bdd._compiled.CompiledBddManager` shadows
    #: them with instance counters.
    _compiled_calls = 0
    _compiled_fallbacks = 0

    def __init__(self, num_vars: int = 0, auto_gc_threshold: Optional[int] = 1_000_000,
                 cache_size_limit: Optional[int] = 2_000_000,
                 auto_reorder_threshold: Optional[int] = None):
        # Parallel arrays describing nodes.  Slots 0 and 1 are the terminals.
        self._var: List[int] = [-1, -1]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        # Unique table: (var, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Per-operation computed tables, indexed by op tag.
        self._tables: List[Dict] = [dict() for _ in range(_NUM_OPS)]
        # Memoised single-root DAG sizes (root id -> node count); follows the
        # computed tables' generation-based invalidation because node ids can
        # be recycled by garbage collection.
        self._size_cache: Dict[int, int] = {}
        # Free slots available for reuse after garbage collection.
        self._free: List[int] = []
        # Variable order bookkeeping.
        self._var_to_level: List[int] = []
        self._level_to_var: List[int] = []
        # Live external references: node id -> reference count.
        self._external_refs: Dict[int, int] = {}
        self._auto_gc_threshold = auto_gc_threshold
        self._cache_size_limit = cache_size_limit
        self._auto_reorder_threshold = auto_reorder_threshold
        self._gc_count = 0
        # Performance counters (see perf_stats).
        self._op_hits: List[int] = [0] * _NUM_OPS
        self._op_misses: List[int] = [0] * _NUM_OPS
        self._unique_probes = 0
        self._unique_inserts = 0
        self._batch_runs = 0
        self._batch_items = 0
        self._cache_evictions = 0
        self._cache_generation = 0
        self._gc_pause_seconds = 0.0
        self._gc_freed_nodes = 0
        # Reordering counters (see perf_stats): reorder_count / swaps /
        # pause are monotone; the nodes_before/after pair is a gauge of the
        # most recent reorder operation.
        self._reorder_count = 0
        self._reorder_swaps = 0
        self._reorder_pause_seconds = 0.0
        self._reorder_nodes_before = 0
        self._reorder_nodes_after = 0
        self._peak_live_nodes = 2
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------ #
    # variables and terminals
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables known to the manager."""
        return len(self._var_to_level)

    def new_var(self) -> int:
        """Create a fresh variable at the bottom of the current order and
        return its index."""
        index = len(self._var_to_level)
        self._var_to_level.append(len(self._level_to_var))
        self._level_to_var.append(index)
        return index

    def var(self, index: int) -> Bdd:
        """The BDD of the single positive literal ``x_index``."""
        self._check_var(index)
        return self._wrap(self._mk(index, FALSE, TRUE))

    def var_node(self, index: int) -> int:
        """Raw node id of the positive literal ``x_index``.

        Hot-path sibling of :meth:`var` for node-level callers (the batched
        gate rules): no handle is allocated and no external reference is
        registered, so the caller must keep the id reachable through some
        live handle before the next garbage collection.
        """
        self._check_var(index)
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> Bdd:
        """The BDD of the single negative literal ``not x_index``."""
        self._check_var(index)
        return self._wrap(self._mk(index, TRUE, FALSE))

    def literal(self, index: int, phase: bool) -> Bdd:
        """``x_index`` if ``phase`` is truthy, else ``not x_index``."""
        return self.var(index) if phase else self.nvar(index)

    @property
    def false(self) -> Bdd:
        """The constant-false BDD."""
        return self._wrap(FALSE)

    @property
    def true(self) -> Bdd:
        """The constant-true BDD."""
        return self._wrap(TRUE)

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self.num_vars:
            raise ValueError(f"unknown variable index {index}")

    # ------------------------------------------------------------------ #
    # order accessors
    # ------------------------------------------------------------------ #
    def level_of(self, var_index: int) -> int:
        """Current level (position in the order, 0 = top) of a variable."""
        return self._var_to_level[var_index]

    def var_at_level(self, level: int) -> int:
        """Variable index currently placed at ``level``."""
        return self._level_to_var[level]

    def current_order(self) -> List[int]:
        """The current order as a list of variable indices from top to bottom."""
        return list(self._level_to_var)

    def _node_level(self, node: int) -> int:
        var = self._var[node]
        if var < 0:
            return _TERMINAL_LEVEL
        return self._var_to_level[var]

    # ------------------------------------------------------------------ #
    # node construction
    # ------------------------------------------------------------------ #
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` applying the
        reduction rule ``low == high``.

        Single-shot form for call sites that intern one node at a time
        (variable creation, reorder's rebuild).  Per-node hot loops use
        :meth:`_interner` instead, whose ``make`` closure implements the
        identical invariants with zero attribute lookups; change the
        interning rule in BOTH places or not at all.
        """
        if low == high:
            return low
        key = (var, low, high)
        self._unique_probes += 1
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        self._unique_inserts += 1
        return node

    def _wrap(self, node: int) -> Bdd:
        return Bdd(self, node)

    # -- external reference management used by Bdd handles -------------- #
    def _incref(self, node: int) -> None:
        self._external_refs[node] = self._external_refs.get(node, 0) + 1

    def _decref(self, node: int) -> None:
        count = self._external_refs.get(node)
        if count is None:
            return
        if count <= 1:
            del self._external_refs[node]
        else:
            self._external_refs[node] = count - 1

    # ------------------------------------------------------------------ #
    # structural accessors
    # ------------------------------------------------------------------ #
    def node_var(self, node: int) -> int:
        """Variable index decided at ``node`` (-1 for terminals)."""
        return self._var[node]

    def node_low(self, node: int) -> int:
        """0-child of ``node``."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """1-child of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the FALSE / TRUE terminals."""
        return node == FALSE or node == TRUE

    def num_live_nodes(self) -> int:
        """Number of allocated (non-freed) nodes including terminals."""
        return len(self._var) - len(self._free)

    # ------------------------------------------------------------------ #
    # operation boundary bookkeeping
    # ------------------------------------------------------------------ #
    def _after_operation(self, op: int, table: Dict) -> None:
        """Bound the table size and refresh the live-node peak.  Called once
        per top-level operation, so the per-node-visit cost stays zero."""
        limit = self._cache_size_limit
        if limit is not None and len(table) > limit:
            table.clear()
            self._cache_evictions += 1
        live = len(self._var) - len(self._free)
        if live > self._peak_live_nodes:
            self._peak_live_nodes = live

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def _recursion_safe(self) -> bool:
        """True when apply depth (bounded by the level count) comfortably
        fits the interpreter's recursion limit."""
        return len(self._level_to_var) <= _MAX_RECURSIVE_VARS

    def _interner(self):
        """Find-or-create bound to the current node stores.

        Returns ``(make, counts)``: ``make(var, low, high)`` interns a node
        (applying the ``low == high`` reduction) touching only closure
        locals, and ``counts`` is a ``[probes, inserts]`` list the caller
        folds into the perf counters when its operation completes.  Shared
        by the recursive and iterative operation twins; :meth:`_mk` is the
        single-shot sibling — keep the two in lockstep.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        unique_get = unique.get
        free = self._free
        counts = [0, 0]

        def make(var: int, low: int, high: int) -> int:
            if low == high:
                return low
            ukey = (var, low, high)
            counts[0] += 1
            node = unique_get(ukey)
            if node is None:
                counts[1] += 1
                if free:
                    node = free.pop()
                    var_arr[node] = var
                    low_arr[node] = low
                    high_arr[node] = high
                else:
                    node = len(var_arr)
                    var_arr.append(var)
                    low_arr.append(low)
                    high_arr.append(high)
                unique[ukey] = node
            return node

        return make, counts

    def _make_binary_rec(self, op: int, table: Dict):
        """Build the recursive worker for a commutative binary connective.

        Returns ``(rec, finish)``: ``rec(f, g)`` is a *total* recursive apply
        (it resolves terminal rules itself, so callers may invoke it on any
        operand pair, any number of times), and ``finish()`` folds the
        accumulated hit / miss / unique-table counters into the manager and
        runs the operation-boundary bookkeeping.  Everything the inner loop
        touches is bound to closure cells once, so per-node work is dict
        probes and list indexing with no attribute lookups — and batched
        callers (:class:`BatchApplier`) pay that binding once for an entire
        slice sweep instead of once per root pair.  Only used when
        :meth:`_recursion_safe`; the explicit-stack twin below handles deep
        managers.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        table_get = table.get
        apply_not = self.apply_not
        make, ucounts = self._interner()
        hits = 0
        misses = 0

        if op == OP_AND:
            def rec(a: int, b: int) -> int:
                nonlocal hits, misses
                if a == 0 or b == 0:
                    return 0
                if a == 1:
                    return b
                if b == 1 or a == b:
                    return a
                if a > b:
                    a, b = b, a
                key = (a << _KEY_BITS) | b
                node = table_get(key)
                if node is not None:
                    hits += 1
                    return node
                misses += 1
                avar = var_arr[a]
                bvar = var_arr[b]
                alev = v2l[avar]
                blev = v2l[bvar]
                if alev == blev:
                    node = make(avar, rec(low_arr[a], low_arr[b]),
                                rec(high_arr[a], high_arr[b]))
                elif alev < blev:
                    node = make(avar, rec(low_arr[a], b), rec(high_arr[a], b))
                else:
                    node = make(bvar, rec(a, low_arr[b]), rec(a, high_arr[b]))
                table[key] = node
                return node
        elif op == OP_OR:
            def rec(a: int, b: int) -> int:
                nonlocal hits, misses
                if a == 1 or b == 1:
                    return 1
                if a == 0:
                    return b
                if b == 0 or a == b:
                    return a
                if a > b:
                    a, b = b, a
                key = (a << _KEY_BITS) | b
                node = table_get(key)
                if node is not None:
                    hits += 1
                    return node
                misses += 1
                avar = var_arr[a]
                bvar = var_arr[b]
                alev = v2l[avar]
                blev = v2l[bvar]
                if alev == blev:
                    node = make(avar, rec(low_arr[a], low_arr[b]),
                                rec(high_arr[a], high_arr[b]))
                elif alev < blev:
                    node = make(avar, rec(low_arr[a], b), rec(high_arr[a], b))
                else:
                    node = make(bvar, rec(a, low_arr[b]), rec(a, high_arr[b]))
                table[key] = node
                return node
        else:  # OP_XOR
            def rec(a: int, b: int) -> int:
                nonlocal hits, misses
                if a == b:
                    return 0
                if a == 0:
                    return b
                if b == 0:
                    return a
                if a == 1:
                    return apply_not(b)
                if b == 1:
                    return apply_not(a)
                if a > b:
                    a, b = b, a
                key = (a << _KEY_BITS) | b
                node = table_get(key)
                if node is not None:
                    hits += 1
                    return node
                misses += 1
                avar = var_arr[a]
                bvar = var_arr[b]
                alev = v2l[avar]
                blev = v2l[bvar]
                if alev == blev:
                    node = make(avar, rec(low_arr[a], low_arr[b]),
                                rec(high_arr[a], high_arr[b]))
                elif alev < blev:
                    node = make(avar, rec(low_arr[a], b), rec(high_arr[a], b))
                else:
                    node = make(bvar, rec(a, low_arr[b]), rec(a, high_arr[b]))
                table[key] = node
                return node

        def finish() -> None:
            self._op_hits[op] += hits
            self._op_misses[op] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(op, table)

        return rec, finish

    def _apply_binary_rec(self, op: int, f: int, g: int, table: Dict) -> int:
        """Single-pair front end of :meth:`_make_binary_rec`."""
        rec, finish = self._make_binary_rec(op, table)
        result = rec(f, g)
        finish()
        return result

    def _apply_binary(self, op: int, f: int, g: int) -> int:
        """Iterative apply for the commutative binary connectives.

        Runs an explicit work stack of visit/build tasks instead of Python
        recursion: a *visit* task resolves terminal rules and the computed
        table, or expands cofactors; a *build* task pops the two child
        results, interns the node and memoises it under the packed key.
        Used for managers too deep for :meth:`_apply_binary_rec`.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        table = self._tables[op]
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int, int]] = [(0, f, g)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a, b = pop()
            if kind:
                # Build: a = branching variable, b = computed-table key.
                high = rpop()
                low = rpop()
                node = make(a, low, high)
                table[b] = node
                rpush(node)
                continue
            # Visit: a, b are operand node ids.  Terminal rules first.
            if op == OP_AND:
                if a == 0 or b == 0:
                    rpush(0)
                    continue
                if a == 1:
                    rpush(b)
                    continue
                if b == 1 or a == b:
                    rpush(a)
                    continue
            elif op == OP_OR:
                if a == 1 or b == 1:
                    rpush(1)
                    continue
                if a == 0:
                    rpush(b)
                    continue
                if b == 0 or a == b:
                    rpush(a)
                    continue
            else:  # OP_XOR
                if a == b:
                    rpush(0)
                    continue
                if a == 0:
                    rpush(b)
                    continue
                if b == 0:
                    rpush(a)
                    continue
                if a == 1:
                    rpush(self.apply_not(b))
                    continue
                if b == 1:
                    rpush(self.apply_not(a))
                    continue
            if a > b:
                a, b = b, a
            key = (a << _KEY_BITS) | b
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            avar = var_arr[a]
            bvar = var_arr[b]
            alev = v2l[avar]
            blev = v2l[bvar]
            if alev == blev:
                push((1, avar, key))
                push((0, high_arr[a], high_arr[b]))
                push((0, low_arr[a], low_arr[b]))
            elif alev < blev:
                push((1, avar, key))
                push((0, high_arr[a], b))
                push((0, low_arr[a], b))
            else:
                push((1, bvar, key))
                push((0, a, high_arr[b]))
                push((0, a, low_arr[b]))
        self._op_hits[op] += hits
        self._op_misses[op] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(op, table)
        return results[0]

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two node ids."""
        if f == 0 or g == 0:
            return 0
        if f == 1:
            return g
        if g == 1 or f == g:
            return f
        if f > g:
            f, g = g, f
        table = self._tables[OP_AND]
        node = table.get((f << _KEY_BITS) | g)
        if node is not None:
            self._op_hits[OP_AND] += 1
            return node
        if self._recursion_safe():
            return self._apply_binary_rec(OP_AND, f, g, table)
        return self._apply_binary(OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two node ids."""
        if f == 1 or g == 1:
            return 1
        if f == 0:
            return g
        if g == 0 or f == g:
            return f
        if f > g:
            f, g = g, f
        table = self._tables[OP_OR]
        node = table.get((f << _KEY_BITS) | g)
        if node is not None:
            self._op_hits[OP_OR] += 1
            return node
        if self._recursion_safe():
            return self._apply_binary_rec(OP_OR, f, g, table)
        return self._apply_binary(OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two node ids."""
        if f == g:
            return 0
        if f == 0:
            return g
        if g == 0:
            return f
        if f == 1:
            return self.apply_not(g)
        if g == 1:
            return self.apply_not(f)
        if f > g:
            f, g = g, f
        table = self._tables[OP_XOR]
        node = table.get((f << _KEY_BITS) | g)
        if node is not None:
            self._op_hits[OP_XOR] += 1
            return node
        if self._recursion_safe():
            return self._apply_binary_rec(OP_XOR, f, g, table)
        return self._apply_binary(OP_XOR, f, g)

    def apply_not(self, f: int) -> int:
        """Negation of a node id."""
        if f < 2:
            return f ^ 1
        table = self._tables[OP_NOT]
        node = table.get(f)
        if node is not None:
            self._op_hits[OP_NOT] += 1
            return node
        if self._recursion_safe():
            return self._apply_not_rec(f, table)
        return self._apply_not_iter(f, table)

    def _make_not_rec(self, table: Dict):
        """Recursive negation worker factory (``(rec, finish)`` contract of
        :meth:`_make_binary_rec`)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0

        def rec(a: int) -> int:
            nonlocal hits, misses
            if a < 2:
                return a ^ 1
            node = table_get(a)
            if node is not None:
                hits += 1
                return node
            misses += 1
            node = make(var_arr[a], rec(low_arr[a]), rec(high_arr[a]))
            table[a] = node
            return node

        def finish() -> None:
            self._op_hits[OP_NOT] += hits
            self._op_misses[OP_NOT] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_NOT, table)

        return rec, finish

    def _apply_not_rec(self, f: int, table: Dict) -> int:
        """Single-root front end of :meth:`_make_not_rec`."""
        rec, finish = self._make_not_rec(table)
        result = rec(f)
        finish()
        return result

    def _apply_not_iter(self, f: int, table: Dict) -> int:
        """Negation on an explicit work stack (deep managers)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a = pop()
            if kind:
                # Build: a is the original node whose negation completes.
                high = rpop()
                low = rpop()
                node = make(var_arr[a], low, high)
                table[a] = node
                rpush(node)
                continue
            if a < 2:
                rpush(a ^ 1)
                continue
            node = table_get(a)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            push((1, a))
            push((0, high_arr[a]))
            push((0, low_arr[a]))
        self._op_hits[OP_NOT] += hits
        self._op_misses[OP_NOT] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_NOT, table)
        return results[0]

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``.

        Applies the Brace–Rudell–Bryant standard-triple reductions first,
        routing the degenerate shapes into the shared AND / OR tables; the
        residual three-operand cases recurse (or run an explicit stack on
        deep managers) under the ITE computed table.
        """
        if f == 1:
            return g
        if f == 0:
            return h
        if g == f:
            g = 1
        if h == f:
            h = 0
        if g == h:
            return g
        if g == 1:
            if h == 0:
                return f
            return self.apply_or(f, h)
        if h == 0:
            return self.apply_and(f, g)
        if g == 0:
            return self.apply_and(self.apply_not(f), h)
        if h == 1:
            return self.apply_or(self.apply_not(f), g)
        table = self._tables[OP_ITE]
        key = (((f << _KEY_BITS) | g) << _KEY_BITS) | h
        node = table.get(key)
        if node is not None:
            self._op_hits[OP_ITE] += 1
            return node
        if self._recursion_safe():
            return self._apply_ite_rec(f, g, h, table)
        return self._apply_ite_iter(f, g, h, table)

    def _make_ite_rec(self, table: Dict):
        """Recursive ITE worker factory (see :meth:`_make_binary_rec` for the
        ``(rec, finish)`` contract).  ``rec`` handles every standard-triple
        reduction itself, so batched callers can feed it raw triples."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        apply_and = self.apply_and
        apply_or = self.apply_or
        apply_not = self.apply_not
        make, ucounts = self._interner()
        hits = 0
        misses = 0

        def rec(a: int, b: int, c: int) -> int:
            nonlocal hits, misses
            if a == 1:
                return b
            if a == 0:
                return c
            if b == a:
                b = 1
            if c == a:
                c = 0
            if b == c:
                return b
            if b == 1:
                if c == 0:
                    return a
                return apply_or(a, c)
            if c == 0:
                return apply_and(a, b)
            if b == 0:
                return apply_and(apply_not(a), c)
            if c == 1:
                return apply_or(apply_not(a), b)
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                return node
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            node = make(l2v[top], rec(a0, b0, c0), rec(a1, b1, c1))
            table[key] = node
            return node

        def finish() -> None:
            self._op_hits[OP_ITE] += hits
            self._op_misses[OP_ITE] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_ITE, table)

        return rec, finish

    def _apply_ite_rec(self, f: int, g: int, h: int, table: Dict) -> int:
        """Single-triple front end of :meth:`_make_ite_rec`."""
        rec, finish = self._make_ite_rec(table)
        result = rec(f, g, h)
        finish()
        return result

    def _apply_ite_iter(self, f: int, g: int, h: int, table: Dict) -> int:
        """ITE on an explicit work stack (deep managers)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int, int, int]] = [(0, f, g, h)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a, b, c = pop()
            if kind:
                # Build: a = branching variable, b = computed-table key.
                high = rpop()
                low = rpop()
                node = make(a, low, high)
                table[b] = node
                rpush(node)
                continue
            # Visit: a = condition, b = then, c = else.
            if a == 1:
                rpush(b)
                continue
            if a == 0:
                rpush(c)
                continue
            # Standard triples: equal-argument substitution...
            if b == a:
                b = 1
            if c == a:
                c = 0
            if b == c:
                rpush(b)
                continue
            # ...then delegation of the degenerate shapes to the binary ops.
            if b == 1:
                if c == 0:
                    rpush(a)
                else:
                    rpush(self.apply_or(a, c))
                continue
            if c == 0:
                rpush(self.apply_and(a, b))
                continue
            if b == 0:
                rpush(self.apply_and(self.apply_not(a), c))
                continue
            if c == 1:
                rpush(self.apply_or(self.apply_not(a), b))
                continue
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            var = l2v[top]
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            push((1, var, key, 0))
            push((0, a1, b1, c1))
            push((0, a0, b0, c0))
        self._op_hits[OP_ITE] += hits
        self._op_misses[OP_ITE] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_ITE, table)
        return results[0]

    def apply_restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor ``f`` with respect to literal ``var = value``."""
        value = bool(value)
        if f < 2:
            return f
        table = self._tables[OP_RESTRICT]
        value_bit = 1 if value else 0
        node = table.get((f << (_KEY_BITS + 1)) | (var << 1) | value_bit)
        if node is not None:
            self._op_hits[OP_RESTRICT] += 1
            return node
        if self._recursion_safe():
            return self._apply_restrict_rec(f, var, value, table)
        return self._apply_restrict_iter(f, var, value, table)

    def _make_restrict_rec(self, var: int, value: bool, table: Dict):
        """Recursive cofactor worker factory for one ``var = value`` literal
        (``(rec, finish)`` contract of :meth:`_make_binary_rec`)."""
        target_level = self._var_to_level[var]
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        table_get = table.get
        make, ucounts = self._interner()
        value_bit = 1 if value else 0
        key_shift = _KEY_BITS + 1
        key_tail = (var << 1) | value_bit
        hits = 0
        misses = 0

        def rec(a: int) -> int:
            nonlocal hits, misses
            if a < 2:
                return a
            level = v2l[var_arr[a]]
            if level > target_level:
                # Variable does not appear in this subgraph.
                return a
            if level == target_level:
                # Levels identify variables uniquely, so this is the target.
                return high_arr[a] if value else low_arr[a]
            key = (a << key_shift) | key_tail
            node = table_get(key)
            if node is not None:
                hits += 1
                return node
            misses += 1
            node = make(var_arr[a], rec(low_arr[a]), rec(high_arr[a]))
            table[key] = node
            return node

        def finish() -> None:
            self._op_hits[OP_RESTRICT] += hits
            self._op_misses[OP_RESTRICT] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_RESTRICT, table)

        return rec, finish

    def _apply_restrict_rec(self, f: int, var: int, value: bool, table: Dict) -> int:
        """Single-root front end of :meth:`_make_restrict_rec`."""
        rec, finish = self._make_restrict_rec(var, value, table)
        result = rec(f)
        finish()
        return result

    def _apply_restrict_iter(self, f: int, var: int, value: bool, table: Dict) -> int:
        """Cofactor on an explicit work stack (deep managers)."""
        target_level = self._var_to_level[var]
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        table_get = table.get
        make, ucounts = self._interner()
        value_bit = 1 if value else 0
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a = pop()
            if kind:
                # Build: a is the original node being rebuilt.
                high = rpop()
                low = rpop()
                node = make(var_arr[a], low, high)
                table[(a << (_KEY_BITS + 1)) | (var << 1) | value_bit] = node
                rpush(node)
                continue
            if a < 2:
                rpush(a)
                continue
            level = v2l[var_arr[a]]
            if level > target_level:
                # Variable does not appear in this subgraph.
                rpush(a)
                continue
            if level == target_level:
                # Levels identify variables uniquely, so this is the target.
                rpush(high_arr[a] if value else low_arr[a])
                continue
            key = (a << (_KEY_BITS + 1)) | (var << 1) | value_bit
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            push((1, a))
            push((0, high_arr[a]))
            push((0, low_arr[a]))
        self._op_hits[OP_RESTRICT] += hits
        self._op_misses[OP_RESTRICT] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_RESTRICT, table)
        return results[0]

    def apply_restrict_cube(self, f: int, assignments: Sequence[Tuple[int, bool]]) -> int:
        """Cofactor with respect to a cube given as ``(var, value)`` pairs."""
        node = f
        for var, value in assignments:
            node = self.apply_restrict(node, var, value)
        return node

    def apply_exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification of ``variables`` from ``f``."""
        if not variables:
            return f
        var_set = frozenset(variables)
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        table = self._tables[OP_EXISTS]
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a = pop()
            if kind:
                high = rpop()
                low = rpop()
                var = var_arr[a]
                if var in var_set:
                    node = self.apply_or(low, high)
                else:
                    node = make(var, low, high)
                table[(a, var_set)] = node
                rpush(node)
                continue
            if a < 2:
                rpush(a)
                continue
            node = table_get((a, var_set))
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            push((1, a))
            push((0, high_arr[a]))
            push((0, low_arr[a]))
        self._op_hits[OP_EXISTS] += hits
        self._op_misses[OP_EXISTS] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_EXISTS, table)
        return results[0]

    def apply_compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``.

        Iterative (explicit work stack) like the other operations: the walk
        over ``f`` allocates no Python stack frames, and the per-node ITE
        recombination dispatches through :meth:`apply_ite`, which picks its
        own deep-manager-safe implementation.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        target_level = v2l[var]
        table = self._tables[OP_COMPOSE]
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a = pop()
            if kind:
                high = rpop()
                low = rpop()
                node = self.apply_ite(make(var_arr[a], FALSE, TRUE), high, low)
                table[(a, var, g)] = node
                rpush(node)
                continue
            if a < 2:
                rpush(a)
                continue
            avar = var_arr[a]
            if avar == var:
                rpush(self.apply_ite(g, high_arr[a], low_arr[a]))
                continue
            if v2l[avar] > target_level:
                # var cannot appear below this point.
                rpush(a)
                continue
            node = table_get((a, var, g))
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            push((1, a))
            push((0, high_arr[a]))
            push((0, low_arr[a]))
        self._op_hits[OP_COMPOSE] += hits
        self._op_misses[OP_COMPOSE] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_COMPOSE, table)
        return results[0]

    # ------------------------------------------------------------------ #
    # fused multi-operand kernels
    # ------------------------------------------------------------------ #
    def apply_maj3(self, f: int, g: int, h: int) -> int:
        """Majority of three node ids: ``fg + fh + gh``.

        This is the full-adder *carry* ``Car(A, B, C)`` of the paper's
        Table II rules, computed in a single three-operand recursion under
        its own computed table instead of the four 2-operand applies of the
        naive composition ``(A & B) | ((A | B) & C)``.  Fully symmetric, so
        operands are sorted to canonicalise the cache key.
        """
        # Sort the three operands (majority is fully commutative).
        if f > g:
            f, g = g, f
        if g > h:
            g, h = h, g
        if f > g:
            f, g = g, f
        if f == g:          # maj(a, a, c) == a
            return f
        if g == h:          # maj(a, b, b) == b
            return g
        if f == 0:          # maj(0, b, c) == b & c
            return self.apply_and(g, h)
        if f == 1:          # maj(1, b, c) == b | c
            return self.apply_or(g, h)
        table = self._tables[OP_MAJ3]
        key = (((f << _KEY_BITS) | g) << _KEY_BITS) | h
        node = table.get(key)
        if node is not None:
            self._op_hits[OP_MAJ3] += 1
            return node
        if self._recursion_safe():
            return self._apply_maj3_rec(f, g, h, table)
        return self._apply_maj3_iter(f, g, h, table)

    def _make_maj3_rec(self, table: Dict):
        """Recursive majority worker factory (``(rec, finish)`` contract of
        :meth:`_make_binary_rec`).

        The degenerate cases (``maj(0, b, c) = b & c``, ``maj(1, b, c) =
        b | c``) delegate to *shared* nested AND / OR workers created once
        per transaction, so a carry chain full of terminal cofactors does
        not rebuild a binary-apply closure per delegation.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        apply_and, and_finish = self._make_binary_rec(OP_AND, self._tables[OP_AND])
        apply_or, or_finish = self._make_binary_rec(OP_OR, self._tables[OP_OR])
        make, ucounts = self._interner()
        hits = 0
        misses = 0

        def rec(a: int, b: int, c: int) -> int:
            nonlocal hits, misses
            if a > b:
                a, b = b, a
            if b > c:
                b, c = c, b
            if a > b:
                a, b = b, a
            if a == b:
                return a
            if b == c:
                return b
            if a == 0:
                return apply_and(b, c)
            if a == 1:
                return apply_or(b, c)
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                return node
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            node = make(l2v[top], rec(a0, b0, c0), rec(a1, b1, c1))
            table[key] = node
            return node

        def finish() -> None:
            and_finish()
            or_finish()
            self._op_hits[OP_MAJ3] += hits
            self._op_misses[OP_MAJ3] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_MAJ3, table)

        return rec, finish

    def _apply_maj3_rec(self, f: int, g: int, h: int, table: Dict) -> int:
        """Single-triple front end of :meth:`_make_maj3_rec`."""
        rec, finish = self._make_maj3_rec(table)
        result = rec(f, g, h)
        finish()
        return result

    def _apply_maj3_iter(self, f: int, g: int, h: int, table: Dict) -> int:
        """Majority on an explicit work stack (deep managers)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int, int, int]] = [(0, f, g, h)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a, b, c = pop()
            if kind:
                # Build: a = branching variable, b = computed-table key.
                high = rpop()
                low = rpop()
                node = make(a, low, high)
                table[b] = node
                rpush(node)
                continue
            if a > b:
                a, b = b, a
            if b > c:
                b, c = c, b
            if a > b:
                a, b = b, a
            if a == b:
                rpush(a)
                continue
            if b == c:
                rpush(b)
                continue
            if a == 0:
                rpush(self.apply_and(b, c))
                continue
            if a == 1:
                rpush(self.apply_or(b, c))
                continue
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            push((1, l2v[top], key, 0))
            push((0, a1, b1, c1))
            push((0, a0, b0, c0))
        self._op_hits[OP_MAJ3] += hits
        self._op_misses[OP_MAJ3] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_MAJ3, table)
        return results[0]

    def apply_xor3(self, f: int, g: int, h: int) -> int:
        """Three-way exclusive-or of node ids: ``f ^ g ^ h``.

        The full-adder *sum* ``Sum(A, B, C)`` of Table II, computed in one
        three-operand recursion instead of two chained binary XORs (whose
        intermediate result is materialised and interned only to be consumed
        once).  Fully symmetric; operands are sorted for the cache key.
        """
        if f > g:
            f, g = g, f
        if g > h:
            g, h = h, g
        if f > g:
            f, g = g, f
        if f == g:          # a ^ a ^ c == c
            return h
        if g == h:          # a ^ b ^ b == a
            return f
        if f == 0:          # 0 ^ b ^ c == b ^ c
            return self.apply_xor(g, h)
        if f == 1:          # 1 ^ b ^ c == ~(b ^ c)
            return self.apply_not(self.apply_xor(g, h))
        table = self._tables[OP_XOR3]
        key = (((f << _KEY_BITS) | g) << _KEY_BITS) | h
        node = table.get(key)
        if node is not None:
            self._op_hits[OP_XOR3] += 1
            return node
        if self._recursion_safe():
            return self._apply_xor3_rec(f, g, h, table)
        return self._apply_xor3_iter(f, g, h, table)

    def _make_xor3_rec(self, table: Dict):
        """Recursive three-way-XOR worker factory (``(rec, finish)`` contract
        of :meth:`_make_binary_rec`).  Degenerate cases delegate to shared
        nested XOR / NOT workers created once per transaction."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        apply_xor, xor_finish = self._make_binary_rec(OP_XOR, self._tables[OP_XOR])
        apply_not, not_finish = self._make_not_rec(self._tables[OP_NOT])
        make, ucounts = self._interner()
        hits = 0
        misses = 0

        def rec(a: int, b: int, c: int) -> int:
            nonlocal hits, misses
            if a > b:
                a, b = b, a
            if b > c:
                b, c = c, b
            if a > b:
                a, b = b, a
            if a == b:
                return c
            if b == c:
                return a
            if a == 0:
                return apply_xor(b, c)
            if a == 1:
                return apply_not(apply_xor(b, c))
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                return node
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            node = make(l2v[top], rec(a0, b0, c0), rec(a1, b1, c1))
            table[key] = node
            return node

        def finish() -> None:
            xor_finish()
            not_finish()
            self._op_hits[OP_XOR3] += hits
            self._op_misses[OP_XOR3] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_XOR3, table)

        return rec, finish

    def _apply_xor3_rec(self, f: int, g: int, h: int, table: Dict) -> int:
        """Single-triple front end of :meth:`_make_xor3_rec`."""
        rec, finish = self._make_xor3_rec(table)
        result = rec(f, g, h)
        finish()
        return result

    def _apply_xor3_iter(self, f: int, g: int, h: int, table: Dict) -> int:
        """Three-way XOR on an explicit work stack (deep managers)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        l2v = self._level_to_var
        table_get = table.get
        make, ucounts = self._interner()
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int, int, int]] = [(0, f, g, h)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a, b, c = pop()
            if kind:
                # Build: a = branching variable, b = computed-table key.
                high = rpop()
                low = rpop()
                node = make(a, low, high)
                table[b] = node
                rpush(node)
                continue
            if a > b:
                a, b = b, a
            if b > c:
                b, c = c, b
            if a > b:
                a, b = b, a
            if a == b:
                rpush(c)
                continue
            if b == c:
                rpush(a)
                continue
            if a == 0:
                rpush(self.apply_xor(b, c))
                continue
            if a == 1:
                rpush(self.apply_not(self.apply_xor(b, c)))
                continue
            key = (((a << _KEY_BITS) | b) << _KEY_BITS) | c
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            misses += 1
            alev = v2l[var_arr[a]]
            blev = v2l[var_arr[b]]
            clev = v2l[var_arr[c]]
            top = alev
            if blev < top:
                top = blev
            if clev < top:
                top = clev
            if alev == top:
                a0, a1 = low_arr[a], high_arr[a]
            else:
                a0 = a1 = a
            if blev == top:
                b0, b1 = low_arr[b], high_arr[b]
            else:
                b0 = b1 = b
            if clev == top:
                c0, c1 = low_arr[c], high_arr[c]
            else:
                c0 = c1 = c
            push((1, l2v[top], key, 0))
            push((0, a1, b1, c1))
            push((0, a0, b0, c0))
        self._op_hits[OP_XOR3] += hits
        self._op_misses[OP_XOR3] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_XOR3, table)
        return results[0]

    def apply_swap_vars(self, f: int, var_a: int, var_b: int) -> int:
        """The function with the roles of ``var_a`` and ``var_b`` exchanged.

        ``g(..., x_a = u, x_b = v, ...) = f(..., x_a = v, x_b = u, ...)``,
        i.e. the Boolean action of the SWAP gate, in one cofactor-based pass:
        the region of the DAG above the upper swapped variable is rebuilt
        structurally, and at the boundary the four cofactors are recombined
        through the (memoised) restrict and ITE kernels.  This replaces the
        old formula path — three full-function cofactor traversals plus five
        Boolean connectives over the whole BDD per slice.
        """
        self._check_var(var_a)
        self._check_var(var_b)
        if var_a == var_b or f < 2:
            return f
        # Canonicalise on levels so var_a is the upper (smaller-level) one.
        if self._var_to_level[var_a] > self._var_to_level[var_b]:
            var_a, var_b = var_b, var_a
        table = self._tables[OP_SWAPVARS]
        key = (((f << _KEY_BITS) | var_a) << _KEY_BITS) | var_b
        node = table.get(key)
        if node is not None:
            self._op_hits[OP_SWAPVARS] += 1
            return node
        if self._recursion_safe():
            return self._apply_swap_vars_rec(f, var_a, var_b, table)
        return self._apply_swap_vars_iter(f, var_a, var_b, table)

    def _make_swap_vars_rec(self, var_a: int, var_b: int, table: Dict):
        """Recursive swap worker factory for one (level-ordered) variable
        pair (``(rec, finish)`` contract of :meth:`_make_binary_rec`)."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        level_a = v2l[var_a]
        level_b = v2l[var_b]
        table_get = table.get
        restrict_table = self._tables[OP_RESTRICT]
        restrict0, restrict0_finish = self._make_restrict_rec(var_b, False, restrict_table)
        restrict1, restrict1_finish = self._make_restrict_rec(var_b, True, restrict_table)
        ite, ite_finish = self._make_ite_rec(self._tables[OP_ITE])
        make, ucounts = self._interner()
        key_shift = 2 * _KEY_BITS
        key_tail = (var_a << _KEY_BITS) | var_b
        hits = 0
        misses = 0

        def rec(a: int) -> int:
            nonlocal hits, misses
            if a < 2:
                return a
            lev = v2l[var_arr[a]]
            if lev > level_b:
                # Neither swapped variable appears in this subgraph.
                return a
            key = (a << key_shift) | key_tail
            node = table_get(key)
            if node is not None:
                hits += 1
                return node
            misses += 1
            if lev < level_a:
                node = make(var_arr[a], rec(low_arr[a]), rec(high_arr[a]))
            else:
                # Boundary: var_a can only appear at the very top here
                # (levels identify variables uniquely).
                if lev == level_a:
                    f0, f1 = low_arr[a], high_arr[a]
                else:
                    f0 = f1 = a
                f00 = restrict0(f0)
                f01 = restrict1(f0)
                f10 = restrict0(f1)
                f11 = restrict1(f1)
                # g(a=u, b=v) = f(a=v, b=u): rebuild with the roles swapped.
                xb = make(var_b, FALSE, TRUE)
                g0 = ite(xb, f10, f00)
                g1 = ite(xb, f11, f01)
                node = make(var_a, g0, g1)
            table[key] = node
            return node

        def finish() -> None:
            restrict0_finish()
            restrict1_finish()
            ite_finish()
            self._op_hits[OP_SWAPVARS] += hits
            self._op_misses[OP_SWAPVARS] += misses
            self._unique_probes += ucounts[0]
            self._unique_inserts += ucounts[1]
            self._after_operation(OP_SWAPVARS, table)

        return rec, finish

    def _apply_swap_vars_rec(self, f: int, var_a: int, var_b: int, table: Dict) -> int:
        """Single-root front end of :meth:`_make_swap_vars_rec`."""
        rec, finish = self._make_swap_vars_rec(var_a, var_b, table)
        result = rec(f)
        finish()
        return result

    def _apply_swap_vars_iter(self, f: int, var_a: int, var_b: int, table: Dict) -> int:
        """Variable swap on an explicit work stack (deep managers).

        Only the structural walk above ``var_a``'s level needs the stack; the
        boundary recombination delegates to :meth:`apply_restrict` and
        :meth:`apply_ite`, which pick their own deep-safe implementations.
        """
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        level_a = v2l[var_a]
        level_b = v2l[var_b]
        table_get = table.get
        restrict = self.apply_restrict
        ite = self.apply_ite
        make, ucounts = self._interner()
        key_shift = 2 * _KEY_BITS
        key_tail = (var_a << _KEY_BITS) | var_b
        hits = 0
        misses = 0
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, a = pop()
            if kind:
                # Build: a is the original node being rebuilt structurally.
                high = rpop()
                low = rpop()
                node = make(var_arr[a], low, high)
                table[(a << key_shift) | key_tail] = node
                rpush(node)
                continue
            if a < 2:
                rpush(a)
                continue
            lev = v2l[var_arr[a]]
            if lev > level_b:
                rpush(a)
                continue
            key = (a << key_shift) | key_tail
            node = table_get(key)
            if node is not None:
                hits += 1
                rpush(node)
                continue
            if lev < level_a:
                misses += 1
                push((1, a))
                push((0, high_arr[a]))
                push((0, low_arr[a]))
                continue
            misses += 1
            if lev == level_a:
                f0, f1 = low_arr[a], high_arr[a]
            else:
                f0 = f1 = a
            f00 = restrict(f0, var_b, False)
            f01 = restrict(f0, var_b, True)
            f10 = restrict(f1, var_b, False)
            f11 = restrict(f1, var_b, True)
            xb = make(var_b, FALSE, TRUE)
            g0 = ite(xb, f10, f00)
            g1 = ite(xb, f11, f01)
            node = make(var_a, g0, g1)
            table[key] = node
            rpush(node)
        self._op_hits[OP_SWAPVARS] += hits
        self._op_misses[OP_SWAPVARS] += misses
        self._unique_probes += ucounts[0]
        self._unique_inserts += ucounts[1]
        self._after_operation(OP_SWAPVARS, table)
        return results[0]

    # ------------------------------------------------------------------ #
    # batched application
    # ------------------------------------------------------------------ #
    def batcher(self) -> "BatchApplier":
        """A :class:`BatchApplier` bound to this manager."""
        return BatchApplier(self)

    def _count_batch(self, size: int) -> None:
        self._batch_runs += 1
        self._batch_items += size

    def batch_binary(self, op: int, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Apply one commutative binary connective (``OP_AND`` / ``OP_OR`` /
        ``OP_XOR``) to every ``(f, g)`` pair, sharing a single computed-table
        binding and interner transaction across the whole batch."""
        pairs = list(pairs)
        if not pairs:
            return []
        self._count_batch(len(pairs))
        if self._recursion_safe():
            rec, finish = self._make_binary_rec(op, self._tables[op])
            out = [rec(f, g) for f, g in pairs]
            finish()
            return out
        apply_one = (self.apply_and, self.apply_or, self.apply_xor)[op]
        return [apply_one(f, g) for f, g in pairs]

    def batch_not(self, nodes: Sequence[int]) -> List[int]:
        """Negate every node id in one batch transaction."""
        nodes = list(nodes)
        if not nodes:
            return []
        self._count_batch(len(nodes))
        if self._recursion_safe():
            rec, finish = self._make_not_rec(self._tables[OP_NOT])
            out = [rec(f) for f in nodes]
            finish()
            return out
        return [self.apply_not(f) for f in nodes]

    def batch_ite(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """Apply ITE to every ``(f, g, h)`` triple in one batch transaction."""
        triples = list(triples)
        if not triples:
            return []
        self._count_batch(len(triples))
        if self._recursion_safe():
            rec, finish = self._make_ite_rec(self._tables[OP_ITE])
            out = [rec(f, g, h) for f, g, h in triples]
            finish()
            return out
        return [self.apply_ite(f, g, h) for f, g, h in triples]

    def batch_maj3(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """Apply the fused majority kernel to every triple in one batch."""
        triples = list(triples)
        if not triples:
            return []
        self._count_batch(len(triples))
        if self._recursion_safe():
            rec, finish = self._make_maj3_rec(self._tables[OP_MAJ3])
            out = [rec(f, g, h) for f, g, h in triples]
            finish()
            return out
        return [self.apply_maj3(f, g, h) for f, g, h in triples]

    def batch_xor3(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """Apply the fused three-way XOR kernel to every triple in one batch."""
        triples = list(triples)
        if not triples:
            return []
        self._count_batch(len(triples))
        if self._recursion_safe():
            rec, finish = self._make_xor3_rec(self._tables[OP_XOR3])
            out = [rec(f, g, h) for f, g, h in triples]
            finish()
            return out
        return [self.apply_xor3(f, g, h) for f, g, h in triples]

    def batch_restrict(self, nodes: Sequence[int], var: int, value: bool) -> List[int]:
        """Cofactor every node id with respect to ``var = value`` in one
        batch transaction (the 4r-slice cofactor sweep of a gate update)."""
        nodes = list(nodes)
        if not nodes:
            return []
        self._count_batch(len(nodes))
        value = bool(value)
        if self._recursion_safe():
            rec, finish = self._make_restrict_rec(var, value, self._tables[OP_RESTRICT])
            out = [rec(f) for f in nodes]
            finish()
            return out
        return [self.apply_restrict(f, var, value) for f in nodes]

    def batch_swap_vars(self, nodes: Sequence[int], var_a: int, var_b: int) -> List[int]:
        """Exchange ``var_a`` / ``var_b`` in every node id in one batch."""
        nodes = list(nodes)
        if not nodes:
            return []
        self._check_var(var_a)
        self._check_var(var_b)
        if var_a == var_b:
            return nodes
        self._count_batch(len(nodes))
        if self._var_to_level[var_a] > self._var_to_level[var_b]:
            var_a, var_b = var_b, var_a
        if self._recursion_safe():
            rec, finish = self._make_swap_vars_rec(var_a, var_b, self._tables[OP_SWAPVARS])
            out = [rec(f) for f in nodes]
            finish()
            return out
        return [self.apply_swap_vars(f, var_a, var_b) for f in nodes]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a (total for its support) variable assignment."""
        node = f
        while not self.is_terminal(node):
            var = self._var[node]
            if var not in assignment:
                raise KeyError(f"assignment missing variable {var}")
            node = self._high[node] if assignment[var] else self._low[node]
        return node == TRUE

    def support(self, f: int) -> List[int]:
        """Sorted list of variable indices on which ``f`` depends."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        seen = set()
        seen_add = seen.add
        variables = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen_add(node)
            variables.add(var_arr[node])
            stack.append(low_arr[node])
            stack.append(high_arr[node])
        return sorted(variables)

    def count_nodes(self, roots: Iterable[int]) -> int:
        """Number of distinct nodes (including terminals) reachable from
        ``roots``.

        Single-root queries are memoised (generation-invalidated alongside
        the computed tables): reachable sets are immutable while a node is
        alive, so repeated size queries on the same function are O(1).
        Visited marks use a bytearray indexed by node id, which is much
        cheaper than hashing every id into a set.
        """
        stack = list(roots)
        single_root = stack[0] if len(stack) == 1 else None
        if single_root is not None:
            cached = self._size_cache.get(single_root)
            if cached is not None:
                return cached
        low_arr = self._low
        high_arr = self._high
        visited = bytearray(len(self._var))
        count = 0
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            visited[node] = 1
            count += 1
            if node > 1:
                stack.append(low_arr[node])
                stack.append(high_arr[node])
        if single_root is not None:
            self._size_cache[single_root] = count
        return count

    def satcount(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``num_vars``
        variables (defaults to all variables of the manager).

        Iterative post-order so deep BDDs cannot hit the recursion limit.
        The per-node value is ``(count, level)`` where the count is over the
        variables strictly below the node's level.
        """
        if num_vars is None:
            num_vars = self.num_vars
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        v2l = self._var_to_level
        cache: Dict[int, Tuple[int, int]] = {}
        cache_get = cache.get
        tasks: List[Tuple[int, int]] = [(0, f)]
        push = tasks.append
        pop = tasks.pop
        results: List[Tuple[int, int]] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            kind, node = pop()
            if kind:
                hi_count, hi_level = rpop()
                lo_count, lo_level = rpop()
                level = v2l[var_arr[node]]
                count = ((lo_count << (lo_level - level - 1))
                         + (hi_count << (hi_level - level - 1)))
                entry = (count, level)
                cache[node] = entry
                rpush(entry)
                continue
            if node == FALSE:
                rpush((0, num_vars))
                continue
            if node == TRUE:
                rpush((1, num_vars))
                continue
            entry = cache_get(node)
            if entry is not None:
                rpush(entry)
                continue
            push((1, node))
            push((0, high_arr[node]))
            push((0, low_arr[node]))
        count, level = results[0]
        return count << level

    def iter_satisfying(self, f: int, variables: Sequence[int]):
        """Yield satisfying assignments of ``f`` as dicts over ``variables``.

        Variables in ``variables`` that are not in the support of ``f`` are
        enumerated over both values, so the iteration yields exactly
        ``satcount(f, len(variables))`` assignments.
        """
        order = sorted(variables, key=lambda v: self._var_to_level[v])

        def rec(node: int, position: int, partial: Dict[int, bool]):
            if node == FALSE:
                return
            if position == len(order):
                if node == TRUE:
                    yield dict(partial)
                return
            var = order[position]
            node_var = self._var[node] if not self.is_terminal(node) else None
            if node_var == var:
                for value, child in ((False, self._low[node]), (True, self._high[node])):
                    partial[var] = value
                    yield from rec(child, position + 1, partial)
                del partial[var]
            else:
                for value in (False, True):
                    partial[var] = value
                    yield from rec(node, position + 1, partial)
                del partial[var]

        yield from rec(f, 0, {})

    # ------------------------------------------------------------------ #
    # cache / memory management
    # ------------------------------------------------------------------ #
    def _invalidate_caches(self) -> None:
        """Swap in fresh computed tables and advance the cache generation.

        Called on garbage collection, variable reorder and explicit clears:
        any entry created before the event belongs to a dead generation and
        can never be observed afterwards.
        """
        self._tables = [dict() for _ in range(_NUM_OPS)]
        self._size_cache = {}
        self._cache_generation += 1

    @property
    def cache_generation(self) -> int:
        """Monotone counter of cache-invalidation events (GC / reorder /
        explicit clear).  Useful for asserting that no stale entries can
        survive those events."""
        return self._cache_generation

    def computed_table_sizes(self) -> Dict[str, int]:
        """Current entry count of each per-operation computed table."""
        return {name: len(self._tables[op]) for op, name in enumerate(OP_NAMES)}

    def clear_cache(self) -> None:
        """Drop all computed tables (safe at any time)."""
        self._invalidate_caches()

    def _mark_live(self):
        """GC mark phase: flags indexed by node id, truthy for every node
        reachable from a registered external reference (terminals always).

        Split out so substrates can vectorise the walk
        (:class:`repro.bdd.array_manager.ArrayBddManager` runs a numpy
        frontier fixpoint); the sweep stays in :meth:`garbage_collect`
        because its unique-table iteration order defines the free-list
        order that the cross-backend node-identity contract pins.
        """
        marked = bytearray(len(self._var))
        marked[FALSE] = marked[TRUE] = 1
        low_arr = self._low
        high_arr = self._high
        stack = [node for node in self._external_refs if node > 1]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            stack.append(low_arr[node])
            stack.append(high_arr[node])
        return marked

    def garbage_collect(self) -> int:
        """Mark-and-sweep collection of nodes unreachable from live handles.

        Returns the number of freed node slots.  The computed tables are
        invalidated (generation bump) because they may reference dead nodes.
        """
        start = time.perf_counter()
        live = len(self._var) - len(self._free)
        if live > self._peak_live_nodes:
            self._peak_live_nodes = live
        marked = self._mark_live()
        freed = 0
        for key, node in list(self._unique.items()):
            if not marked[node]:
                del self._unique[key]
                self._var[node] = -2
                self._low[node] = -2
                self._high[node] = -2
                self._free.append(node)
                freed += 1
        self._invalidate_caches()
        self._gc_count += 1
        self._gc_freed_nodes += freed
        self._gc_pause_seconds += time.perf_counter() - start
        return freed

    def maybe_collect(self) -> None:
        """Run :meth:`garbage_collect` if the auto-GC threshold is exceeded."""
        if self._auto_gc_threshold is None:
            return
        if len(self._var) - len(self._free) > self._auto_gc_threshold:
            self.garbage_collect()

    # ------------------------------------------------------------------ #
    # performance counters
    # ------------------------------------------------------------------ #
    def perf_stats(self) -> Dict[str, float]:
        """Snapshot of the substrate's performance counters.

        Returns a flat numeric dict: per-op computed-table hits / misses /
        hit rate, unique-table probes and inserts, GC runs / pause time /
        freed nodes, cache generation and evictions, live and peak-live node
        counts.  :mod:`repro.perf` provides span / diff / JSON helpers on
        top of this method.
        """
        live = len(self._var) - len(self._free)
        if live > self._peak_live_nodes:
            self._peak_live_nodes = live
        stats: Dict[str, float] = {
            "backend": self._backend_index,
            "compiled_calls": self._compiled_calls,
            "compiled_fallbacks": self._compiled_fallbacks,
            "live_nodes": live,
            "peak_live_nodes": self._peak_live_nodes,
            "unique_size": len(self._unique),
            "unique_probes": self._unique_probes,
            "unique_inserts": self._unique_inserts,
            "batch_runs": self._batch_runs,
            "batch_items": self._batch_items,
            "cache_generation": self._cache_generation,
            "cache_evictions": self._cache_evictions,
            "gc_runs": self._gc_count,
            "gc_pause_seconds": self._gc_pause_seconds,
            "gc_freed_nodes": self._gc_freed_nodes,
            "reorder_count": self._reorder_count,
            "reorder_swaps": self._reorder_swaps,
            "reorder_pause_seconds": self._reorder_pause_seconds,
            "reorder_nodes_before": self._reorder_nodes_before,
            "reorder_nodes_after": self._reorder_nodes_after,
        }
        total_hits = 0
        total_misses = 0
        for op, name in enumerate(OP_NAMES):
            hits = self._op_hits[op]
            misses = self._op_misses[op]
            total_hits += hits
            total_misses += misses
            stats[f"cache_{name}_hits"] = hits
            stats[f"cache_{name}_misses"] = misses
            lookups = hits + misses
            stats[f"cache_{name}_hit_rate"] = hits / lookups if lookups else 0.0
        stats["cache_hits"] = total_hits
        stats["cache_misses"] = total_misses
        lookups = total_hits + total_misses
        stats["cache_hit_rate"] = total_hits / lookups if lookups else 0.0
        return stats

    def raw_perf_counters(self) -> Tuple[int, int, int, int, int, float]:
        """Cheap counter snapshot for high-frequency callers (per-gate
        attribution): ``(cache_hits, cache_misses, unique_probes,
        unique_inserts, gc_runs, gc_pause_seconds)``.  Unlike
        :meth:`perf_stats` this builds no keyed dict, so it is safe to call
        twice per gate without showing up in profiles."""
        return (sum(self._op_hits), sum(self._op_misses), self._unique_probes,
                self._unique_inserts, self._gc_count, self._gc_pause_seconds)

    def reset_perf_counters(self) -> None:
        """Zero every counter reported by :meth:`perf_stats` (the cache
        generation and the tables themselves are left untouched)."""
        self._op_hits = [0] * _NUM_OPS
        self._op_misses = [0] * _NUM_OPS
        self._unique_probes = 0
        self._unique_inserts = 0
        self._batch_runs = 0
        self._batch_items = 0
        self._cache_evictions = 0
        self._gc_count = 0
        self._gc_pause_seconds = 0.0
        self._gc_freed_nodes = 0
        self._reorder_count = 0
        self._reorder_swaps = 0
        self._reorder_pause_seconds = 0.0
        self._reorder_nodes_before = 0
        self._reorder_nodes_after = 0
        self._compiled_calls = 0
        self._compiled_fallbacks = 0
        self._peak_live_nodes = len(self._var) - len(self._free)

    # ------------------------------------------------------------------ #
    # dynamic variable reordering (in-place adjacent swaps + sifting)
    # ------------------------------------------------------------------ #
    @property
    def auto_reorder_threshold(self) -> Optional[int]:
        """Live-node threshold above which :meth:`maybe_reorder` triggers an
        automatic :meth:`sift` (``None`` disables auto-reordering).  Backs
        off after each triggered reorder; settable at any time."""
        return self._auto_reorder_threshold

    @auto_reorder_threshold.setter
    def auto_reorder_threshold(self, value: Optional[int]) -> None:
        self._auto_reorder_threshold = value

    def _reachable_node_count(self) -> int:
        """Nodes (terminals included) reachable from the registered external
        references — the live size every reordering decision is scored by.

        Unlike :meth:`num_live_nodes` this ignores allocated-but-unreachable
        slots, which in-place level swaps leave behind until the next
        garbage collection.
        """
        low_arr = self._low
        high_arr = self._high
        visited = bytearray(len(self._var))
        visited[0] = visited[1] = 1
        count = 2
        stack = [node for node in self._external_refs if node > 1]
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            visited[node] = 1
            count += 1
            low = low_arr[node]
            if not visited[low]:
                stack.append(low)
            high = high_arr[node]
            if not visited[high]:
                stack.append(high)
        return count

    def _build_var_index(self) -> List[List[int]]:
        """Per-variable lists of node ids labelled with that variable.

        The lists are *working supersets* during a reorder transaction:
        swaps move rewired nodes between lists and append freshly interned
        nodes, and entries can go stale (a node relabelled or freed by an
        interleaved garbage collection), so every consumer re-checks
        ``self._var[node]`` before trusting an entry.
        """
        index: List[List[int]] = [[] for _ in range(self.num_vars)]
        var_arr = self._var
        for node in range(2, len(var_arr)):
            var = var_arr[node]
            if var >= 0:
                index[var].append(node)
        return index

    def _swap_levels(self, level: int, x_nodes: List[int],
                     y_nodes: List[int]) -> Tuple[List[int], int]:
        """Core of every reordering operation: exchange ``level`` and
        ``level + 1`` by rewiring only the upper level's nodes, in place.

        ``x_nodes`` lists (a superset of) the nodes labelled with the upper
        variable; relabelled nodes are appended to ``y_nodes``.  Returns
        ``(new_x_nodes, rewired_count)`` where ``new_x_nodes`` holds the
        nodes still labelled with the (now lower) upper variable, including
        the freshly interned children of rewired nodes.

        Invariants the rewiring preserves (the whole point of the in-place
        algorithm):

        * every node id keeps denoting the same Boolean function, so
          external references and all nodes above / below the two levels
          are untouched;
        * a rewired node (one whose cofactors mention the lower variable)
          keeps its id — only its label and children change;
        * canonicity: rewired functions depend on *both* swapped variables,
          so their new unique-table keys can collide neither with each
          other nor with pre-existing lower-variable nodes.

        The caller owns cache invalidation and the reorder bookkeeping; the
        lower variable's nodes that become unreachable stay allocated until
        the next garbage collection.
        """
        l2v = self._level_to_var
        v2l = self._var_to_level
        var_x = l2v[level]
        var_y = l2v[level + 1]
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        unique_get = unique.get
        free = self._free
        kept: List[int] = []
        kept_append = kept.append
        y_append = y_nodes.append
        probes = 0
        inserts = 0
        rewired = 0
        for node in x_nodes:
            if var_arr[node] != var_x:
                continue  # stale index entry (relabelled or freed earlier)
            f0 = low_arr[node]
            f1 = high_arr[node]
            f0_y = var_arr[f0] == var_y
            f1_y = var_arr[f1] == var_y
            if not (f0_y or f1_y):
                # Independent of var_y: the node just ends up one level
                # lower, label and children untouched.
                kept_append(node)
                continue
            if f0_y:
                f00 = low_arr[f0]
                f01 = high_arr[f0]
            else:
                f00 = f01 = f0
            if f1_y:
                f10 = low_arr[f1]
                f11 = high_arr[f1]
            else:
                f10 = f11 = f1
            del unique[(var_x, f0, f1)]
            if f00 == f10:
                n0 = f00
            else:
                key = (var_x, f00, f10)
                probes += 1
                n0 = unique_get(key)
                if n0 is None:
                    inserts += 1
                    if free:
                        n0 = free.pop()
                        var_arr[n0] = var_x
                        low_arr[n0] = f00
                        high_arr[n0] = f10
                    else:
                        n0 = len(var_arr)
                        var_arr.append(var_x)
                        low_arr.append(f00)
                        high_arr.append(f10)
                    unique[key] = n0
                    kept_append(n0)
            if f01 == f11:
                n1 = f01
            else:
                key = (var_x, f01, f11)
                probes += 1
                n1 = unique_get(key)
                if n1 is None:
                    inserts += 1
                    if free:
                        n1 = free.pop()
                        var_arr[n1] = var_x
                        low_arr[n1] = f01
                        high_arr[n1] = f11
                    else:
                        n1 = len(var_arr)
                        var_arr.append(var_x)
                        low_arr.append(f01)
                        high_arr.append(f11)
                    unique[key] = n1
                    kept_append(n1)
            # A rewired function genuinely depends on var_y (its pre-swap
            # self depended on var_x), so n0 != n1 always holds here and the
            # relabelled node needs no reduction check.
            var_arr[node] = var_y
            low_arr[node] = n0
            high_arr[node] = n1
            unique[(var_y, n0, n1)] = node
            y_append(node)
            rewired += 1
        l2v[level] = var_y
        l2v[level + 1] = var_x
        v2l[var_x] = level + 1
        v2l[var_y] = level
        self._unique_probes += probes
        self._unique_inserts += inserts
        self._reorder_swaps += 1
        return kept, rewired

    def swap_adjacent_levels(self, level: int) -> int:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Only the nodes labelled with the upper variable whose cofactors
        mention the lower variable are rewired — their node ids are
        preserved, so every registered external reference and every node
        above or below the two levels is untouched, and each node id keeps
        denoting the same Boolean function.  The computed tables and the
        memoised node counts are invalidated (generation bump) exactly as
        by garbage collection.

        Returns the number of rewired nodes.
        """
        if not 0 <= level < len(self._level_to_var) - 1:
            raise ValueError(f"level {level} has no adjacent level below it")
        start = time.perf_counter()
        var_x = self._level_to_var[level]
        var_arr = self._var
        x_nodes = [node for node in range(2, len(var_arr))
                   if var_arr[node] == var_x]
        _, rewired = self._swap_levels(level, x_nodes, [])
        self._invalidate_caches()
        self._reorder_pause_seconds += time.perf_counter() - start
        return rewired

    def sift(self, max_vars: int = 0, max_growth: float = 1.2,
             max_swaps: int = 0) -> Dict[str, int]:
        """Rudell sifting, in place, over everything reachable from the
        registered external references.

        Variables are processed in decreasing order of how many nodes carry
        their label; each is moved through every level by adjacent swaps
        (towards the nearer end first) and left at the position minimising
        the reachable node count.  ``max_vars`` bounds how many variables
        are sifted (0 = all); ``max_growth`` aborts a direction early once
        the node count exceeds ``max_growth`` times the best size seen,
        bounding the transient blow-up a bad position can cause;
        ``max_swaps`` (0 = unbounded) bounds the pause: it is checked
        before every exploratory swap, and the heaviest variables sift
        first, so a budget cut keeps the most valuable moves.  Only the
        move back to the current variable's best position ignores the
        budget (correctness requires completing it), so the overshoot is
        at most one level count.

        Every external reference stays valid throughout (node ids keep
        their functions); callers must only ensure no raw, unanchored node
        ids are held across the call, exactly as for
        :meth:`garbage_collect` — which runs at the start and end of the
        sift, so the size metric and the node store agree on what is live.

        Returns ``{"nodes_before", "nodes_after", "swaps"}`` for this run;
        the cumulative counters appear in :meth:`perf_stats`.
        """
        start = time.perf_counter()
        nodes_before = self._reachable_node_count()
        num_vars = self.num_vars
        if num_vars <= 1:
            return {"nodes_before": nodes_before, "nodes_after": nodes_before,
                    "swaps": 0}
        swaps_start = self._reorder_swaps
        # Reclaim pre-existing garbage so level sizes track live structure.
        self.garbage_collect()
        index = self._build_var_index()
        v2l = self._var_to_level
        l2v = self._level_to_var
        schedule = sorted(range(num_vars), key=lambda v: -len(index[v]))
        if max_vars:
            schedule = schedule[:max_vars]
        best_size = self._reachable_node_count()

        def swap_at(lvl: int) -> None:
            upper = l2v[lvl]
            lower = l2v[lvl + 1]
            index[upper], _ = self._swap_levels(lvl, index[upper], index[lower])

        def budget_spent() -> bool:
            return bool(max_swaps) and self._reorder_swaps - swaps_start >= max_swaps

        bottom = num_vars - 1
        for var in schedule:
            if budget_spent():
                break
            if not index[var]:
                continue  # no nodes carry this label; moving it is free
            start_level = v2l[var]
            best_level = start_level
            best = best_size
            directions = ((1, -1) if bottom - start_level <= start_level
                          else (-1, 1))
            for direction in directions:
                while not budget_spent():
                    level = v2l[var]
                    if direction > 0:
                        if level == bottom:
                            break
                        swap_at(level)
                    else:
                        if level == 0:
                            break
                        swap_at(level - 1)
                    size = self._reachable_node_count()
                    if size < best:
                        best = size
                        best_level = v2l[var]
                    elif size > best * max_growth:
                        break
            while v2l[var] > best_level:
                swap_at(v2l[var] - 1)
            while v2l[var] < best_level:
                swap_at(v2l[var])
            best_size = best
            # Bound the garbage the swaps leave behind between variables.
            if len(self._var) - len(self._free) > 2 * best_size + 1024:
                self.garbage_collect()
        self.garbage_collect()
        nodes_after = self._reachable_node_count()
        self._invalidate_caches()
        self._reorder_count += 1
        self._reorder_nodes_before = nodes_before
        self._reorder_nodes_after = nodes_after
        self._reorder_pause_seconds += time.perf_counter() - start
        return {"nodes_before": nodes_before, "nodes_after": nodes_after,
                "swaps": self._reorder_swaps - swaps_start}

    #: Work target (node visits, roughly swap count x live size) of one
    #: automatically triggered sift: bounds the pause a ``maybe_reorder``
    #: can inject between two gates, independent of manager size.
    _AUTO_REORDER_WORK_TARGET = 20_000_000

    def maybe_reorder(self) -> bool:
        """Run :meth:`sift` if the auto-reorder threshold is exceeded.

        Mirrors :meth:`maybe_collect`: callers invoke it at operation
        boundaries (the simulator does, between gates).  The trigger is the
        *reachable* node count — allocated-but-dead swap or apply debris is
        not a reason to reorder, and a store found to be mostly garbage is
        collected on the spot instead (so the cheap allocated-count guard
        holds again at the following boundaries) — and the
        sift runs under a swap budget sized so the pause stays bounded
        (:attr:`_AUTO_REORDER_WORK_TARGET` node visits — each swap's size
        re-scoring costs one O(live) reachability pass) even on managers
        with hundreds of variables; the heaviest variables sift first, so
        the budget is spent where it matters.  When the store is so large
        that even one full variable pass would blow the target, the sift
        is skipped entirely and only the threshold backs off — a stall of
        minutes between two gates is worse than a bigger diagram.  After a
        triggered reorder
        the threshold backs off geometrically — to at least double its
        previous value and at least twice the post-reorder live size — so
        a workload whose node count genuinely grows reorders only a
        logarithmic number of times instead of thrashing.  Returns True
        when a reorder ran.
        """
        threshold = self._auto_reorder_threshold
        if threshold is None:
            return False
        if len(self._var) - len(self._free) <= threshold:
            return False
        live = self._reachable_node_count()
        if live <= threshold:
            # The excess is garbage, not live growth: collect it so the
            # cheap allocated-count guard above holds again at the next
            # boundaries, instead of re-paying this reachability scan on
            # every gate until auto-GC's (much larger) threshold trips.
            self.garbage_collect()
            return False
        budget = self._AUTO_REORDER_WORK_TARGET // live
        if budget < 2 * self.num_vars:
            # Even one down-and-up pass of a single variable would exceed
            # the work target: sifting is unaffordable at this size, so
            # only back off (no sift) instead of stalling the simulation.
            self._auto_reorder_threshold = 2 * threshold
            return False
        result = self.sift(max_swaps=budget)
        self._auto_reorder_threshold = max(2 * threshold,
                                           2 * result["nodes_after"])
        return True

    def set_order(self, new_order: Sequence[int],
                  roots: Sequence[Bdd] = ()) -> List[Bdd]:
        """Install ``new_order`` (variable indices, top to bottom) as the
        variable order, in place, as a sequence of adjacent-level swaps.

        Unlike the historical rebuild implementation this never resets the
        node store: *every* registered external reference — not only the
        handles listed in ``roots`` — stays valid and keeps denoting the
        same function.  ``roots`` is accepted for backwards compatibility;
        fresh handles to the (unchanged) root nodes are returned in the
        same order.  The computed tables and memoised node counts are
        invalidated exactly as by garbage collection.
        """
        order = list(new_order)
        if sorted(order) != list(range(self.num_vars)):
            raise ValueError("new_order must be a permutation of all variables")
        start = time.perf_counter()
        nodes_before = self._reachable_node_count()
        index = self._build_var_index()
        v2l = self._var_to_level
        l2v = self._level_to_var
        for target_level, var in enumerate(order):
            # Bubble ``var`` up from its current level; levels above
            # ``target_level`` are already final, so it only moves up.
            while v2l[var] > target_level:
                level = v2l[var] - 1
                upper = l2v[level]
                index[upper], _ = self._swap_levels(level, index[upper],
                                                    index[var])
        self._invalidate_caches()
        self._reorder_count += 1
        self._reorder_nodes_before = nodes_before
        self._reorder_nodes_after = self._reachable_node_count()
        self._reorder_pause_seconds += time.perf_counter() - start
        return [self._wrap(root.node) for root in roots]

    def __repr__(self) -> str:
        return (f"BddManager(num_vars={self.num_vars}, "
                f"live_nodes={self.num_live_nodes()})")


class BatchApplier:
    """Runs one BDD operation over many operand tuples in one transaction.

    The gate rules of the bit-sliced simulator apply the *same* operation to
    all 4r slice BDDs of a state (cofactor every slice at the target qubit,
    ITE every slice against the same selector, one full-adder step per bit
    position across the four vectors).  Issuing those as 4r independent
    top-level calls re-binds the computed table, allocates a fresh interner
    closure and folds perf counters 4r times.  A ``BatchApplier`` performs
    the binding once per batch: one shared computed table, one interner
    transaction, one counter fold — the recursion itself is identical to the
    single-shot operations, so results are node-for-node the same.

    Operates on raw node ids (no :class:`~repro.bdd.expr.Bdd` wrapper churn).
    The caller must keep input roots reachable from live handles and must
    not run garbage collection between submitting a batch and re-anchoring
    the returned ids in handles, exactly as with any raw-node manager call.

    On managers too deep for the recursive fast path every method falls back
    to the explicit-stack single-shot operations, which still share the
    persistent per-operation computed tables.
    """

    __slots__ = ("manager",)

    def __init__(self, manager: BddManager):
        self.manager = manager

    def and_many(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Conjunction of every ``(f, g)`` pair."""
        return self.manager.batch_binary(OP_AND, pairs)

    def or_many(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Disjunction of every ``(f, g)`` pair."""
        return self.manager.batch_binary(OP_OR, pairs)

    def xor_many(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Exclusive-or of every ``(f, g)`` pair."""
        return self.manager.batch_binary(OP_XOR, pairs)

    def not_many(self, nodes: Sequence[int]) -> List[int]:
        """Negation of every node id."""
        return self.manager.batch_not(nodes)

    def ite_many(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """If-then-else of every ``(f, g, h)`` triple."""
        return self.manager.batch_ite(triples)

    def maj3_many(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """Fused full-adder carry of every ``(a, b, c)`` triple."""
        return self.manager.batch_maj3(triples)

    def xor3_many(self, triples: Sequence[Tuple[int, int, int]]) -> List[int]:
        """Fused full-adder sum of every ``(a, b, c)`` triple."""
        return self.manager.batch_xor3(triples)

    def restrict_many(self, nodes: Sequence[int], var: int, value: bool) -> List[int]:
        """Cofactor of every node id with respect to ``var = value``."""
        return self.manager.batch_restrict(nodes, var, value)

    def swap_vars_many(self, nodes: Sequence[int], var_a: int, var_b: int) -> List[int]:
        """Variable swap of every node id."""
        return self.manager.batch_swap_vars(nodes, var_a, var_b)

    def __repr__(self) -> str:
        return f"BatchApplier({self.manager!r})"

"""Array-backed BDD substrate: typed node columns and packed unique keys.

:class:`ArrayBddManager` keeps the exact algorithms of
:class:`repro.bdd.manager.BddManager` — every apply / ITE / fused-ternary
kernel, the GC sweep and the reordering transactions are inherited — but
swaps the substrate underneath them:

* the ``var`` / ``low`` / ``high`` node columns are ``array.array('i')``
  typed arrays (int32) instead of Python lists of boxed ints, roughly
  quartering the resident size of the node store and giving the compiled
  backend (:mod:`repro.bdd._compiled`) zero-copy ``int32`` views to run
  kernels over;
* unique-table keys are single packed integers
  ``(var << 60) | (low << 30) | high`` instead of ``(var, low, high)``
  tuples, so the find-or-create hot path hashes one machine-sized int
  rather than allocating and hashing a 3-tuple;
* the GC mark phase and the reachable-size walk used by sifting are
  vectorised with numpy frontier sweeps when numpy is importable, with the
  inherited pure-Python walks as the always-available fallback.

Node-identity contract (what the differential harness in
``tests/substrate`` pins): node ids are a pure function of the sequence of
find-or-create calls, and this class changes *how* triples are stored and
keyed, never *which* triples are interned or in what order.  The GC sweep
in the base class iterates the unique table in insertion order, so even
the free-list recycling order is preserved bit-for-bit.  A circuit run on
this manager therefore produces node-for-node the same DAG as the dict
backend.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.bdd.manager import _KEY_BITS, FALSE, TRUE, BddManager

try:  # numpy accelerates the GC mark / reachability walks; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    _np = None

#: Shift placing the variable index above two packed node-id fields.
_VAR_SHIFT = 2 * _KEY_BITS


def pack_key(var: int, low: int, high: int) -> int:
    """Pack a node triple into the single-int unique-table key."""
    return (var << _VAR_SHIFT) | (low << _KEY_BITS) | high


class ArrayBddManager(BddManager):
    """Drop-in :class:`BddManager` on typed columns and packed keys.

    Construction, the public API and all operation semantics are identical
    to the base class; see the module docstring for what differs under the
    hood and for the node-identity contract.
    """

    #: Backend name reported by :meth:`BddManager.perf_stats` plumbing.
    substrate_name = "array"
    _backend_index = 1

    def __init__(self, num_vars: int = 0,
                 auto_gc_threshold: Optional[int] = 1_000_000,
                 cache_size_limit: Optional[int] = 2_000_000,
                 auto_reorder_threshold: Optional[int] = None):
        super().__init__(num_vars, auto_gc_threshold=auto_gc_threshold,
                         cache_size_limit=cache_size_limit,
                         auto_reorder_threshold=auto_reorder_threshold)
        # Rebind the node columns as int32 typed arrays.  Variables create
        # no nodes, so at this point the columns hold only the terminals.
        self._var = array("i", self._var)
        self._low = array("i", self._low)
        self._high = array("i", self._high)

    # ------------------------------------------------------------------ #
    # interning on packed keys (lockstep with the base-class pair)
    # ------------------------------------------------------------------ #
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create on the packed key; single-shot sibling of
        :meth:`_interner`, same lockstep rule as the base class."""
        if low == high:
            return low
        key = (var << _VAR_SHIFT) | (low << _KEY_BITS) | high
        self._unique_probes += 1
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        self._unique_inserts += 1
        return node

    def _interner(self):
        """Packed-key twin of :meth:`BddManager._interner`; identical
        find-or-create order, so node ids match the dict backend."""
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        unique_get = unique.get
        free = self._free
        counts = [0, 0]

        def make(var: int, low: int, high: int) -> int:
            if low == high:
                return low
            ukey = (var << _VAR_SHIFT) | (low << _KEY_BITS) | high
            counts[0] += 1
            node = unique_get(ukey)
            if node is None:
                counts[1] += 1
                if free:
                    node = free.pop()
                    var_arr[node] = var
                    low_arr[node] = low
                    high_arr[node] = high
                else:
                    node = len(var_arr)
                    var_arr.append(var)
                    low_arr.append(low)
                    high_arr.append(high)
                unique[ukey] = node
            return node

        return make, counts

    # ------------------------------------------------------------------ #
    # vectorised reachability walks
    # ------------------------------------------------------------------ #
    def _column_views(self):
        """Zero-copy int32 numpy views of the node columns.

        The views alias the live buffers: they become stale the moment a
        column append reallocates, so callers must finish with them before
        any node is created.
        """
        return (_np.frombuffer(self._var, dtype=_np.int32),
                _np.frombuffer(self._low, dtype=_np.int32),
                _np.frombuffer(self._high, dtype=_np.int32))

    def _marked_frontier(self):
        """Numpy frontier fixpoint over the external roots: a bool array
        with exactly the nodes the base class's mark walk would visit."""
        _, low_view, high_view = self._column_views()
        marked = _np.zeros(len(self._var), dtype=bool)
        marked[FALSE] = marked[TRUE] = True
        frontier = _np.fromiter(
            (node for node in self._external_refs if node > 1),
            dtype=_np.int64)
        while frontier.size:
            frontier = frontier[~marked[frontier]]
            if not frontier.size:
                break
            marked[frontier] = True
            frontier = _np.concatenate(
                (low_view[frontier], high_view[frontier])).astype(_np.int64)
        return marked

    #: Node stores smaller than this use the inherited Python walks: the
    #: per-call numpy view / fixpoint overhead only amortises once the
    #: frontier sweeps touch thousands of nodes.
    _VECTORISE_FLOOR = 4096

    def _mark_live(self):
        """GC mark phase, vectorised.  The sweep stays in the base class
        (its unique-table iteration order defines free-list order, which
        the node-identity contract depends on)."""
        if _np is None or len(self._var) < self._VECTORISE_FLOOR:
            return super()._mark_live()
        return self._marked_frontier()

    def _reachable_node_count(self) -> int:
        """Reachable-size walk used to score reordering, vectorised."""
        if _np is None or len(self._var) < self._VECTORISE_FLOOR:
            return super()._reachable_node_count()
        return int(self._marked_frontier().sum())

    # ------------------------------------------------------------------ #
    # in-place level swap on packed keys
    # ------------------------------------------------------------------ #
    def _swap_levels(self, level: int, x_nodes: List[int],
                     y_nodes: List[int]) -> Tuple[List[int], int]:
        """Packed-key port of :meth:`BddManager._swap_levels`: identical
        rewiring transaction (same invariants, same counter folds), with
        the unique-table delete / probe / insert running on packed keys
        against the typed columns."""
        l2v = self._level_to_var
        v2l = self._var_to_level
        var_x = l2v[level]
        var_y = l2v[level + 1]
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        unique = self._unique
        unique_get = unique.get
        free = self._free
        kept: List[int] = []
        kept_append = kept.append
        y_append = y_nodes.append
        probes = 0
        inserts = 0
        rewired = 0
        for node in x_nodes:
            if var_arr[node] != var_x:
                continue  # stale index entry (relabelled or freed earlier)
            f0 = low_arr[node]
            f1 = high_arr[node]
            f0_y = var_arr[f0] == var_y
            f1_y = var_arr[f1] == var_y
            if not (f0_y or f1_y):
                kept_append(node)
                continue
            if f0_y:
                f00 = low_arr[f0]
                f01 = high_arr[f0]
            else:
                f00 = f01 = f0
            if f1_y:
                f10 = low_arr[f1]
                f11 = high_arr[f1]
            else:
                f10 = f11 = f1
            del unique[(var_x << _VAR_SHIFT) | (f0 << _KEY_BITS) | f1]
            if f00 == f10:
                n0 = f00
            else:
                key = (var_x << _VAR_SHIFT) | (f00 << _KEY_BITS) | f10
                probes += 1
                n0 = unique_get(key)
                if n0 is None:
                    inserts += 1
                    if free:
                        n0 = free.pop()
                        var_arr[n0] = var_x
                        low_arr[n0] = f00
                        high_arr[n0] = f10
                    else:
                        n0 = len(var_arr)
                        var_arr.append(var_x)
                        low_arr.append(f00)
                        high_arr.append(f10)
                    unique[key] = n0
                    kept_append(n0)
            if f01 == f11:
                n1 = f01
            else:
                key = (var_x << _VAR_SHIFT) | (f01 << _KEY_BITS) | f11
                probes += 1
                n1 = unique_get(key)
                if n1 is None:
                    inserts += 1
                    if free:
                        n1 = free.pop()
                        var_arr[n1] = var_x
                        low_arr[n1] = f01
                        high_arr[n1] = f11
                    else:
                        n1 = len(var_arr)
                        var_arr.append(var_x)
                        low_arr.append(f01)
                        high_arr.append(f11)
                    unique[key] = n1
                    kept_append(n1)
            # A rewired function genuinely depends on var_y, so n0 != n1
            # always holds here (see the base-class invariant notes).
            var_arr[node] = var_y
            low_arr[node] = n0
            high_arr[node] = n1
            unique[(var_y << _VAR_SHIFT) | (n0 << _KEY_BITS) | n1] = node
            y_append(node)
            rewired += 1
        l2v[level] = var_y
        l2v[level + 1] = var_x
        v2l[var_x] = level + 1
        v2l[var_y] = level
        self._unique_probes += probes
        self._unique_inserts += inserts
        self._reorder_swaps += 1
        return kept, rewired

"""The asyncio simulation server (``repro-serve``).

One process, one event loop, one :class:`~repro.service.scheduler.JobScheduler`
worker pool: connections speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over TCP or a unix-domain socket, simulation
jobs run on worker threads (the loop never blocks on a BDD apply), and the
process-wide :class:`~repro.cache.result_cache.ResultCache` /
:class:`~repro.cache.sessions.SessionPool` amortise work **across
requests and across clients** — the cross-run machinery finally facing
traffic instead of test runs.

Request handling rules:

* Async job kinds reply ``job_accepted`` immediately, then the terminal
  result (or a structured ``error``) when the job finishes; a client may
  have many jobs in flight on one connection and replies demultiplex by
  ``in_reply_to``.
* A full queue rejects at submission time with ``error`` /
  ``queue_full`` — structured backpressure, never a hang.
* A client disconnecting mid-job cancels its outstanding jobs (queued
  ones conclude instantly, running ones stop at the next gate boundary),
  so abandoned work cannot occupy the pool.
* Sweeps execute serially inside one job, which preserves the
  byte-identity guarantee: results equal a local serial ``run_sweep()``.

Run it standalone::

    repro-serve --port 7621             # or: python -m repro.service.server
    repro-serve --unix /tmp/repro.sock

or embedded (tests, benchmarks) via :func:`serve_background`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cache.result_cache import ResultCache
from repro.cache.sessions import SessionPool
from repro.engines.frontdoor import run, run_tasks
from repro.engines.limits import LimitEnforcer, ResourceLimits
from repro.engines.registry import create_engine, resolve_engine
from repro.engines.result import STATUS_OK
from repro.exceptions import JobCancelledError
from repro.perf.counters import PerfCounters
from repro.resilience.faults import FAULT_SERVER_SEND, FAULT_SESSION_APPEND, maybe_fire
from repro.service import protocol
from repro.service.protocol import (
    AppendToSession,
    CancelJob,
    CancelReply,
    CloseSession,
    ErrorReply,
    HealthReply,
    HealthRequest,
    JobAccepted,
    ListSessions,
    Message,
    OpenSession,
    ProbabilityReply,
    ProtocolError,
    QueryProbability,
    RunCompleted,
    SampleShots,
    ServerStatsRequest,
    SessionClosed,
    SessionList,
    SessionOpened,
    StatsReply,
    SubmitRun,
    SubmitSweep,
    SweepCompleted,
    WatchRequest,
    encode_message,
)
from repro.service.scheduler import (
    JOB_CANCELLED,
    DrainingError,
    JobScheduler,
    QueueFullError,
)
from repro.service.sessions import SessionLimitError, SessionRegistry

#: Floor on the ``watch`` streaming interval, in seconds.  Requests below
#: it are clamped, so a client asking for ``interval=0`` cannot turn the
#: admin stream into a busy-loop saturating the event loop.
MIN_WATCH_INTERVAL = 0.05

#: How many accepted idempotency keys the server remembers (process-wide).
#: A retried submission whose key is still indexed re-attaches to the
#: original job; keys older than the newest this many decay — at which
#: point a retry re-executes, which is safe for run/sweep/sample requests
#: (pure functions of their payload) and caught at the session for appends.
IDEMPOTENCY_KEYS_CAP = 1024


class Server:
    """The persistent simulation service.

    Parameters: listen on ``host`` / ``port`` (``port=0`` picks a free
    one; :attr:`address` reports it after :meth:`start`) or on a
    ``unix_path`` socket; ``queue_depth`` bounds the job backlog;
    ``workers`` sizes the simulation thread pool; ``default_limits``
    applies to requests that carry no budgets of their own; ``cache`` /
    ``session_pool`` default to fresh process-wide instances and may be
    shared with an embedding process.

    ``checkpoint_dir`` makes sessions **survive restarts**: after every
    committed append the session's warm state is snapshotted (atomically,
    checksummed — :mod:`repro.snapshot`) under
    ``<checkpoint_dir>/sessions/<session_id>.ckpt``, and :meth:`start`
    rehydrates every valid snapshot it finds — the restored session keeps
    its pre-restart id and its very next append resumes from the restored
    warm state.  A stale or corrupt snapshot is counted
    (``snapshot_sessions_skipped``) and skipped, never fatal; closing a
    session removes its snapshot, so a clean shutdown leaks nothing.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None, *,
                 queue_depth: int = 32, workers: int = 2,
                 max_sessions: int = 32,
                 default_limits: Optional[ResourceLimits] = None,
                 cache: Optional[ResultCache] = None,
                 session_pool: Optional[SessionPool] = None,
                 counters: Optional[PerfCounters] = None,
                 checkpoint_dir: Union[str, os.PathLike, None] = None):
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.checkpoint_dir = (None if checkpoint_dir is None
                               else os.fspath(checkpoint_dir))
        self._session_ckpt_dir = (
            None if self.checkpoint_dir is None
            else os.path.join(self.checkpoint_dir, "sessions"))
        self._last_checkpoint_at: Optional[float] = None
        self.default_limits = default_limits or ResourceLimits()
        self.counters = counters if counters is not None else PerfCounters()
        self.cache = cache if cache is not None else ResultCache()
        self.session_pool = (session_pool if session_pool is not None
                             else SessionPool(max_sessions=max_sessions))
        self.scheduler = JobScheduler(max_depth=queue_depth, workers=workers,
                                      counters=self.counters)
        self.sessions = SessionRegistry(max_sessions=max_sessions)
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = 0.0
        #: Degradation state: ``"ok"`` → ``"draining"`` (reported by the
        #: ``health`` verb and the stats snapshot).
        self._state = "ok"
        # Accepted idempotency keys → their Job.  Touched only from the
        # event-loop thread (submission and delivery both run there), so
        # no lock is needed.
        self._idempotency: "OrderedDict[str, Any]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """Where the server listens: ``(host, port)`` for TCP (the real
        port, after ``port=0`` resolution) or the unix socket path."""
        if self.unix_path is not None:
            return self.unix_path
        if self._server is not None and self._server.sockets:
            name = self._server.sockets[0].getsockname()
            return (name[0], name[1])
        return (self.host, self.port)

    async def start(self) -> None:
        """Start the worker pool, rehydrate checkpointed sessions, and
        begin accepting connections."""
        self.scheduler.start()
        self._started_at = time.perf_counter()
        self._restore_sessions()
        if self.unix_path is not None:
            # A stale socket file (previous process crashed before its
            # cleanup ran) would fail the bind; nothing is listening on it
            # or the unlink below is about to make that obvious.
            self._remove_unix_socket()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (used by ``main``)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections, cancel queued jobs, join workers,
        and remove the unix socket file (when listening on one)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.stop()
        self._remove_unix_socket()

    async def drain(self, grace_seconds: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work, exit.

        The sequence — close the listener, switch the scheduler to drain
        mode (new submissions on surviving connections reject with code
        ``draining``), wait up to ``grace_seconds`` for queued and running
        jobs to finish delivering, then stop the pool (anything still
        running past the deadline gets its cancel token set).  Returns
        True when every in-flight job completed inside the grace window.
        ``repro-serve`` runs this on SIGINT/SIGTERM.
        """
        if self._state != "draining":
            self._state = "draining"
            self.counters.add("drain_begun")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.begin_drain()
        loop = asyncio.get_running_loop()
        completed = await loop.run_in_executor(
            None, self.scheduler.wait_idle, grace_seconds)
        if not completed:
            self.counters.add("drain_deadline_exceeded")
        # Give already-finished jobs' delivery tasks one loop pass so the
        # terminal replies flush before connections start closing.
        await asyncio.sleep(0)
        # stop() joins the worker threads; past-deadline jobs only notice
        # their cancel token at the next gate boundary, so the join runs on
        # the executor to keep the loop (health, stats, replies) live.
        await loop.run_in_executor(None, self.scheduler.stop)
        self._remove_unix_socket()
        return completed

    def _remove_unix_socket(self) -> None:
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # session checkpointing
    # ------------------------------------------------------------------ #
    def _session_checkpoint_path(self, session_id: str) -> str:
        return os.path.join(self._session_ckpt_dir, f"{session_id}.ckpt")

    def _checkpoint_session(self, session, cumulative) -> None:
        """Snapshot ``session``'s post-append warm state to disk.

        Runs on the worker thread, under the session lock, right after the
        append committed: the session pool just deposited the cumulative
        circuit's state, so a full-depth lease hands back a private fork
        to serialise (the chain lock it holds keeps the shared manager
        still while :func:`~repro.snapshot.dump_simulator` walks it).  Any
        failure is counted and swallowed — checkpointing degrades, appends
        never fail because of it.
        """
        if self._session_ckpt_dir is None:
            return
        from repro.cache.fingerprint import gate_tokens
        from repro.snapshot import dump_simulator

        tokens = tuple(gate_tokens(cumulative))
        lease = self.session_pool.match(session.num_qubits, tokens, None)
        if lease is None or lease.depth != len(tokens):
            # No full-depth warm state to serialise (non-snapshot engine,
            # pool eviction, or a busy chain) — skip, don't block.
            if lease is not None:
                lease.release()
            self.counters.add("snapshot_session_write_skips")
            return
        try:
            os.makedirs(self._session_ckpt_dir, exist_ok=True)
            dump_simulator(
                lease.fork, self._session_checkpoint_path(session.session_id),
                extra={"session_id": session.session_id,
                       "engine": session.engine,
                       "num_qubits": session.num_qubits,
                       "appends": session.appends,
                       "circuit": protocol.circuit_to_wire(cumulative),
                       "limits": protocol.limits_to_wire(session.limits)})
        except Exception:  # noqa: BLE001 - degradation, never append failure
            self.counters.add("snapshot_session_write_failures")
        else:
            self.counters.add("snapshot_session_writes")
            self._last_checkpoint_at = time.perf_counter()
        finally:
            lease.release()

    def _restore_sessions(self) -> None:
        """Rehydrate every valid session snapshot in the checkpoint dir.

        Each file restores to a registered session under its pre-restart
        id with its warm state deposited back into the pool, so the first
        post-restart append resumes instead of replaying from ``|0>``.
        Torn, corrupt or inconsistent files — and ids that no longer fit
        the registry — are counted as ``snapshot_sessions_skipped`` and
        left on disk for inspection; rehydration is never fatal.
        """
        if self._session_ckpt_dir is None:
            return
        from repro.cache.fingerprint import gate_tokens
        from repro.snapshot import SnapshotCorruptError, load_simulator

        os.makedirs(self._session_ckpt_dir, exist_ok=True)
        for name in sorted(os.listdir(self._session_ckpt_dir)):
            if not name.endswith(".ckpt"):
                continue
            path = os.path.join(self._session_ckpt_dir, name)
            try:
                simulator, extra = load_simulator(path)
                session_id = extra["session_id"]
                num_qubits = int(extra["num_qubits"])
                circuit = protocol.circuit_from_wire(extra["circuit"])
                if not isinstance(session_id, str):
                    raise ValueError("non-string session id")
                if name != f"{session_id}.ckpt":
                    raise ValueError("session checkpoint filename mismatch")
                if (circuit.num_qubits != num_qubits
                        or simulator.state.num_qubits != num_qubits):
                    raise ValueError("checkpointed session shape mismatch")
                limits = protocol.limits_from_wire(extra.get("limits"))
            except (SnapshotCorruptError, ProtocolError, KeyError,
                    TypeError, ValueError, OSError):
                self.counters.add("snapshot_sessions_skipped")
                continue
            session = self.sessions.adopt_restored(
                session_id, num_qubits, str(extra.get("engine", "bitslice")),
                limits or self.default_limits, circuit,
                int(extra.get("appends", 0)))
            if session is None:
                self.counters.add("snapshot_sessions_skipped")
                continue
            manager = simulator.state.manager
            self.session_pool.deposit(
                num_qubits, tuple(gate_tokens(circuit)), None, simulator,
                lambda m=manager: m.cache_generation)
            self.counters.add("snapshot_sessions_restored")

    def _discard_session_checkpoint(self, session_id: str) -> None:
        if self._session_ckpt_dir is None:
            return
        try:
            os.remove(self._session_checkpoint_path(session_id))
        except OSError:
            pass

    def _checkpoint_gauges(self) -> Dict[str, Any]:
        """The health/stats checkpoint gauges (zeros when checkpointing is
        off, so the surface shape is stable)."""
        files = 0
        if self._session_ckpt_dir is not None:
            try:
                files = sum(1 for name in os.listdir(self._session_ckpt_dir)
                            if name.endswith(".ckpt"))
            except OSError:
                files = 0
        age = (-1.0 if self._last_checkpoint_at is None
               else time.perf_counter() - self._last_checkpoint_at)
        restored = int(self.counters.snapshot().get(
            "snapshot_sessions_restored", 0))
        return {"checkpointed_sessions": files,
                "restored_sessions": restored,
                "checkpoint_age_seconds": age}

    # ------------------------------------------------------------------ #
    # admin snapshot
    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> Dict[str, Any]:
        """One admin-surface snapshot: queue gauges, live sessions, uptime
        and the merged counter bag (``service_*`` + the pool's
        ``prefix_*`` + the result cache's ``result_cache_*`` series)."""
        snapshot: Dict[str, Any] = dict(self.scheduler.stats())
        snapshot["state"] = self._state
        snapshot["live_sessions"] = len(self.sessions)
        snapshot["uptime_seconds"] = time.perf_counter() - self._started_at
        snapshot.update(self._checkpoint_gauges())
        counters = PerfCounters(self.counters.snapshot())
        counters.update(self.session_pool.stats())
        counters.update(self.cache.stats())
        snapshot["counters"] = counters.snapshot()
        return snapshot

    def _health_reply(self) -> HealthReply:
        """The ``health`` probe: state plus the liveness gauges, no
        counter bag (cheap enough for a tight load-balancer poll)."""
        stats = self.scheduler.stats()
        gauges = self._checkpoint_gauges()
        return HealthReply(
            state=self._state,
            queue_depth=stats["queue_depth"],
            queue_capacity=stats["queue_capacity"],
            running=stats["running"],
            workers=stats["workers"],
            workers_alive=self.scheduler.alive_workers(),
            sessions=len(self.sessions),
            uptime_seconds=time.perf_counter() - self._started_at,
            checkpointed_sessions=gauges["checkpointed_sessions"],
            restored_sessions=gauges["restored_sessions"],
            checkpoint_age_seconds=gauges["checkpoint_age_seconds"])

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn_jobs: Dict[str, Any] = {}
        deliver_tasks: set = set()
        send_lock = asyncio.Lock()

        async def send(message: Message, reply_to: Optional[str]) -> None:
            async with send_lock:
                maybe_fire(FAULT_SERVER_SEND)
                writer.write(encode_message(message, in_reply_to=reply_to))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request, envelope = protocol.decode_request(line)
                except ProtocolError as exc:
                    code = ("version_mismatch"
                            if "protocol version" in str(exc)
                            else "bad_request")
                    await send(ErrorReply(code, str(exc)), None)
                    continue
                msg_id = envelope.get("id")
                self.counters.add("service_requests_total")
                self.counters.add(f"service_requests_{request.kind}")
                try:
                    await self._dispatch(request, msg_id, send, conn_jobs,
                                         deliver_tasks)
                except ProtocolError as exc:
                    await send(ErrorReply("bad_request", str(exc)), msg_id)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutting down; fall through to the cleanup below
        finally:
            for task in deliver_tasks:
                task.cancel()
            for job_id, job in conn_jobs.items():
                if not job.future.done():
                    outcome = self.scheduler.cancel(job_id)
                    if outcome in ("cancelled", "cancelling"):
                        self.counters.add("service_disconnect_cancels")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    def _track(self, deliver_tasks: set, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        deliver_tasks.add(task)
        task.add_done_callback(deliver_tasks.discard)

    def _replayable_job(self, key: Optional[str]):
        """The indexed job for an idempotency key, provided it was not
        cancelled — a cancelled original never committed anything, so the
        retry must execute for real (at-least-once there, exactly-once
        everywhere else)."""
        if key is None:
            return None
        job = self._idempotency.get(key)
        if job is None:
            return None
        if (job.state == JOB_CANCELLED or job.cancel_event.is_set()
                or job.future.cancelled()):
            del self._idempotency[key]
            return None
        return job

    async def _submit(self, fn, request: Message, msg_id: Optional[str],
                      send, conn_jobs: Dict[str, Any], deliver_tasks: set,
                      build_reply) -> None:
        """Queue a job and arrange its two-phase reply (accepted + result);
        a full queue replies with the structured ``queue_full`` error, a
        draining server with ``draining``.  A request re-carrying an
        already-accepted idempotency key re-attaches to the original job
        instead of executing again."""
        key = getattr(request, "idempotency_key", None)
        existing = self._replayable_job(key)
        if existing is not None:
            self.counters.add("service_idempotent_replays")
            conn_jobs[existing.job_id] = existing
            await send(JobAccepted(existing.job_id), msg_id)
            self._track(deliver_tasks,
                        self._deliver(existing, msg_id, send, build_reply,
                                      conn_jobs))
            return
        priority = getattr(request, "priority", 0)
        try:
            job = self.scheduler.submit(fn, request_kind=request.kind,
                                        priority=priority)
        except QueueFullError as exc:
            await send(ErrorReply("queue_full", str(exc),
                                  {"depth": exc.depth,
                                   "capacity": exc.capacity}), msg_id)
            return
        except DrainingError as exc:
            await send(ErrorReply("draining", str(exc)), msg_id)
            return
        if key is not None:
            self._idempotency[key] = job
            while len(self._idempotency) > IDEMPOTENCY_KEYS_CAP:
                self._idempotency.popitem(last=False)
        conn_jobs[job.job_id] = job
        await send(JobAccepted(job.job_id), msg_id)
        self._track(deliver_tasks,
                    self._deliver(job, msg_id, send, build_reply, conn_jobs))

    async def _deliver(self, job, msg_id: Optional[str], send,
                       build_reply, conn_jobs: Dict[str, Any]) -> None:
        try:
            try:
                value = await asyncio.wrap_future(job.future)
            except asyncio.CancelledError:
                raise
            except JobCancelledError as exc:
                reply = ErrorReply("cancelled", str(exc),
                                   {"job_id": job.job_id})
            except Exception as exc:  # noqa: BLE001 - failures become replies
                reply = ErrorReply("internal",
                                   f"{type(exc).__name__}: {exc}",
                                   {"job_id": job.job_id})
            else:
                reply = build_reply(job.job_id, value)
            try:
                await send(reply, msg_id)
            except (ConnectionResetError, BrokenPipeError, OSError):
                # The client vanished between completion and delivery; the
                # result is simply undeliverable on this connection (a
                # retry with the same idempotency key can still fetch it).
                self.counters.add("service_reply_drops")
        finally:
            # Delivered (or abandoned) jobs must not accumulate on a
            # long-lived connection: the Job retains its closure and
            # result via the future.
            conn_jobs.pop(job.job_id, None)

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: Message, msg_id: Optional[str],
                        send, conn_jobs: Dict[str, Any],
                        deliver_tasks: set) -> None:
        if isinstance(request, (SubmitRun, SampleShots)):
            await self._submit(self._run_fn(request), request, msg_id, send,
                               conn_jobs, deliver_tasks,
                               lambda job_id, result:
                               RunCompleted(job_id, result))
        elif isinstance(request, SubmitSweep):
            await self._submit(self._sweep_fn(request), request, msg_id,
                               send, conn_jobs, deliver_tasks,
                               lambda job_id, results:
                               SweepCompleted(job_id, results))
        elif isinstance(request, QueryProbability):
            await self._submit(self._probability_fn(request), request,
                               msg_id, send, conn_jobs, deliver_tasks,
                               lambda job_id, value:
                               ProbabilityReply(job_id, value[0], value[1]))
        elif isinstance(request, OpenSession):
            await self._open_session(request, msg_id, send)
        elif isinstance(request, AppendToSession):
            await self._append_to_session(request, msg_id, send, conn_jobs,
                                          deliver_tasks)
        elif isinstance(request, CloseSession):
            session = self.sessions.close(request.session_id)
            if session is None:
                await send(ErrorReply("unknown_session",
                                      f"no session {request.session_id!r}"),
                           msg_id)
            else:
                self.counters.add("service_session_closes")
                # A closed session must not rehydrate after a restart.
                self._discard_session_checkpoint(session.session_id)
                await send(SessionClosed(session.session_id,
                                         session.appends), msg_id)
        elif isinstance(request, ServerStatsRequest):
            await send(StatsReply(self.stats_snapshot()), msg_id)
        elif isinstance(request, ListSessions):
            await send(SessionList(self.sessions.summaries()), msg_id)
        elif isinstance(request, HealthRequest):
            await send(self._health_reply(), msg_id)
        elif isinstance(request, CancelJob):
            outcome = self.scheduler.cancel(request.job_id)
            await send(CancelReply(request.job_id, outcome), msg_id)
        elif isinstance(request, WatchRequest):
            self._track(deliver_tasks,
                        self._watch(request, msg_id, send))
        else:  # pragma: no cover - registry and dispatch kept in lockstep
            raise ProtocolError(f"unhandled request kind {request.kind!r}")

    # -- job builders --------------------------------------------------- #
    def _run_fn(self, request):
        limits = request.limits or self.default_limits
        reorder = getattr(request, "reorder", None)

        def fn(cancel):
            return run(request.circuit, engine=request.engine, limits=limits,
                       shots=request.shots, seed=request.seed,
                       reorder=reorder, cache=self.cache,
                       sessions=self.session_pool, cancel=cancel)
        return fn

    def _sweep_fn(self, request: SubmitSweep):
        limits = request.limits or self.default_limits

        def fn(cancel):
            return run_tasks(request.tasks, limits=limits, jobs=1,
                             shots=request.shots, seed=request.seed,
                             reorder=request.reorder, cache=self.cache,
                             sessions=self.session_pool, cancel=cancel)
        return fn

    def _probability_fn(self, request: QueryProbability):
        limits = request.limits or self.default_limits

        def fn(cancel):
            resolved = resolve_engine(request.engine, request.circuit, limits)
            instance = create_engine(resolved)
            enforcer = LimitEnforcer(instance, limits, cancel_token=cancel)
            enforcer.execute(request.circuit)
            return (instance.probability(list(request.qubits),
                                         list(request.values)), resolved)
        return fn

    # -- sessions -------------------------------------------------------- #
    async def _open_session(self, request: OpenSession,
                            msg_id: Optional[str], send) -> None:
        try:
            session = self.sessions.open(
                int(request.num_qubits), request.engine,
                request.limits or self.default_limits)
        except SessionLimitError as exc:
            await send(ErrorReply("too_many_sessions", str(exc),
                                  {"limit": exc.limit}), msg_id)
            return
        except ValueError as exc:
            await send(ErrorReply("bad_request", str(exc)), msg_id)
            return
        # Pin the |0> (empty-prefix) state into the warm pool, so the
        # session's very first append already resumes instead of preparing
        # a fresh engine.  The pin is simulation work, so it goes through
        # the bounded scheduler (low priority) like any other job — never
        # the default executor, which would sidestep the queue_depth
        # backpressure contract.  It is only an optimisation: when the
        # queue is full (or the pin fails) the session still opens and its
        # first append simply starts cold.
        try:
            job = self.scheduler.submit(self._pin_fn(session),
                                        request_kind="session_pin",
                                        priority=-1)
        except (QueueFullError, DrainingError, RuntimeError):
            self.counters.add("service_session_pin_skips")
        else:
            try:
                await asyncio.wrap_future(job.future)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - pin failure is non-fatal
                self.counters.add("service_session_pin_skips")
        self.counters.add("service_session_opens")
        await send(SessionOpened(session.session_id, session.engine,
                                 session.num_qubits), msg_id)

    def _pin_fn(self, session):
        def fn(cancel):
            with session.lock:
                run(session.circuit, engine=session.engine,
                    limits=session.limits, sessions=self.session_pool,
                    cache=None, cancel=cancel)
        return fn

    async def _append_to_session(self, request: AppendToSession,
                                 msg_id: Optional[str], send,
                                 conn_jobs: Dict[str, Any],
                                 deliver_tasks: set) -> None:
        session = self.sessions.get(request.session_id)
        if session is None:
            await send(ErrorReply("unknown_session",
                                  f"no session {request.session_id!r}"),
                       msg_id)
            return
        if request.circuit is None:
            await send(ErrorReply("bad_request",
                                  "append_to_session needs a circuit"),
                       msg_id)
            return
        try:
            session.check_width(request.circuit)
        except ValueError as exc:
            await send(ErrorReply("bad_request", str(exc)), msg_id)
            return

        # The cumulative snapshot must happen on the worker, under the
        # session lock: with two appends in flight on one session, a
        # snapshot taken here at dispatch time would give both the same
        # base and the later commit would drop the earlier append's gates.
        def fn(cancel):
            with session.lock:
                if cancel.is_set():
                    raise JobCancelledError("cancelled before session append")
                # The at-most-once guard: a retried append whose original
                # already advanced the session replays the recorded result
                # instead of appending the delta a second time.  Checked
                # under the lock, before any state moves.
                replayed = session.replay(request.idempotency_key)
                if replayed is not None:
                    self.counters.add("service_append_replays")
                    return replayed
                maybe_fire(FAULT_SESSION_APPEND)
                cumulative = session.extended(request.circuit)
                result = run(cumulative, engine=session.engine,
                             limits=session.limits, shots=request.shots,
                             seed=request.seed, sessions=self.session_pool,
                             cancel=cancel)
                self.counters.add("service_session_appends")
                resumed = result.extra.get("resumed_from_depth")
                if resumed is not None:
                    self.counters.add("service_session_resume_hits")
                    self.counters.add("service_session_gates_saved", resumed)
                if result.status == STATUS_OK:
                    session.advance(cumulative, result.status)
                    session.remember(request.idempotency_key, result)
                    # Crash-safety: persist the committed state while the
                    # session lock still covers it, so a SIGKILL after this
                    # append restarts into a server that serves this very
                    # session warm.
                    self._checkpoint_session(session, cumulative)
                return result
        await self._submit(fn, request, msg_id, send, conn_jobs,
                           deliver_tasks,
                           lambda job_id, result:
                           RunCompleted(job_id, result))

    # -- watch ----------------------------------------------------------- #
    async def _watch(self, request: WatchRequest, msg_id: Optional[str],
                     send) -> None:
        interval = max(MIN_WATCH_INTERVAL, float(request.interval))
        count = request.count
        sent = 0
        while count is None or sent < count:
            try:
                await send(StatsReply(self.stats_snapshot()), msg_id)
            except (ConnectionResetError, BrokenPipeError):
                return
            self.counters.add("service_watch_frames")
            sent += 1
            if count is not None and sent >= count:
                return
            await asyncio.sleep(interval)


class BackgroundServer:
    """A :class:`Server` running on its own event-loop thread.

    Returned by :func:`serve_background`; use :attr:`address` to connect a
    client and :meth:`stop` (or the context manager form) to shut the
    thread down.  Tests and benchmarks embed the real server this way
    instead of mocking the wire.
    """

    def __init__(self, server: Server, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """The listening address (see :attr:`Server.address`)."""
        return self.server.address

    def drain(self, grace_seconds: float = 10.0) -> bool:
        """Run :meth:`Server.drain` on the loop thread and block for its
        outcome — the in-process twin of sending ``repro-serve`` a
        SIGTERM.  Call :meth:`stop` afterwards to join the thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(grace_seconds), self._loop)
        return future.result(timeout=grace_seconds + 30)

    def stop(self) -> None:
        """Stop the server and join its loop thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        """Context-manager entry: the server is already listening."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: stop the server thread."""
        self.stop()


def serve_background(**kwargs) -> BackgroundServer:
    """Start a :class:`Server` on a daemon thread and return its handle
    once it is listening (kwargs pass through to :class:`Server`; the
    default ``port=0`` picks a free port, read it from ``.address``)."""
    server = Server(**kwargs)
    ready = threading.Event()
    failure: List[BaseException] = []
    loop_holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            failure.append(exc)
            # start() can fail after side effects landed — scheduler
            # threads running, a unix socket file created by a bind that
            # then errored.  stop() undoes both (it tolerates a listener
            # that never registered), so a failed startup leaks neither a
            # socket path that would break the next bind nor worker
            # threads.
            try:
                loop.run_until_complete(server.stop())
            except BaseException:  # noqa: BLE001 - best-effort cleanup
                pass
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    ready.wait()
    if failure:
        raise failure[0]
    return BackgroundServer(server, loop_holder["loop"], thread)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-serve``: run the simulation server until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent simulation server speaking newline-delimited "
                    "JSON (see docs/service.md).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP listen host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7621,
                        help="TCP listen port (default 7621; 0 picks a "
                             "free port)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="listen on a unix-domain socket instead of TCP")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="bounded job-queue depth (default 32)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker threads (default 2)")
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="default per-job wall-clock budget in seconds")
    parser.add_argument("--node-limit", type=int, default=500_000,
                        help="default per-job node budget")
    parser.add_argument("--drain-grace", type=float, default=10.0,
                        help="seconds a SIGINT/SIGTERM drain waits for "
                             "in-flight jobs before exiting (default 10)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="persist session snapshots here; a restarted "
                             "server rehydrates them (see "
                             "docs/checkpointing.md)")
    args = parser.parse_args(argv)
    server = Server(host=args.host, port=args.port, unix_path=args.unix,
                    queue_depth=args.queue_depth, workers=args.workers,
                    default_limits=ResourceLimits(
                        max_seconds=args.time_limit,
                        max_nodes=args.node_limit),
                    checkpoint_dir=args.checkpoint_dir)

    async def _serve() -> None:
        await server.start()
        print(f"repro-serve listening on {server.address}", flush=True)
        loop = asyncio.get_running_loop()
        shutdown = loop.create_future()

        def _request_drain() -> None:
            if not shutdown.done():
                shutdown.set_result(None)

        # SIGTERM (what systemd sends on stop) and SIGINT (^C) both drain:
        # finish in-flight jobs under the grace deadline, then exit 0.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
        serve_task = asyncio.ensure_future(server.serve_forever())
        await asyncio.wait({serve_task, shutdown},
                           return_when=asyncio.FIRST_COMPLETED)
        if shutdown.done():
            print("repro-serve draining "
                  f"(grace {args.drain_grace:g}s)", flush=True)
            completed = await server.drain(args.drain_grace)
            if not completed:
                print("repro-serve drain deadline exceeded; "
                      "cancelling remaining jobs", flush=True)
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        # Every exit path — drain, crash, KeyboardInterrupt fallback on
        # platforms without loop signal handlers — leaves no stale socket.
        if args.unix is not None:
            try:
                os.unlink(args.unix)
            except OSError:
                pass
    return 0


__all__ = ["BackgroundServer", "Server", "main", "serve_background"]


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())

"""repro.service — the persistent asynchronous simulation server.

The service turns the in-process front door into a long-lived daemon:
clients speak newline-delimited JSON (:mod:`repro.service.protocol`) over
TCP or a unix socket, a bounded priority queue
(:mod:`repro.service.scheduler`) feeds a worker pool so the asyncio loop
never blocks on a BDD apply, and server-side sessions
(:mod:`repro.service.sessions`) attach appends to warm
:class:`~repro.cache.sessions.SessionPool` state so incremental circuit
growth resumes instead of replaying.  :mod:`repro.service.server` hosts
it all (``repro-serve``), :mod:`repro.service.client` provides the sync
and asyncio clients, and :mod:`repro.service.watch` (``repro-watch``) is
the live admin console.
"""

from repro.service.client import (
    AsyncClient,
    Client,
    ServiceError,
    make_runner,
    parse_address,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AppendToSession,
    CancelJob,
    CancelReply,
    CloseSession,
    ErrorReply,
    HealthReply,
    HealthRequest,
    JobAccepted,
    ListSessions,
    Message,
    OpenSession,
    ProbabilityReply,
    ProtocolError,
    QueryProbability,
    RunCompleted,
    SampleShots,
    ServerStatsRequest,
    SessionClosed,
    SessionList,
    SessionOpened,
    StatsReply,
    SubmitRun,
    SubmitSweep,
    SweepCompleted,
    WatchRequest,
    decode_request,
    decode_response,
    encode_message,
)
from repro.service.scheduler import (
    DrainingError,
    Job,
    JobScheduler,
    QueueFullError,
)
from repro.service.server import BackgroundServer, Server, serve_background
from repro.service.sessions import (
    ServiceSession,
    SessionLimitError,
    SessionRegistry,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AppendToSession",
    "AsyncClient",
    "BackgroundServer",
    "CancelJob",
    "CancelReply",
    "Client",
    "CloseSession",
    "DrainingError",
    "ErrorReply",
    "HealthReply",
    "HealthRequest",
    "Job",
    "JobAccepted",
    "JobScheduler",
    "ListSessions",
    "Message",
    "OpenSession",
    "ProbabilityReply",
    "ProtocolError",
    "QueryProbability",
    "QueueFullError",
    "RunCompleted",
    "SampleShots",
    "Server",
    "ServerStatsRequest",
    "ServiceError",
    "ServiceSession",
    "SessionClosed",
    "SessionLimitError",
    "SessionList",
    "SessionOpened",
    "SessionRegistry",
    "StatsReply",
    "SubmitRun",
    "SubmitSweep",
    "SweepCompleted",
    "WatchRequest",
    "decode_request",
    "decode_response",
    "encode_message",
    "make_runner",
    "parse_address",
    "serve_background",
]

"""Bounded priority job queue driving a thread worker pool.

The server's asyncio loop must never block on a BDD apply, so every
simulation request becomes a :class:`Job` executed on one of the
scheduler's worker threads; the loop awaits the job's
:class:`concurrent.futures.Future` (via ``asyncio.wrap_future``) and stays
responsive for stats, cancellation and new submissions in the meantime.

Three properties are load-bearing:

* **Bounded depth with structured backpressure.**  ``max_depth`` caps the
  number of *queued* (not yet running) jobs; a submission beyond the cap
  raises :class:`QueueFullError` immediately — the caller gets a typed
  reject carrying depth and capacity, never an unbounded latency tail.
* **Priorities with FIFO ties.**  Higher ``priority`` dequeues first;
  equal priorities run in submission order (a monotone sequence number
  breaks heap ties), so the default-priority traffic is strictly FIFO.
* **Cooperative cancellation.**  Every job owns a ``threading.Event``
  cancel token.  Cancelling a *queued* job concludes it instantly (its
  future raises :class:`~repro.exceptions.JobCancelledError`; the job
  function never runs).  Cancelling a *running* job sets the token, which
  :meth:`repro.engines.limits.LimitEnforcer.check` polls between gates —
  the run unwinds through the same ``finally`` blocks as a timeout, so
  session leases and locks are always released.

Determinism note: the scheduler never re-derives seeds or splits work —
a sweep job runs its whole task list serially inside one job function
(:func:`repro.engines.frontdoor.run_tasks` derives the per-task seeds),
which is what keeps wire sweeps byte-identical to local ``run_sweep()``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Dict, List, Optional

from repro.exceptions import JobCancelledError, SimulationError
from repro.perf.counters import PerfCounters
from repro.resilience.faults import FAULT_WORKER_JOB, FAULT_WORKER_LOOP, maybe_fire

#: How many finished job ids :meth:`JobScheduler.cancel` can still
#: classify as ``"finished"``; ids older than the newest this many decay
#: to ``"unknown"`` (bounded memory beats a perfect answer for ancient
#: ids).  Membership checks are O(1) — a set mirrors the eviction deque.
FINISHED_IDS_CAP = 1024

#: Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_CANCELLED = "cancelled"
JOB_FAILED = "failed"


class QueueFullError(SimulationError):
    """Submission rejected: the bounded job queue is at capacity.

    This is the scheduler's structured backpressure signal — the server
    maps it to an ``error`` reply with code ``queue_full`` (carrying
    ``depth`` and ``capacity``) instead of letting requests pile up into
    an unbounded latency tail.
    """

    def __init__(self, depth: int, capacity: int):
        super().__init__(f"job queue full ({depth}/{capacity} queued)")
        self.depth = depth
        self.capacity = capacity


class DrainingError(SimulationError):
    """Submission rejected: the scheduler is draining for shutdown.

    Distinct from :class:`QueueFullError` so clients can classify it — a
    draining server is about to disappear, so the right reaction is to
    retry *elsewhere* (or after the replacement comes up), not to back off
    and re-submit to the same queue.  The server maps it to an ``error``
    reply with code ``draining``.
    """

    def __init__(self):
        super().__init__("server is draining; not accepting new jobs")


class Job:
    """One scheduled unit of work: the job function, its cancel token and
    the future the submitter awaits.

    ``fn`` is called as ``fn(cancel_event)`` on a worker thread; its return
    value resolves :attr:`future`, an exception rejects it
    (:class:`~repro.exceptions.JobCancelledError` marks the job cancelled
    rather than failed).
    """

    __slots__ = ("job_id", "request_kind", "priority", "fn", "future",
                 "cancel_event", "submitted_at", "started_at", "state")

    def __init__(self, job_id: str, fn: Callable, request_kind: str,
                 priority: int):
        self.job_id = job_id
        self.request_kind = request_kind
        self.priority = priority
        self.fn = fn
        self.future: Future = Future()
        self.cancel_event = threading.Event()
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.state = JOB_QUEUED


class JobScheduler:
    """Bounded priority queue plus a fixed pool of worker threads.

    ``max_depth`` bounds the queued backlog (running jobs do not count),
    ``workers`` sizes the thread pool, and ``counters`` (a shared
    :class:`~repro.perf.counters.PerfCounters`) accumulates the
    ``service_jobs_*`` / ``service_queue_*`` series.  All methods are
    thread-safe.
    """

    def __init__(self, max_depth: int = 32, workers: int = 2,
                 counters: Optional[PerfCounters] = None):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.max_depth = max_depth
        self.workers = workers
        self.counters = counters if counters is not None else PerfCounters()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[tuple] = []
        self._jobs: Dict[str, Job] = {}
        self._finished: set = set()
        self._finished_order: deque = deque()
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._draining = False
        self._running = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._stopping = False
            threads = [threading.Thread(target=self._worker,
                                        name=f"repro-service-worker-{index}",
                                        daemon=True)
                       for index in range(self.workers)]
            self._threads = threads
        for thread in threads:
            thread.start()

    def stop(self, cancel_pending: bool = True) -> None:
        """Stop the pool: cancel every queued job (unless told otherwise),
        signal running jobs' cancel tokens, and join the workers."""
        with self._not_empty:
            self._stopping = True
            if cancel_pending:
                for _, _, job in self._heap:
                    if job.state == JOB_QUEUED:
                        self._conclude_cancelled_locked(
                            job, "cancelled: scheduler stopping")
                self._heap.clear()
            for job in self._jobs.values():
                job.cancel_event.set()
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []

    def begin_drain(self) -> None:
        """Enter drain mode: reject new submissions with
        :class:`DrainingError` while queued and running jobs keep
        executing.  The graceful-shutdown sequence is ``begin_drain()`` →
        :meth:`wait_idle` → :meth:`stop`."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        """True between :meth:`begin_drain` and :meth:`stop`."""
        return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running (True), or ``timeout``
        seconds elapse first (False).  Polling, not signalled — this runs
        on the drain path where tens of milliseconds are irrelevant."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._jobs and self._running == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def alive_workers(self) -> int:
        """Worker threads currently alive — the health probe's liveness
        gauge (the hardened loop keeps this equal to ``workers`` even
        through injected machinery crashes)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    # ------------------------------------------------------------------ #
    # submission / cancellation
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable, request_kind: str = "job",
               priority: int = 0) -> Job:
        """Enqueue ``fn`` (called as ``fn(cancel_event)`` on a worker).

        Raises :class:`QueueFullError` when the queued backlog is at
        ``max_depth`` — the structured reject, never a hang —
        :class:`DrainingError` during a graceful drain, and
        ``RuntimeError`` after :meth:`stop`.
        """
        with self._not_empty:
            if self._stopping:
                raise RuntimeError("scheduler is stopped")
            if self._draining:
                self.counters.add("drain_rejects")
                raise DrainingError()
            depth = self._queued_depth_locked()
            if depth >= self.max_depth:
                self.counters.add("service_queue_rejects")
                raise QueueFullError(depth, self.max_depth)
            job = Job(f"j{next(self._ids)}", fn, request_kind, priority)
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._jobs[job.job_id] = job
            self.counters.add("service_jobs_submitted")
            self._not_empty.notify()
            return job

    def cancel(self, job_id: str) -> str:
        """Cancel a job by id; returns the outcome.

        ``"cancelled"``: the job was still queued and is concluded now
        (its future raises ``JobCancelledError``; the function never
        runs).  ``"cancelling"``: the job is running and its token is
        set — it stops at the next gate boundary.  ``"finished"``: the
        job already completed.  ``"unknown"``: no such id — including
        finished ids older than the newest :data:`FINISHED_IDS_CAP`
        completions, which decay out of the bounded finished-id set.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return "finished" if job_id in self._finished else "unknown"
            if job.state == JOB_QUEUED:
                self._conclude_cancelled_locked(job,
                                                "cancelled while queued")
                return "cancelled"
            job.cancel_event.set()
            return "cancelling"

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _queued_depth_locked(self) -> int:
        return sum(1 for _, _, job in self._heap
                   if job.state == JOB_QUEUED)

    def queue_depth(self) -> int:
        """Number of queued (not yet running) jobs."""
        with self._lock:
            return self._queued_depth_locked()

    def running_count(self) -> int:
        """Number of jobs currently executing on workers."""
        with self._lock:
            return self._running

    def stats(self) -> Dict[str, int]:
        """Queue gauges for the admin surface: depth, capacity, running
        jobs and worker count."""
        with self._lock:
            return {"queue_depth": self._queued_depth_locked(),
                    "queue_capacity": self.max_depth,
                    "running": self._running,
                    "workers": self.workers}

    # ------------------------------------------------------------------ #
    # worker internals
    # ------------------------------------------------------------------ #
    def _remember_finished_locked(self, job_id: str) -> None:
        self._finished.add(job_id)
        self._finished_order.append(job_id)
        while len(self._finished_order) > FINISHED_IDS_CAP:
            self._finished.discard(self._finished_order.popleft())

    def _conclude_cancelled_locked(self, job: Job, detail: str) -> None:
        job.state = JOB_CANCELLED
        job.cancel_event.set()
        self._jobs.pop(job.job_id, None)
        self._remember_finished_locked(job.job_id)
        self.counters.add("service_jobs_cancelled")
        try:
            job.future.set_exception(JobCancelledError(detail))
        except InvalidStateError:
            pass  # already cancelled from the submitter's side

    def _finish(self, job: Job, state: str) -> None:
        with self._lock:
            self._running -= 1
            job.state = state
            self._jobs.pop(job.job_id, None)
            self._remember_finished_locked(job.job_id)

    def _execute(self, job: Job) -> None:
        """Run one claimed job and conclude it — the only frame allowed to
        resolve ``job.future`` on the happy path."""
        try:
            maybe_fire(FAULT_WORKER_JOB)
            result = job.fn(job.cancel_event)
        except JobCancelledError as exc:
            self._finish(job, JOB_CANCELLED)
            self.counters.add("service_jobs_cancelled")
            job.future.set_exception(exc)
        except BaseException as exc:  # noqa: BLE001 - jobs report all failures
            self._finish(job, JOB_FAILED)
            self.counters.add("service_jobs_failed")
            job.future.set_exception(exc)
        else:
            self._finish(job, JOB_DONE)
            self.counters.add("service_jobs_completed")
            job.future.set_result(result)

    def _crash_job(self, job: Job, exc: BaseException) -> None:
        """Conclude a claimed job whose *worker loop* (not job function)
        crashed: fail it if still live, swallow resolution races."""
        if job.state == JOB_RUNNING:
            self._finish(job, JOB_FAILED)
            self.counters.add("service_jobs_failed")
        try:
            job.future.set_exception(exc)
        except InvalidStateError:
            pass  # already concluded before the machinery crashed

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._heap and not self._stopping:
                    self._not_empty.wait()
                if not self._heap:
                    return  # stopping with an empty queue
                _, _, job = heapq.heappop(self._heap)
                if job.state != JOB_QUEUED:
                    continue  # cancelled while queued; already concluded
                if not job.future.set_running_or_notify_cancel():
                    # The future was cancelled from the submitter's side
                    # (e.g. its connection vanished before the job started):
                    # conclude without ever running the job function.
                    job.state = JOB_CANCELLED
                    self._jobs.pop(job.job_id, None)
                    self._remember_finished_locked(job.job_id)
                    self.counters.add("service_jobs_cancelled")
                    continue
                job.state = JOB_RUNNING
                job.started_at = time.perf_counter()
                self._running += 1
                self.counters.add("service_queue_wait_seconds",
                                  job.started_at - job.submitted_at)
            # Worker-crash isolation: anything that escapes outside the
            # job's own try/except — including the FAULT_WORKER_LOOP
            # injection point — fails the claimed job but never kills the
            # thread, so one poisoned request cannot shrink the pool.
            try:
                maybe_fire(FAULT_WORKER_LOOP)
                self._execute(job)
            except BaseException as exc:  # noqa: BLE001 - loop must survive
                self.counters.add("service_worker_crashes")
                self._crash_job(job, exc)


__all__ = ["FINISHED_IDS_CAP", "JOB_QUEUED", "JOB_RUNNING", "JOB_DONE",
           "JOB_CANCELLED", "JOB_FAILED", "DrainingError", "Job",
           "JobScheduler", "QueueFullError"]

"""Server-side sessions: cumulative circuits attached to warm pool state.

A service session is the traffic-facing face of the
:class:`~repro.cache.sessions.SessionPool` prefix machinery: it records
the **cumulative circuit** a client has built so far, and every
``append_to_session`` runs that cumulative circuit through
``repro.run(..., sessions=pool)`` — the pool matches the previous
append's deposited state, the engine resumes from the stored 4r slices,
and only the newly appended gates execute.  Opening a session deposits
the ``|0>`` (empty-prefix) state immediately, so even the *first* append
attaches to warm state.

The session object itself holds no engine: the live BDD manager is owned
by the pool entry (subject to the pool's LRU bound), which keeps the
byte-identity guarantee trivial — an append returns exactly what a local
cold ``repro.run()`` of the same cumulative circuit returns.

Concurrency: each session carries a ``threading.Lock`` serialising its
appends (two clients appending to one session would otherwise race on the
cumulative circuit).  Job functions take it with a ``with`` block, so a
cancelled or failed append always releases it — the regression tests pin
that a cancelled job never leaves a session wedged.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.engines.limits import ResourceLimits
from repro.exceptions import SimulationError

#: How many applied idempotency keys a session remembers (per session).
#: A retry storm only ever needs the most recent few; a bounded map keeps
#: long-lived sessions from accumulating one entry per append forever.
REPLAY_KEYS_CAP = 64


class SessionLimitError(SimulationError):
    """Opening another session would exceed the registry's bound (the
    server maps this to an ``error`` reply with code
    ``too_many_sessions``)."""

    def __init__(self, limit: int):
        super().__init__(f"session limit reached ({limit} live sessions)")
        self.limit = limit


class ServiceSession:
    """One live session: id, engine, cumulative circuit, append lock.

    The cumulative circuit only advances on a *successful* append
    (status ``ok``); a failed, cancelled or TO/MO append leaves the
    session exactly where it was, so the client can retry or append
    something smaller.
    """

    __slots__ = ("session_id", "engine", "num_qubits", "limits", "circuit",
                 "lock", "appends", "created_at", "last_active_at",
                 "last_status", "_replay")

    def __init__(self, session_id: str, num_qubits: int, engine: str,
                 limits: Optional[ResourceLimits] = None):
        self.session_id = session_id
        self.engine = engine
        self.num_qubits = num_qubits
        self.limits = limits
        self.circuit = QuantumCircuit(num_qubits, name=session_id)
        self.lock = threading.Lock()
        self.appends = 0
        self.created_at = time.perf_counter()
        self.last_active_at = self.created_at
        self.last_status = ""
        self._replay: "OrderedDict[str, Any]" = OrderedDict()

    def check_width(self, delta: QuantumCircuit) -> None:
        """Raise ``ValueError`` unless ``delta`` matches the session's
        register width.  The width is immutable session state, so this
        check is safe to run outside :attr:`lock` (the server uses it to
        reply ``bad_request`` before queueing the append job)."""
        if delta.num_qubits != self.num_qubits:
            raise ValueError(
                f"delta circuit is {delta.num_qubits}-qubit but session "
                f"{self.session_id} is {self.num_qubits}-qubit")

    def extended(self, delta: QuantumCircuit) -> QuantumCircuit:
        """The cumulative circuit with ``delta``'s gates and measurement
        markers appended (named after the delta, so run records read
        naturally).  The delta must match the session's register width.

        Call only while holding :attr:`lock`: the snapshot of
        :attr:`circuit` taken here and the :meth:`advance` that commits
        the result must be one atomic step, or two in-flight appends
        would both extend the same base and the later commit would drop
        the earlier append's gates."""
        self.check_width(delta)
        cumulative = self.circuit.copy(name=delta.name)
        for gate in delta.gates:
            cumulative.append(gate)
        for qubit, clbit in delta.final_measurement_map():
            cumulative.measure(qubit, clbit)
        cumulative.num_clbits = max(cumulative.num_clbits, delta.num_clbits)
        return cumulative

    def advance(self, cumulative: QuantumCircuit, status: str) -> None:
        """Commit a successful append: the cumulative circuit becomes the
        session's new base.  Call only while holding :attr:`lock`."""
        self.circuit = cumulative
        self.appends += 1
        self.last_status = status
        self.last_active_at = time.perf_counter()

    def replay(self, key: Optional[str]) -> Optional[Any]:
        """The result a previous append committed under this idempotency
        ``key``, or ``None``.  Call while holding :attr:`lock` *before*
        extending — this is the exact at-most-once guard: a client retry
        whose original append already advanced the cumulative circuit gets
        the recorded result back instead of appending the delta twice."""
        if key is None:
            return None
        return self._replay.get(key)

    def remember(self, key: Optional[str], result: Any) -> None:
        """Record a *committed* append's result under its idempotency key
        (bounded to :data:`REPLAY_KEYS_CAP` entries, oldest evicted).  Call
        while holding :attr:`lock`, and only for appends that advanced the
        session — an append that failed left no state behind, so retrying
        it for real is exactly what the client wants."""
        if key is None:
            return
        self._replay[key] = result
        while len(self._replay) > REPLAY_KEYS_CAP:
            self._replay.popitem(last=False)

    def summary(self) -> Dict[str, Any]:
        """The session's admin-surface row (id, engine, width, cumulative
        gate count, appends, idle seconds)."""
        return {"session_id": self.session_id,
                "engine": self.engine,
                "num_qubits": self.num_qubits,
                "gates": self.circuit.num_gates,
                "appends": self.appends,
                "idle_seconds": time.perf_counter() - self.last_active_at}


class SessionRegistry:
    """Thread-safe table of live :class:`ServiceSession` objects.

    ``max_sessions`` bounds how many sessions may be live at once —
    sessions are explicit, client-visible state, so the registry rejects
    (:class:`SessionLimitError`) rather than silently evicting.
    """

    def __init__(self, max_sessions: int = 32):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, ServiceSession]" = OrderedDict()
        self._next_id = 1

    def open(self, num_qubits: int, engine: str = "bitslice",
             limits: Optional[ResourceLimits] = None) -> ServiceSession:
        """Create and register a new session; raises
        :class:`SessionLimitError` at the bound."""
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(self.max_sessions)
            session = ServiceSession(f"s{self._next_id}", num_qubits,
                                     engine, limits)
            self._next_id += 1
            self._sessions[session.session_id] = session
            return session

    def adopt(self, session: ServiceSession) -> bool:
        """Register an already-built session under its *existing* id
        (checkpoint rehydration: a restarted server re-registers the
        sessions it restored, so pre-restart session ids keep working).

        Returns False — never raises — when the registry is full or the id
        is already live.  The id counter advances past every adopted
        ``s<N>`` id, so sessions opened after a restart cannot collide
        with restored ones.
        """
        with self._lock:
            if (len(self._sessions) >= self.max_sessions
                    or session.session_id in self._sessions):
                return False
            self._sessions[session.session_id] = session
            match = re.fullmatch(r"s(\d+)", session.session_id)
            if match:
                self._next_id = max(self._next_id, int(match.group(1)) + 1)
            return True

    def adopt_restored(self, session_id: str, num_qubits: int, engine: str,
                       limits: Optional[ResourceLimits],
                       circuit: QuantumCircuit,
                       appends: int) -> Optional[ServiceSession]:
        """Rebuild a checkpointed session and :meth:`adopt` it: same id,
        cumulative ``circuit`` and append count as before the restart.
        Returns the live session, or ``None`` when adoption failed (full
        registry / duplicate id)."""
        session = ServiceSession(session_id, num_qubits, engine, limits)
        session.circuit = circuit
        session.appends = appends
        session.last_status = "restored"
        if not self.adopt(session):
            return None
        return session

    def get(self, session_id: str) -> Optional[ServiceSession]:
        """The live session with this id, or ``None``."""
        with self._lock:
            return self._sessions.get(session_id)

    def close(self, session_id: str) -> Optional[ServiceSession]:
        """Remove and return the session (``None`` when unknown).  An
        append still running keeps its references and finishes normally;
        only the registry slot is freed."""
        with self._lock:
            return self._sessions.pop(session_id, None)

    def summaries(self) -> List[Dict[str, Any]]:
        """Admin rows for every live session, oldest first."""
        with self._lock:
            return [session.summary()
                    for session in self._sessions.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


__all__ = ["REPLAY_KEYS_CAP", "ServiceSession", "SessionLimitError",
           "SessionRegistry"]

"""``repro-watch``: the live admin console of the simulation service.

Connects to a running server, subscribes to the ``watch`` stream and
prints one status line per frame — queue depth against capacity, running
jobs, live sessions, request / reject / cancel totals and the warm-pool
hit counters — a terminal-friendly rendering of the same snapshot
``server_stats`` returns programmatically.

Run it as ``repro-watch --connect HOST:PORT`` or
``python -m repro.service.watch``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, TextIO

from repro.service.client import Client, ServiceError


def format_frame(stats: Dict[str, Any]) -> str:
    """One status line for a stats snapshot: queue occupancy, running jobs,
    live sessions, cumulative request / reject / cancel counts, the
    prefix-resume hit counter and the session-checkpoint gauges
    (``ckpt=<on-disk>/<restored>r@<age>``)."""
    counters = stats.get("counters", {})

    def count(name: str) -> int:
        return int(counters.get(name, 0))

    age = float(stats.get("checkpoint_age_seconds", -1.0))
    return (f"q={stats.get('queue_depth', 0)}/"
            f"{stats.get('queue_capacity', 0)} "
            f"run={stats.get('running', 0)} "
            f"sessions={stats.get('live_sessions', 0)} "
            f"req={count('service_requests_total')} "
            f"done={count('service_jobs_completed')} "
            f"rejects={count('service_queue_rejects')} "
            f"cancelled={count('service_jobs_cancelled')} "
            f"prefix_hits={count('prefix_resume_hits')} "
            f"ckpt={stats.get('checkpointed_sessions', 0)}"
            f"/{stats.get('restored_sessions', 0)}r"
            f"@{'-' if age < 0 else f'{age:.0f}s'} "
            f"up={float(stats.get('uptime_seconds', 0.0)):.0f}s")


def main(argv: Optional[List[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    """``repro-watch`` entry point: print a status line per watch frame."""
    parser = argparse.ArgumentParser(
        prog="repro-watch",
        description="Live status stream of a running repro-serve instance.")
    parser.add_argument("--connect", default="127.0.0.1:7621",
                        metavar="ADDR",
                        help="server address: host:port or unix:/path "
                             "(default 127.0.0.1:7621)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between frames (default 1.0)")
    parser.add_argument("--count", type=int, default=None,
                        help="stop after this many frames "
                             "(default: stream until interrupted)")
    args = parser.parse_args(argv)
    out = stream if stream is not None else sys.stdout
    try:
        with Client(args.connect) as client:
            for stats in client.watch(interval=args.interval,
                                      count=args.count):
                print(format_frame(stats), file=out, flush=True)
    except KeyboardInterrupt:
        return 0
    except (ServiceError, OSError) as exc:
        print(f"repro-watch: {exc}", file=sys.stderr)
        return 1
    return 0


__all__ = ["format_frame", "main"]


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())

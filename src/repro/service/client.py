"""Synchronous and asyncio clients for the simulation service.

Both clients speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` and expose the same verbs the in-process
front door does — :meth:`Client.run` mirrors :func:`repro.run`,
:meth:`Client.run_tasks` mirrors :func:`repro.engines.frontdoor.run_tasks`
(signature-compatible, so the harness can swap one for the other) — plus
the service-only verbs: sessions, job submission/cancellation, stats,
health and the live ``watch`` stream.

Replies demultiplex by ``in_reply_to``: a client may have several requests
in flight and each blocking call reads lines until *its* terminal reply
arrives, parking replies destined for other calls.  ``error`` replies
raise :class:`ServiceError` carrying the structured code (``queue_full``,
``unknown_session``, ``cancelled``, ...) so callers branch on ``exc.code``
rather than parsing prose.

Resilience semantics:

* **Transport failures are normalised**: a server disappearing
  mid-roundtrip always surfaces as ``ServiceError(code="connection_lost")``
  — never a bare ``ConnectionResetError`` / ``BrokenPipeError`` /
  ``asyncio.IncompleteReadError`` — so callers and
  :class:`~repro.resilience.retry.RetryPolicy` classify one code instead
  of a zoo of exception types.  (A configured socket ``timeout`` still
  raises ``TimeoutError`` as before: a slow server is not a dead one.)
* **Optional retry**: construct with ``retry=RetryPolicy(...)`` and the
  idempotent verbs (``run`` / ``run_tasks`` / ``sample`` /
  ``query_probability`` / ``submit`` / ``append`` plus the read-only admin
  verbs) transparently reconnect and resend on retryable codes.  Every
  submission carries a client-generated **idempotency key**, and a resend
  reuses the *same* key, so a retried submission whose original was
  already accepted re-attaches to the original job instead of
  double-executing (session appends are additionally replay-guarded at
  the session, under its lock).
* ``open_session`` / ``close_session`` are **never auto-retried**: their
  replay semantics are not idempotent (a second open is a second session),
  so a lost reply there must surface to the caller.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import uuid
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Type, Union)

from repro.circuit.circuit import QuantumCircuit
from repro.engines.limits import ResourceLimits
from repro.engines.result import RunResult
from repro.exceptions import SimulationError
from repro.resilience.faults import FAULT_CLIENT_RECV, FAULT_CLIENT_SEND, maybe_fire
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import (
    AppendToSession,
    CancelJob,
    CancelReply,
    CloseSession,
    ErrorReply,
    HealthReply,
    HealthRequest,
    JobAccepted,
    ListSessions,
    Message,
    OpenSession,
    ProbabilityReply,
    QueryProbability,
    RunCompleted,
    SampleShots,
    ServerStatsRequest,
    SessionClosed,
    SessionList,
    SessionOpened,
    StatsReply,
    SubmitRun,
    SubmitSweep,
    SweepCompleted,
    WatchRequest,
    decode_response,
    encode_message,
)

Address = Union[str, Tuple[str, int]]


class ServiceError(SimulationError):
    """A structured ``error`` reply from the server (or a locally
    synthesised transport failure).

    ``code`` is the machine-readable discriminator (``queue_full``,
    ``draining``, ``unknown_session``, ``too_many_sessions``,
    ``bad_request``, ``version_mismatch``, ``cancelled``, ``internal``,
    and the client-side ``connection_lost``); ``details`` carries
    code-specific context (e.g. queue ``depth`` / ``capacity``).
    """

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


def parse_address(address: Address) -> Tuple[Optional[str],
                                             Optional[Tuple[str, int]]]:
    """Normalise a service address.

    Accepts ``(host, port)`` tuples, ``"host:port"`` strings and
    ``"unix:/path/to.sock"`` strings; returns ``(unix_path, tcp_pair)``
    with exactly one of the two set.
    """
    if isinstance(address, tuple):
        return None, (str(address[0]), int(address[1]))
    text = str(address)
    if text.startswith("unix:"):
        return text[len("unix:"):], None
    if text.count(":") >= 1:
        host, _, port = text.rpartition(":")
        try:
            return None, (host or "127.0.0.1", int(port))
        except ValueError as exc:
            raise ValueError(f"bad service address {address!r}") from exc
    raise ValueError(f"bad service address {address!r} "
                     "(want host:port, (host, port) or unix:/path)")


def new_idempotency_key() -> str:
    """A fresh client-generated idempotency key (random UUID hex — unique
    across clients, connections and restarts without coordination)."""
    return uuid.uuid4().hex


class _ReplyRouter:
    """Shared demultiplexing state: replies parked per request id."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._pending: Dict[str, List[Message]] = {}

    def next_id(self) -> str:
        return f"c{next(self._ids)}"

    def park(self, msg_id: Optional[str], message: Message) -> None:
        if msg_id is not None:
            self._pending.setdefault(msg_id, []).append(message)

    def take(self, msg_id: str) -> Optional[Message]:
        parked = self._pending.get(msg_id)
        if parked:
            message = parked.pop(0)
            if not parked:
                del self._pending[msg_id]
            return message
        return None

    def drop_pending(self) -> None:
        """Forget parked replies (they belonged to a dead connection; the
        ids keep counting, so post-reconnect correlation stays unique)."""
        self._pending.clear()


def _accept(message: Message, accept: Tuple[Type[Message], ...],
            intermediate: Tuple[Type[Message], ...]) -> Optional[str]:
    """Classify a routed reply: ``"final"``, ``"skip"`` or raise."""
    if isinstance(message, ErrorReply):
        raise ServiceError(message.code, message.message, message.details)
    if isinstance(message, accept):
        return "final"
    if isinstance(message, intermediate):
        return "skip"
    raise ServiceError("protocol",
                       f"unexpected reply kind {message.kind!r}")


class Client:
    """Blocking socket client for the simulation service.

    Connect with an address accepted by :func:`parse_address`; use as a
    context manager to close the socket deterministically.  All methods
    are synchronous; ``timeout`` (seconds) bounds each socket read.  Pass
    ``retry`` (a :class:`~repro.resilience.retry.RetryPolicy`) to make the
    idempotent verbs reconnect and resend on transient failures; without
    it every failure surfaces on the first attempt (but transport errors
    are still normalised to ``connection_lost``).
    """

    def __init__(self, address: Address, timeout: Optional[float] = 60.0,
                 retry: Optional[RetryPolicy] = None):
        self.address = address
        self._timeout = timeout
        self._retry = retry
        self._router = _ReplyRouter()
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        unix_path, tcp = parse_address(self.address)
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(unix_path)
        else:
            sock = socket.create_connection(tcp, timeout=self._timeout)
        self._socket = sock
        self._reader = sock.makefile("rb")

    def _teardown(self) -> None:
        """Drop a dead connection: close both ends, forget parked replies.
        The next :meth:`_ensure_connected` (under a retry policy) dials
        fresh."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None
        self._router.drop_pending()

    def _ensure_connected(self) -> None:
        if self._socket is None:
            self._connect()

    def _lost(self, reason: str, exc: Optional[BaseException] = None) -> ServiceError:
        self._teardown()
        error = ServiceError("connection_lost", reason)
        if exc is not None:
            error.__cause__ = exc
        return error

    def close(self) -> None:
        """Close the connection (outstanding server-side jobs of this
        connection are cancelled by the server's disconnect handling)."""
        self._teardown()

    def __enter__(self) -> "Client":
        """Context-manager entry."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def _send(self, message: Message) -> str:
        msg_id = self._router.next_id()
        try:
            maybe_fire(FAULT_CLIENT_SEND)
            self._socket.sendall(encode_message(message, msg_id=msg_id))
        except socket.timeout:
            raise  # a slow server is not a dead one
        except (ConnectionError, OSError) as exc:
            raise self._lost(f"send failed: {exc}", exc) from exc
        return msg_id

    def _read_reply(self) -> Tuple[Message, Optional[str]]:
        try:
            maybe_fire(FAULT_CLIENT_RECV)
            line = self._reader.readline()
        except socket.timeout:
            raise
        except (ConnectionError, OSError) as exc:
            raise self._lost(f"read failed: {exc}", exc) from exc
        if not line:
            raise self._lost("server closed the connection")
        message, envelope = decode_response(line)
        return message, envelope.get("in_reply_to")

    def _wait(self, msg_id: str, accept: Tuple[Type[Message], ...],
              intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        while True:
            message = self._router.take(msg_id)
            if message is None:
                message, reply_to = self._read_reply()
                if reply_to != msg_id:
                    self._router.park(reply_to, message)
                    continue
            verdict = _accept(message, accept, intermediate)
            if verdict == "final":
                return message

    def _roundtrip(self, request: Message,
                   accept: Tuple[Type[Message], ...],
                   intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        return self._wait(self._send(request), accept,
                          intermediate=intermediate)

    def _retrying(self, request: Message,
                  accept: Tuple[Type[Message], ...],
                  intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        """Roundtrip under the retry policy (when configured): reconnect
        if the previous attempt tore the connection down, resend the
        *same* request — same idempotency key — and classify failures via
        the policy.  Without a policy this is a plain roundtrip."""
        if self._retry is None:
            return self._roundtrip(request, accept, intermediate=intermediate)

        def attempt() -> Message:
            self._ensure_connected()
            return self._roundtrip(request, accept,
                                   intermediate=intermediate)
        return self._retry.call(attempt)

    # ------------------------------------------------------------------ #
    # front-door mirrors
    # ------------------------------------------------------------------ #
    def run(self, circuit: QuantumCircuit, engine: str = "auto",
            limits: Optional[ResourceLimits] = None,
            shots: Optional[int] = None, seed: Optional[int] = None,
            reorder: Optional[int] = None,
            priority: int = 0) -> RunResult:
        """Run one circuit on the server; blocks until the run record
        arrives (mirrors :func:`repro.run`)."""
        reply = self._retrying(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority,
                      idempotency_key=new_idempotency_key()),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def run_tasks(self, tasks: Sequence[Tuple[str, QuantumCircuit]],
                  limits: Optional[ResourceLimits] = None, jobs: int = 1,
                  shots: Optional[int] = None, seed: Optional[int] = None,
                  reorder: Optional[int] = None,
                  priority: int = 0) -> List[RunResult]:
        """Run an (engine, circuit) task list as one sweep job; results come
        back in task order, byte-identical to a local serial
        :func:`repro.engines.frontdoor.run_tasks` of the same list.

        ``jobs`` is accepted for signature compatibility with the local
        front door (so the harness can swap runners) but ignored: the
        server always executes a sweep serially inside one job, which is
        what guarantees the byte-identity."""
        del jobs
        reply = self._retrying(
            SubmitSweep(list(tasks), limits=limits, shots=shots, seed=seed,
                        reorder=reorder, priority=priority,
                        idempotency_key=new_idempotency_key()),
            accept=(SweepCompleted,), intermediate=(JobAccepted,))
        return reply.results

    def sample(self, circuit: QuantumCircuit, shots: int,
               engine: str = "auto",
               limits: Optional[ResourceLimits] = None,
               seed: Optional[int] = None,
               priority: int = 0) -> RunResult:
        """Sample ``shots`` measurement shots; the run record carries the
        counts histogram."""
        reply = self._retrying(
            SampleShots(circuit, shots=shots, engine=engine, limits=limits,
                        seed=seed, priority=priority,
                        idempotency_key=new_idempotency_key()),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def query_probability(self, circuit: QuantumCircuit,
                          qubits: Sequence[int], values: Sequence[int],
                          engine: str = "auto",
                          limits: Optional[ResourceLimits] = None,
                          priority: int = 0) -> float:
        """Joint probability ``P(qubits = values)`` after running the
        circuit server-side."""
        reply = self._retrying(
            QueryProbability(circuit, qubits=list(qubits),
                             values=list(values), engine=engine,
                             limits=limits, priority=priority,
                             idempotency_key=new_idempotency_key()),
            accept=(ProbabilityReply,), intermediate=(JobAccepted,))
        return reply.probability

    # ------------------------------------------------------------------ #
    # job control
    # ------------------------------------------------------------------ #
    def submit(self, circuit: QuantumCircuit, engine: str = "auto",
               limits: Optional[ResourceLimits] = None,
               shots: Optional[int] = None, seed: Optional[int] = None,
               reorder: Optional[int] = None, priority: int = 0) -> str:
        """Fire-and-return submission: block only until ``job_accepted``
        and return the job id (the terminal reply is read later by
        whichever call drains the connection, or discarded at close).
        A retried submit reuses its idempotency key, so the job never
        double-executes."""
        reply = self._retrying(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority,
                      idempotency_key=new_idempotency_key()),
            accept=(JobAccepted,))
        return reply.job_id

    def cancel(self, job_id: str) -> str:
        """Cancel a job by id; returns the server's outcome string
        (``cancelled`` / ``cancelling`` / ``finished`` / ``unknown``)."""
        reply = self._retrying(CancelJob(job_id), accept=(CancelReply,))
        return reply.outcome

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def open_session(self, num_qubits: int, engine: str = "bitslice",
                     limits: Optional[ResourceLimits] = None) -> str:
        """Open a warm session; returns its id.  Never auto-retried — a
        lost reply could mean the session *did* open, and a blind resend
        would open (and leak) a second one."""
        reply = self._roundtrip(
            OpenSession(num_qubits=num_qubits, engine=engine, limits=limits),
            accept=(SessionOpened,))
        return reply.session_id

    def append(self, session_id: str, circuit: QuantumCircuit,
               shots: Optional[int] = None, seed: Optional[int] = None,
               priority: int = 0) -> RunResult:
        """Append a delta circuit to a session and run it, resuming from
        the session's retained prefix state; returns the run record of the
        cumulative circuit.  Retries are safe: the idempotency key is
        checked at the session under its lock, so a retried append whose
        original committed replays the recorded result instead of
        advancing the session twice."""
        reply = self._retrying(
            AppendToSession(session_id, circuit, shots=shots, seed=seed,
                            priority=priority,
                            idempotency_key=new_idempotency_key()),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def close_session(self, session_id: str) -> int:
        """Close a session; returns how many appends it served.  Never
        auto-retried (the first close frees the id; a resend would report
        ``unknown_session`` and mask the real outcome)."""
        reply = self._roundtrip(CloseSession(session_id),
                                accept=(SessionClosed,))
        return reply.appends

    # ------------------------------------------------------------------ #
    # admin
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """One admin snapshot (queue gauges, sessions, merged counters)."""
        reply = self._retrying(ServerStatsRequest(), accept=(StatsReply,))
        return reply.stats

    def sessions(self) -> List[Dict[str, Any]]:
        """Live-session summaries."""
        reply = self._retrying(ListSessions(), accept=(SessionList,))
        return reply.sessions

    def health(self) -> Dict[str, Any]:
        """The server's degradation snapshot: ``state`` (``ok`` /
        ``draining``), queue depth and capacity, running jobs, worker
        liveness, live sessions, uptime and the session-checkpoint gauges
        (on-disk snapshots, sessions restored at startup, seconds since
        the last snapshot write — ``-1`` when none)."""
        reply = self._retrying(HealthRequest(), accept=(HealthReply,))
        return {"state": reply.state,
                "queue_depth": reply.queue_depth,
                "queue_capacity": reply.queue_capacity,
                "running": reply.running,
                "workers": reply.workers,
                "workers_alive": reply.workers_alive,
                "sessions": reply.sessions,
                "uptime_seconds": reply.uptime_seconds,
                "checkpointed_sessions": reply.checkpointed_sessions,
                "restored_sessions": reply.restored_sessions,
                "checkpoint_age_seconds": reply.checkpoint_age_seconds}

    def watch(self, interval: float = 1.0,
              count: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Yield stats snapshots streamed by the server every ``interval``
        seconds, ``count`` times (``None`` streams until the caller stops
        iterating and closes the connection).  Not retried: a stream has
        no idempotent resend semantics — re-issue ``watch`` after a
        ``connection_lost`` to resume."""
        msg_id = self._send(WatchRequest(interval=interval, count=count))
        produced = 0
        while count is None or produced < count:
            message = self._wait(msg_id, accept=(StatsReply,))
            produced += 1
            yield message.stats


class AsyncClient:
    """Asyncio client for the simulation service (same verbs as
    :class:`Client`, every method a coroutine).

    Create via :meth:`connect` (optionally passing ``retry=``);
    concurrent coroutines may issue requests on one connection — replies
    demultiplex by ``in_reply_to`` under a reader lock.  Transport
    failures normalise to ``ServiceError(code="connection_lost")`` exactly
    like the sync client; with a retry policy the idempotent verbs
    reconnect and resend (same idempotency key) on retryable codes.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 address: Optional[Address] = None,
                 retry: Optional[RetryPolicy] = None):
        self._stream_reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self._address = address
        self._retry = retry
        self._router = _ReplyRouter()
        self._read_lock = asyncio.Lock()
        self._reply_ready = asyncio.Condition()

    @classmethod
    async def connect(cls, address: Address,
                      retry: Optional[RetryPolicy] = None) -> "AsyncClient":
        """Open a connection to ``address`` (see :func:`parse_address`)."""
        reader, writer = await cls._open(address)
        return cls(reader, writer, address=address, retry=retry)

    @staticmethod
    async def _open(address: Address) -> Tuple[asyncio.StreamReader,
                                               asyncio.StreamWriter]:
        unix_path, tcp = parse_address(address)
        if unix_path is not None:
            return await asyncio.open_unix_connection(unix_path)
        return await asyncio.open_connection(tcp[0], tcp[1])

    def _teardown(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:
                pass  # loop already closed
            self._writer = None
        self._stream_reader = None
        self._router.drop_pending()

    async def _ensure_connected(self) -> None:
        if self._writer is None:
            if self._address is None:
                raise ServiceError(
                    "connection_lost",
                    "connection closed and no address to reconnect "
                    "(create the client via AsyncClient.connect)")
            reader, writer = await self._open(self._address)
            self._stream_reader = reader
            self._writer = writer

    def _lost(self, reason: str,
              exc: Optional[BaseException] = None) -> ServiceError:
        self._teardown()
        error = ServiceError("connection_lost", reason)
        if exc is not None:
            error.__cause__ = exc
        return error

    async def close(self) -> None:
        """Close the connection."""
        writer = self._writer
        self._teardown()
        if writer is not None:
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "AsyncClient":
        """Async context-manager entry."""
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        """Async context-manager exit: close the connection."""
        await self.close()

    async def _send(self, message: Message) -> str:
        msg_id = self._router.next_id()
        try:
            maybe_fire(FAULT_CLIENT_SEND)
            self._writer.write(encode_message(message, msg_id=msg_id))
            await self._writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            raise self._lost(f"send failed: {exc}", exc) from exc
        return msg_id

    async def _wait(self, msg_id: str, accept: Tuple[Type[Message], ...],
                    intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        while True:
            message = self._router.take(msg_id)
            if message is None:
                if self._read_lock.locked():
                    # Another coroutine is reading; wait for it to park
                    # something, then re-check our mailbox.
                    async with self._reply_ready:
                        try:
                            await asyncio.wait_for(self._reply_ready.wait(),
                                                   0.5)
                        except asyncio.TimeoutError:
                            pass
                    continue
                if self._stream_reader is None:
                    raise ServiceError("connection_lost",
                                       "connection is closed")
                try:
                    async with self._read_lock:
                        maybe_fire(FAULT_CLIENT_RECV)
                        line = await self._stream_reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError) as exc:
                    raise self._lost(f"read failed: {exc}", exc) from exc
                if not line:
                    raise self._lost("server closed the connection")
                message, envelope = decode_response(line)
                reply_to = envelope.get("in_reply_to")
                if reply_to != msg_id:
                    self._router.park(reply_to, message)
                    async with self._reply_ready:
                        self._reply_ready.notify_all()
                    continue
            verdict = _accept(message, accept, intermediate)
            if verdict == "final":
                return message

    async def _roundtrip(self, request: Message,
                         accept: Tuple[Type[Message], ...],
                         intermediate: Tuple[Type[Message], ...] = ()
                         ) -> Message:
        msg_id = await self._send(request)
        return await self._wait(msg_id, accept, intermediate=intermediate)

    async def _retrying(self, request: Message,
                        accept: Tuple[Type[Message], ...],
                        intermediate: Tuple[Type[Message], ...] = ()
                        ) -> Message:
        if self._retry is None:
            return await self._roundtrip(request, accept,
                                         intermediate=intermediate)

        async def attempt() -> Message:
            await self._ensure_connected()
            return await self._roundtrip(request, accept,
                                         intermediate=intermediate)
        return await self._retry.async_call(attempt)

    async def run(self, circuit: QuantumCircuit, engine: str = "auto",
                  limits: Optional[ResourceLimits] = None,
                  shots: Optional[int] = None, seed: Optional[int] = None,
                  reorder: Optional[int] = None,
                  priority: int = 0) -> RunResult:
        """Async mirror of :meth:`Client.run`."""
        reply = await self._retrying(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority,
                      idempotency_key=new_idempotency_key()),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    async def run_tasks(self, tasks: Sequence[Tuple[str, QuantumCircuit]],
                        limits: Optional[ResourceLimits] = None,
                        jobs: int = 1, shots: Optional[int] = None,
                        seed: Optional[int] = None,
                        reorder: Optional[int] = None,
                        priority: int = 0) -> List[RunResult]:
        """Async mirror of :meth:`Client.run_tasks` (``jobs`` likewise
        accepted-and-ignored)."""
        del jobs
        reply = await self._retrying(
            SubmitSweep(list(tasks), limits=limits, shots=shots, seed=seed,
                        reorder=reorder, priority=priority,
                        idempotency_key=new_idempotency_key()),
            accept=(SweepCompleted,), intermediate=(JobAccepted,))
        return reply.results

    async def query_probability(self, circuit: QuantumCircuit,
                                qubits: Sequence[int],
                                values: Sequence[int],
                                engine: str = "auto",
                                limits: Optional[ResourceLimits] = None,
                                priority: int = 0) -> float:
        """Async mirror of :meth:`Client.query_probability`."""
        reply = await self._retrying(
            QueryProbability(circuit, qubits=list(qubits),
                             values=list(values), engine=engine,
                             limits=limits, priority=priority,
                             idempotency_key=new_idempotency_key()),
            accept=(ProbabilityReply,), intermediate=(JobAccepted,))
        return reply.probability

    async def open_session(self, num_qubits: int, engine: str = "bitslice",
                           limits: Optional[ResourceLimits] = None) -> str:
        """Async mirror of :meth:`Client.open_session` (never
        auto-retried)."""
        reply = await self._roundtrip(
            OpenSession(num_qubits=num_qubits, engine=engine, limits=limits),
            accept=(SessionOpened,))
        return reply.session_id

    async def append(self, session_id: str, circuit: QuantumCircuit,
                     shots: Optional[int] = None,
                     seed: Optional[int] = None,
                     priority: int = 0) -> RunResult:
        """Async mirror of :meth:`Client.append` (retry-safe via the
        session-level idempotency key)."""
        reply = await self._retrying(
            AppendToSession(session_id, circuit, shots=shots, seed=seed,
                            priority=priority,
                            idempotency_key=new_idempotency_key()),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    async def close_session(self, session_id: str) -> int:
        """Async mirror of :meth:`Client.close_session` (never
        auto-retried)."""
        reply = await self._roundtrip(CloseSession(session_id),
                                      accept=(SessionClosed,))
        return reply.appends

    async def stats(self) -> Dict[str, Any]:
        """Async mirror of :meth:`Client.stats`."""
        reply = await self._retrying(ServerStatsRequest(),
                                     accept=(StatsReply,))
        return reply.stats

    async def sessions(self) -> List[Dict[str, Any]]:
        """Async mirror of :meth:`Client.sessions`."""
        reply = await self._retrying(ListSessions(),
                                     accept=(SessionList,))
        return reply.sessions

    async def health(self) -> Dict[str, Any]:
        """Async mirror of :meth:`Client.health`."""
        reply = await self._retrying(HealthRequest(), accept=(HealthReply,))
        return {"state": reply.state,
                "queue_depth": reply.queue_depth,
                "queue_capacity": reply.queue_capacity,
                "running": reply.running,
                "workers": reply.workers,
                "workers_alive": reply.workers_alive,
                "sessions": reply.sessions,
                "uptime_seconds": reply.uptime_seconds,
                "checkpointed_sessions": reply.checkpointed_sessions,
                "restored_sessions": reply.restored_sessions,
                "checkpoint_age_seconds": reply.checkpoint_age_seconds}

    async def cancel(self, job_id: str) -> str:
        """Async mirror of :meth:`Client.cancel`."""
        reply = await self._retrying(CancelJob(job_id),
                                     accept=(CancelReply,))
        return reply.outcome


def make_runner(client: Client) -> Callable:
    """Adapt a :class:`Client` into a drop-in ``run_tasks`` replacement
    for harness experiments (``harness --server ADDR`` uses this)."""
    return client.run_tasks


__all__ = ["Address", "AsyncClient", "Client", "ServiceError",
           "make_runner", "new_idempotency_key", "parse_address"]

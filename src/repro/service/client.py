"""Synchronous and asyncio clients for the simulation service.

Both clients speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` and expose the same verbs the in-process
front door does — :meth:`Client.run` mirrors :func:`repro.run`,
:meth:`Client.run_tasks` mirrors :func:`repro.engines.frontdoor.run_tasks`
(signature-compatible, so the harness can swap one for the other) — plus
the service-only verbs: sessions, job submission/cancellation, stats and
the live ``watch`` stream.

Replies demultiplex by ``in_reply_to``: a client may have several requests
in flight and each blocking call reads lines until *its* terminal reply
arrives, parking replies destined for other calls.  ``error`` replies
raise :class:`ServiceError` carrying the structured code (``queue_full``,
``unknown_session``, ``cancelled``, ...) so callers branch on ``exc.code``
rather than parsing prose.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Type, Union)

from repro.circuit.circuit import QuantumCircuit
from repro.engines.limits import ResourceLimits
from repro.engines.result import RunResult
from repro.exceptions import SimulationError
from repro.service.protocol import (
    AppendToSession,
    CancelJob,
    CancelReply,
    CloseSession,
    ErrorReply,
    JobAccepted,
    ListSessions,
    Message,
    OpenSession,
    ProbabilityReply,
    QueryProbability,
    RunCompleted,
    SampleShots,
    ServerStatsRequest,
    SessionClosed,
    SessionList,
    SessionOpened,
    StatsReply,
    SubmitRun,
    SubmitSweep,
    SweepCompleted,
    WatchRequest,
    decode_response,
    encode_message,
)

Address = Union[str, Tuple[str, int]]


class ServiceError(SimulationError):
    """A structured ``error`` reply from the server.

    ``code`` is the machine-readable discriminator (``queue_full``,
    ``unknown_session``, ``too_many_sessions``, ``bad_request``,
    ``version_mismatch``, ``cancelled``, ``internal``); ``details`` carries
    code-specific context (e.g. queue ``depth`` / ``capacity``).
    """

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


def parse_address(address: Address) -> Tuple[Optional[str],
                                             Optional[Tuple[str, int]]]:
    """Normalise a service address.

    Accepts ``(host, port)`` tuples, ``"host:port"`` strings and
    ``"unix:/path/to.sock"`` strings; returns ``(unix_path, tcp_pair)``
    with exactly one of the two set.
    """
    if isinstance(address, tuple):
        return None, (str(address[0]), int(address[1]))
    text = str(address)
    if text.startswith("unix:"):
        return text[len("unix:"):], None
    if text.count(":") >= 1:
        host, _, port = text.rpartition(":")
        try:
            return None, (host or "127.0.0.1", int(port))
        except ValueError as exc:
            raise ValueError(f"bad service address {address!r}") from exc
    raise ValueError(f"bad service address {address!r} "
                     "(want host:port, (host, port) or unix:/path)")


class _ReplyRouter:
    """Shared demultiplexing state: replies parked per request id."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._pending: Dict[str, List[Message]] = {}

    def next_id(self) -> str:
        return f"c{next(self._ids)}"

    def park(self, msg_id: Optional[str], message: Message) -> None:
        if msg_id is not None:
            self._pending.setdefault(msg_id, []).append(message)

    def take(self, msg_id: str) -> Optional[Message]:
        parked = self._pending.get(msg_id)
        if parked:
            message = parked.pop(0)
            if not parked:
                del self._pending[msg_id]
            return message
        return None


def _accept(message: Message, accept: Tuple[Type[Message], ...],
            intermediate: Tuple[Type[Message], ...]) -> Optional[str]:
    """Classify a routed reply: ``"final"``, ``"skip"`` or raise."""
    if isinstance(message, ErrorReply):
        raise ServiceError(message.code, message.message, message.details)
    if isinstance(message, accept):
        return "final"
    if isinstance(message, intermediate):
        return "skip"
    raise ServiceError("protocol",
                       f"unexpected reply kind {message.kind!r}")


class Client:
    """Blocking socket client for the simulation service.

    Connect with an address accepted by :func:`parse_address`; use as a
    context manager to close the socket deterministically.  All methods
    are synchronous; ``timeout`` (seconds) bounds each socket read.
    """

    def __init__(self, address: Address, timeout: Optional[float] = 60.0):
        unix_path, tcp = parse_address(address)
        if unix_path is not None:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(timeout)
            self._socket.connect(unix_path)
        else:
            self._socket = socket.create_connection(tcp, timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._router = _ReplyRouter()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (outstanding server-side jobs of this
        connection are cancelled by the server's disconnect handling)."""
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "Client":
        """Context-manager entry."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def _send(self, message: Message) -> str:
        msg_id = self._router.next_id()
        self._socket.sendall(encode_message(message, msg_id=msg_id))
        return msg_id

    def _read_reply(self) -> Tuple[Message, Optional[str]]:
        line = self._reader.readline()
        if not line:
            raise ServiceError("disconnected", "server closed the connection")
        message, envelope = decode_response(line)
        return message, envelope.get("in_reply_to")

    def _wait(self, msg_id: str, accept: Tuple[Type[Message], ...],
              intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        while True:
            message = self._router.take(msg_id)
            if message is None:
                message, reply_to = self._read_reply()
                if reply_to != msg_id:
                    self._router.park(reply_to, message)
                    continue
            verdict = _accept(message, accept, intermediate)
            if verdict == "final":
                return message

    def _roundtrip(self, request: Message,
                   accept: Tuple[Type[Message], ...],
                   intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        return self._wait(self._send(request), accept,
                          intermediate=intermediate)

    # ------------------------------------------------------------------ #
    # front-door mirrors
    # ------------------------------------------------------------------ #
    def run(self, circuit: QuantumCircuit, engine: str = "auto",
            limits: Optional[ResourceLimits] = None,
            shots: Optional[int] = None, seed: Optional[int] = None,
            reorder: Optional[int] = None,
            priority: int = 0) -> RunResult:
        """Run one circuit on the server; blocks until the run record
        arrives (mirrors :func:`repro.run`)."""
        reply = self._roundtrip(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def run_tasks(self, tasks: Sequence[Tuple[str, QuantumCircuit]],
                  limits: Optional[ResourceLimits] = None, jobs: int = 1,
                  shots: Optional[int] = None, seed: Optional[int] = None,
                  reorder: Optional[int] = None,
                  priority: int = 0) -> List[RunResult]:
        """Run an (engine, circuit) task list as one sweep job; results come
        back in task order, byte-identical to a local serial
        :func:`repro.engines.frontdoor.run_tasks` of the same list.

        ``jobs`` is accepted for signature compatibility with the local
        front door (so the harness can swap runners) but ignored: the
        server always executes a sweep serially inside one job, which is
        what guarantees the byte-identity."""
        del jobs
        reply = self._roundtrip(
            SubmitSweep(list(tasks), limits=limits, shots=shots, seed=seed,
                        reorder=reorder, priority=priority),
            accept=(SweepCompleted,), intermediate=(JobAccepted,))
        return reply.results

    def sample(self, circuit: QuantumCircuit, shots: int,
               engine: str = "auto",
               limits: Optional[ResourceLimits] = None,
               seed: Optional[int] = None,
               priority: int = 0) -> RunResult:
        """Sample ``shots`` measurement shots; the run record carries the
        counts histogram."""
        reply = self._roundtrip(
            SampleShots(circuit, shots=shots, engine=engine, limits=limits,
                        seed=seed, priority=priority),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def query_probability(self, circuit: QuantumCircuit,
                          qubits: Sequence[int], values: Sequence[int],
                          engine: str = "auto",
                          limits: Optional[ResourceLimits] = None,
                          priority: int = 0) -> float:
        """Joint probability ``P(qubits = values)`` after running the
        circuit server-side."""
        reply = self._roundtrip(
            QueryProbability(circuit, qubits=list(qubits),
                             values=list(values), engine=engine,
                             limits=limits, priority=priority),
            accept=(ProbabilityReply,), intermediate=(JobAccepted,))
        return reply.probability

    # ------------------------------------------------------------------ #
    # job control
    # ------------------------------------------------------------------ #
    def submit(self, circuit: QuantumCircuit, engine: str = "auto",
               limits: Optional[ResourceLimits] = None,
               shots: Optional[int] = None, seed: Optional[int] = None,
               reorder: Optional[int] = None, priority: int = 0) -> str:
        """Fire-and-return submission: block only until ``job_accepted``
        and return the job id (the terminal reply is read later by
        whichever call drains the connection, or discarded at close)."""
        reply = self._roundtrip(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority),
            accept=(JobAccepted,))
        return reply.job_id

    def cancel(self, job_id: str) -> str:
        """Cancel a job by id; returns the server's outcome string
        (``cancelled`` / ``cancelling`` / ``finished`` / ``unknown``)."""
        reply = self._roundtrip(CancelJob(job_id), accept=(CancelReply,))
        return reply.outcome

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def open_session(self, num_qubits: int, engine: str = "bitslice",
                     limits: Optional[ResourceLimits] = None) -> str:
        """Open a warm session; returns its id."""
        reply = self._roundtrip(
            OpenSession(num_qubits=num_qubits, engine=engine, limits=limits),
            accept=(SessionOpened,))
        return reply.session_id

    def append(self, session_id: str, circuit: QuantumCircuit,
               shots: Optional[int] = None, seed: Optional[int] = None,
               priority: int = 0) -> RunResult:
        """Append a delta circuit to a session and run it, resuming from
        the session's retained prefix state; returns the run record of the
        cumulative circuit."""
        reply = self._roundtrip(
            AppendToSession(session_id, circuit, shots=shots, seed=seed,
                            priority=priority),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    def close_session(self, session_id: str) -> int:
        """Close a session; returns how many appends it served."""
        reply = self._roundtrip(CloseSession(session_id),
                                accept=(SessionClosed,))
        return reply.appends

    # ------------------------------------------------------------------ #
    # admin
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """One admin snapshot (queue gauges, sessions, merged counters)."""
        reply = self._roundtrip(ServerStatsRequest(), accept=(StatsReply,))
        return reply.stats

    def sessions(self) -> List[Dict[str, Any]]:
        """Live-session summaries."""
        reply = self._roundtrip(ListSessions(), accept=(SessionList,))
        return reply.sessions

    def watch(self, interval: float = 1.0,
              count: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Yield stats snapshots streamed by the server every ``interval``
        seconds, ``count`` times (``None`` streams until the caller stops
        iterating and closes the connection)."""
        msg_id = self._send(WatchRequest(interval=interval, count=count))
        produced = 0
        while count is None or produced < count:
            message = self._wait(msg_id, accept=(StatsReply,))
            produced += 1
            yield message.stats


class AsyncClient:
    """Asyncio client for the simulation service (same verbs as
    :class:`Client`, every method a coroutine).

    Create via :meth:`connect`; concurrent coroutines may issue requests
    on one connection — replies demultiplex by ``in_reply_to`` under a
    reader lock.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._stream_reader = reader
        self._writer = writer
        self._router = _ReplyRouter()
        self._read_lock = asyncio.Lock()
        self._reply_ready = asyncio.Condition()

    @classmethod
    async def connect(cls, address: Address) -> "AsyncClient":
        """Open a connection to ``address`` (see :func:`parse_address`)."""
        unix_path, tcp = parse_address(address)
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(tcp[0], tcp[1])
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        """Async context-manager entry."""
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        """Async context-manager exit: close the connection."""
        await self.close()

    async def _send(self, message: Message) -> str:
        msg_id = self._router.next_id()
        self._writer.write(encode_message(message, msg_id=msg_id))
        await self._writer.drain()
        return msg_id

    async def _wait(self, msg_id: str, accept: Tuple[Type[Message], ...],
                    intermediate: Tuple[Type[Message], ...] = ()) -> Message:
        while True:
            message = self._router.take(msg_id)
            if message is None:
                if self._read_lock.locked():
                    # Another coroutine is reading; wait for it to park
                    # something, then re-check our mailbox.
                    async with self._reply_ready:
                        try:
                            await asyncio.wait_for(self._reply_ready.wait(),
                                                   0.5)
                        except asyncio.TimeoutError:
                            pass
                    continue
                async with self._read_lock:
                    line = await self._stream_reader.readline()
                if not line:
                    raise ServiceError("disconnected",
                                       "server closed the connection")
                message, envelope = decode_response(line)
                reply_to = envelope.get("in_reply_to")
                if reply_to != msg_id:
                    self._router.park(reply_to, message)
                    async with self._reply_ready:
                        self._reply_ready.notify_all()
                    continue
            verdict = _accept(message, accept, intermediate)
            if verdict == "final":
                return message

    async def _roundtrip(self, request: Message,
                         accept: Tuple[Type[Message], ...],
                         intermediate: Tuple[Type[Message], ...] = ()
                         ) -> Message:
        msg_id = await self._send(request)
        return await self._wait(msg_id, accept, intermediate=intermediate)

    async def run(self, circuit: QuantumCircuit, engine: str = "auto",
                  limits: Optional[ResourceLimits] = None,
                  shots: Optional[int] = None, seed: Optional[int] = None,
                  reorder: Optional[int] = None,
                  priority: int = 0) -> RunResult:
        """Async mirror of :meth:`Client.run`."""
        reply = await self._roundtrip(
            SubmitRun(circuit, engine=engine, limits=limits, shots=shots,
                      seed=seed, reorder=reorder, priority=priority),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    async def run_tasks(self, tasks: Sequence[Tuple[str, QuantumCircuit]],
                        limits: Optional[ResourceLimits] = None,
                        jobs: int = 1, shots: Optional[int] = None,
                        seed: Optional[int] = None,
                        reorder: Optional[int] = None,
                        priority: int = 0) -> List[RunResult]:
        """Async mirror of :meth:`Client.run_tasks` (``jobs`` likewise
        accepted-and-ignored)."""
        del jobs
        reply = await self._roundtrip(
            SubmitSweep(list(tasks), limits=limits, shots=shots, seed=seed,
                        reorder=reorder, priority=priority),
            accept=(SweepCompleted,), intermediate=(JobAccepted,))
        return reply.results

    async def query_probability(self, circuit: QuantumCircuit,
                                qubits: Sequence[int],
                                values: Sequence[int],
                                engine: str = "auto",
                                limits: Optional[ResourceLimits] = None,
                                priority: int = 0) -> float:
        """Async mirror of :meth:`Client.query_probability`."""
        reply = await self._roundtrip(
            QueryProbability(circuit, qubits=list(qubits),
                             values=list(values), engine=engine,
                             limits=limits, priority=priority),
            accept=(ProbabilityReply,), intermediate=(JobAccepted,))
        return reply.probability

    async def open_session(self, num_qubits: int, engine: str = "bitslice",
                           limits: Optional[ResourceLimits] = None) -> str:
        """Async mirror of :meth:`Client.open_session`."""
        reply = await self._roundtrip(
            OpenSession(num_qubits=num_qubits, engine=engine, limits=limits),
            accept=(SessionOpened,))
        return reply.session_id

    async def append(self, session_id: str, circuit: QuantumCircuit,
                     shots: Optional[int] = None,
                     seed: Optional[int] = None,
                     priority: int = 0) -> RunResult:
        """Async mirror of :meth:`Client.append`."""
        reply = await self._roundtrip(
            AppendToSession(session_id, circuit, shots=shots, seed=seed,
                            priority=priority),
            accept=(RunCompleted,), intermediate=(JobAccepted,))
        return reply.result

    async def close_session(self, session_id: str) -> int:
        """Async mirror of :meth:`Client.close_session`."""
        reply = await self._roundtrip(CloseSession(session_id),
                                      accept=(SessionClosed,))
        return reply.appends

    async def stats(self) -> Dict[str, Any]:
        """Async mirror of :meth:`Client.stats`."""
        reply = await self._roundtrip(ServerStatsRequest(),
                                      accept=(StatsReply,))
        return reply.stats

    async def sessions(self) -> List[Dict[str, Any]]:
        """Async mirror of :meth:`Client.sessions`."""
        reply = await self._roundtrip(ListSessions(),
                                      accept=(SessionList,))
        return reply.sessions

    async def cancel(self, job_id: str) -> str:
        """Async mirror of :meth:`Client.cancel`."""
        reply = await self._roundtrip(CancelJob(job_id),
                                      accept=(CancelReply,))
        return reply.outcome


def make_runner(client: Client) -> Callable:
    """Adapt a :class:`Client` into a drop-in ``run_tasks`` replacement
    for harness experiments (``harness --server ADDR`` uses this)."""
    return client.run_tasks


__all__ = ["Address", "AsyncClient", "Client", "ServiceError",
           "make_runner", "parse_address"]

"""Typed wire protocol of the simulation service.

Messages travel as **newline-delimited JSON** (one object per line) over a
TCP or unix-domain stream.  Every line is an *envelope*::

    {"kind": "submit_run", "v": 1, "id": "c1", ...payload...}

``kind`` names the message type, ``v`` pins :data:`PROTOCOL_VERSION` (a
mismatch is rejected before any payload parsing), ``id`` is the sender's
correlation token and responses echo it back as ``in_reply_to``.  The
payload fields are flattened into the envelope; they never collide with
the reserved keys.

Each message kind is a dataclass below — requests in
:data:`REQUEST_TYPES`, responses in :data:`RESPONSE_TYPES` — and the
value-level codecs (:func:`circuit_to_wire`, :func:`result_to_wire`,
:func:`limits_to_wire`) translate the repository's first-class objects
(:class:`~repro.circuit.circuit.QuantumCircuit`,
:class:`~repro.engines.result.RunResult`,
:class:`~repro.engines.limits.ResourceLimits`) to and from plain JSON.
The result codec carries every *raw* field of the run record, so a client
reconstructs a :class:`RunResult` whose deterministic serialisation
(``to_dict(timings=False)``) is byte-identical to the server-side one —
the wire adds no lossy re-encoding step.

Asynchronous request kinds (``submit_run``, ``submit_sweep``,
``sample_shots``, ``query_probability``, ``append_to_session``) are
answered twice: a :class:`JobAccepted` immediately (carrying the server's
job id, usable with :class:`CancelJob`), then the terminal result /
:class:`ErrorReply` when the job finishes.  Synchronous kinds (session
management, stats, cancellation) are answered once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.engines.limits import ResourceLimits
from repro.engines.result import RunResult
from repro.exceptions import SimulationError

#: Version tag carried by every envelope; a peer speaking another version
#: is rejected with a ``version_mismatch`` error before payload parsing.
PROTOCOL_VERSION = 1


class ProtocolError(SimulationError):
    """A malformed, unknown-kind or version-incompatible wire message."""


# --------------------------------------------------------------------- #
# value codecs
# --------------------------------------------------------------------- #
def limits_to_wire(limits: Optional[ResourceLimits]) -> Optional[Dict[str, Any]]:
    """:class:`ResourceLimits` as a plain dict (``None`` passes through)."""
    if limits is None:
        return None
    return {"max_seconds": limits.max_seconds,
            "max_nodes": limits.max_nodes,
            "max_dense_qubits": limits.max_dense_qubits}


def limits_from_wire(data: Optional[Dict[str, Any]]) -> Optional[ResourceLimits]:
    """Rebuild :class:`ResourceLimits` from :func:`limits_to_wire` output."""
    if data is None:
        return None
    try:
        return ResourceLimits(
            max_seconds=data.get("max_seconds"),
            max_nodes=data.get("max_nodes"),
            max_dense_qubits=data.get("max_dense_qubits", 24))
    except (TypeError, AttributeError) as exc:
        raise ProtocolError(f"bad limits payload: {exc}") from exc


def circuit_to_wire(circuit: QuantumCircuit) -> Dict[str, Any]:
    """A :class:`QuantumCircuit` as a plain dict: register width, name, the
    ordered gate stream (kind / targets / controls / clbits / condition)
    and the terminal measurement markers."""
    gates = []
    for gate in circuit.gates:
        entry: Dict[str, Any] = {"kind": gate.kind.value,
                                 "targets": list(gate.targets)}
        if gate.controls:
            entry["controls"] = list(gate.controls)
        if gate.clbits:
            entry["clbits"] = list(gate.clbits)
        if gate.condition is not None:
            entry["condition"] = gate.condition
        gates.append(entry)
    return {"num_qubits": circuit.num_qubits,
            "name": circuit.name,
            "gates": gates,
            "measure": [[qubit, clbit]
                        for qubit, clbit in circuit.final_measurement_map()],
            "num_clbits": circuit.num_clbits}


def circuit_from_wire(data: Dict[str, Any]) -> QuantumCircuit:
    """Rebuild a :class:`QuantumCircuit` from :func:`circuit_to_wire` output
    (gate validation runs again on this side, so a hand-crafted payload
    cannot smuggle an ill-formed gate past the IR's invariants)."""
    try:
        circuit = QuantumCircuit(int(data["num_qubits"]),
                                 name=str(data.get("name", "")))
        for entry in data.get("gates", ()):
            circuit.append(Gate(GateKind(entry["kind"]),
                                tuple(entry["targets"]),
                                tuple(entry.get("controls", ())),
                                tuple(entry.get("clbits", ())),
                                entry.get("condition")))
        for qubit, clbit in data.get("measure", ()):
            circuit.measure(int(qubit), int(clbit))
        circuit.num_clbits = max(circuit.num_clbits,
                                 int(data.get("num_clbits", 0)))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad circuit payload: {exc}") from exc
    return circuit


def result_to_wire(result: RunResult) -> Dict[str, Any]:
    """A :class:`RunResult` as a plain dict carrying every raw field —
    delegates to :meth:`RunResult.to_wire` (the canonical codec, shared
    with the sweep journal)."""
    return result.to_wire()


def result_from_wire(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_wire` output; the
    reconstruction round-trips ``to_dict(timings=False)`` byte-identically."""
    try:
        return RunResult.from_wire(data)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


# Field codecs used by the generic payload machinery below.
def _encode_field(codec: str, value: Any) -> Any:
    if value is None:
        return None
    if codec == "circuit":
        return circuit_to_wire(value)
    if codec == "limits":
        return limits_to_wire(value)
    if codec == "result":
        return result_to_wire(value)
    if codec == "results":
        return [result_to_wire(result) for result in value]
    if codec == "tasks":
        return [{"engine": engine, "circuit": circuit_to_wire(circuit)}
                for engine, circuit in value]
    return value


def _decode_field(codec: str, value: Any) -> Any:
    if value is None:
        return None
    if codec == "circuit":
        return circuit_from_wire(value)
    if codec == "limits":
        return limits_from_wire(value)
    if codec == "result":
        return result_from_wire(value)
    if codec == "results":
        return [result_from_wire(entry) for entry in value]
    if codec == "tasks":
        try:
            return [(entry["engine"], circuit_from_wire(entry["circuit"]))
                    for entry in value]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad task list payload: {exc}") from exc
    return value


# --------------------------------------------------------------------- #
# message base
# --------------------------------------------------------------------- #
@dataclass
class Message:
    """Base of every wire message: a ``kind`` tag plus a declarative field
    table (``_WIRE``: name → codec) driving generic JSON (de)serialisation.

    Subclasses are plain dataclasses; their ``_WIRE`` entries name each
    field and the codec translating it (``raw`` for JSON-native values,
    ``circuit`` / ``limits`` / ``result`` / ``results`` / ``tasks`` for the
    first-class objects)."""

    kind: ClassVar[str] = ""
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = ()

    def payload(self) -> Dict[str, Any]:
        """Encode the message's fields into a JSON-ready payload dict
        (``None``-valued optional fields are omitted from the wire)."""
        data: Dict[str, Any] = {}
        for name, codec in self._WIRE:
            value = _encode_field(codec, getattr(self, name))
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "Message":
        """Rebuild a message of this kind from a decoded envelope dict
        (unknown keys are ignored, missing optional fields keep their
        defaults, a missing required field raises :class:`ProtocolError`)."""
        kwargs = {}
        for name, codec in cls._WIRE:
            if name in data:
                kwargs[name] = _decode_field(codec, data[name])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad {cls.kind} payload: {exc}") from exc


# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #
@dataclass
class SubmitRun(Message):
    """Run one circuit on one engine asynchronously; answered by
    :class:`JobAccepted` and then :class:`RunCompleted`."""

    circuit: QuantumCircuit
    engine: str = "auto"
    limits: Optional[ResourceLimits] = None
    shots: Optional[int] = None
    seed: Optional[int] = None
    reorder: Optional[int] = None
    priority: int = 0
    #: Client-generated token making retried submissions safe: a resend
    #: carrying a key the server has already accepted is answered with the
    #: *original* job instead of executing again (all submit-style requests
    #: carry this optional field; absent = no dedup).
    idempotency_key: Optional[str] = None

    kind: ClassVar[str] = "submit_run"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("circuit", "circuit"), ("engine", "raw"), ("limits", "limits"),
        ("shots", "raw"), ("seed", "raw"), ("reorder", "raw"),
        ("priority", "raw"), ("idempotency_key", "raw"))


@dataclass
class SubmitSweep(Message):
    """Run an explicit (engine, circuit) task list as **one job**, executed
    serially server-side with per-task seeds derived exactly as in
    :func:`repro.engines.frontdoor.run_tasks` — so the returned results are
    byte-identical to a local ``run_sweep()`` of the same grid.  Answered
    by :class:`JobAccepted` and then :class:`SweepCompleted`."""

    tasks: List[Tuple[str, QuantumCircuit]]
    limits: Optional[ResourceLimits] = None
    shots: Optional[int] = None
    seed: Optional[int] = None
    reorder: Optional[int] = None
    priority: int = 0
    idempotency_key: Optional[str] = None

    kind: ClassVar[str] = "submit_sweep"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("tasks", "tasks"), ("limits", "limits"), ("shots", "raw"),
        ("seed", "raw"), ("reorder", "raw"), ("priority", "raw"),
        ("idempotency_key", "raw"))


@dataclass
class SampleShots(Message):
    """Sample measurement shots from a circuit (a :class:`SubmitRun` whose
    ``shots`` is mandatory); answered by :class:`JobAccepted` and then
    :class:`RunCompleted` carrying the counts."""

    circuit: QuantumCircuit
    shots: int = 0
    engine: str = "auto"
    limits: Optional[ResourceLimits] = None
    seed: Optional[int] = None
    priority: int = 0
    idempotency_key: Optional[str] = None

    kind: ClassVar[str] = "sample_shots"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("circuit", "circuit"), ("shots", "raw"), ("engine", "raw"),
        ("limits", "limits"), ("seed", "raw"), ("priority", "raw"),
        ("idempotency_key", "raw"))


@dataclass
class QueryProbability(Message):
    """Execute a circuit and answer one joint-outcome probability query
    (``P(qubits = values)``); answered by :class:`JobAccepted` and then
    :class:`ProbabilityReply`."""

    circuit: QuantumCircuit
    qubits: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)
    engine: str = "auto"
    limits: Optional[ResourceLimits] = None
    priority: int = 0
    idempotency_key: Optional[str] = None

    kind: ClassVar[str] = "query_probability"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("circuit", "circuit"), ("qubits", "raw"), ("values", "raw"),
        ("engine", "raw"), ("limits", "limits"), ("priority", "raw"),
        ("idempotency_key", "raw"))


@dataclass
class OpenSession(Message):
    """Open a long-lived session pinning warm engine state for incremental
    :class:`AppendToSession` calls; answered by :class:`SessionOpened`."""

    num_qubits: int = 1
    engine: str = "bitslice"
    limits: Optional[ResourceLimits] = None

    kind: ClassVar[str] = "open_session"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("num_qubits", "raw"), ("engine", "raw"), ("limits", "limits"))


@dataclass
class AppendToSession(Message):
    """Extend a session's cumulative circuit by a delta circuit and run it —
    resuming from the retained prefix state rather than replaying from
    ``|0>``; answered by :class:`JobAccepted` then :class:`RunCompleted`."""

    session_id: str = ""
    circuit: Optional[QuantumCircuit] = None
    shots: Optional[int] = None
    seed: Optional[int] = None
    priority: int = 0
    #: Dedup token checked *at the session* (under its lock), so a retried
    #: append after a dropped reply replays the recorded result instead of
    #: advancing the cumulative circuit twice.
    idempotency_key: Optional[str] = None

    kind: ClassVar[str] = "append_to_session"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("session_id", "raw"), ("circuit", "circuit"), ("shots", "raw"),
        ("seed", "raw"), ("priority", "raw"), ("idempotency_key", "raw"))


@dataclass
class CloseSession(Message):
    """Close a session, releasing its registry slot (the pool-retained
    prefix states stay subject to the pool's own LRU bound); answered by
    :class:`SessionClosed`."""

    session_id: str = ""

    kind: ClassVar[str] = "close_session"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (("session_id", "raw"),)


@dataclass
class ServerStatsRequest(Message):
    """Request one admin-surface snapshot (queue gauges, live sessions, the
    merged ``service_*`` / ``prefix_*`` / ``result_cache_*`` counters);
    answered by :class:`StatsReply`."""

    kind: ClassVar[str] = "server_stats"


@dataclass
class ListSessions(Message):
    """Request the live-session summaries; answered by :class:`SessionList`."""

    kind: ClassVar[str] = "list_sessions"


@dataclass
class HealthRequest(Message):
    """Liveness/degradation probe; answered by :class:`HealthReply`.

    Cheaper and more focused than :class:`ServerStatsRequest` — no counter
    bag, just the gauges a load balancer or drain script needs — and
    answered even while the server is draining."""

    kind: ClassVar[str] = "health"


@dataclass
class CancelJob(Message):
    """Cancel a queued or running job by the id :class:`JobAccepted`
    reported; answered by :class:`CancelReply`."""

    job_id: str = ""

    kind: ClassVar[str] = "cancel_job"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (("job_id", "raw"),)


@dataclass
class WatchRequest(Message):
    """Stream :class:`StatsReply` frames every ``interval`` seconds,
    ``count`` times (``None`` = until the connection closes)."""

    interval: float = 1.0
    count: Optional[int] = None

    kind: ClassVar[str] = "watch"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("interval", "raw"), ("count", "raw"))


# --------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------- #
@dataclass
class JobAccepted(Message):
    """A job entered the queue; ``job_id`` names it for :class:`CancelJob`.
    The terminal reply follows on the same connection when it finishes."""

    job_id: str = ""

    kind: ClassVar[str] = "job_accepted"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (("job_id", "raw"),)


@dataclass
class RunCompleted(Message):
    """Terminal reply of a single-circuit job: the full run record."""

    job_id: str = ""
    result: Optional[RunResult] = None

    kind: ClassVar[str] = "run_result"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("job_id", "raw"), ("result", "result"))


@dataclass
class SweepCompleted(Message):
    """Terminal reply of a sweep job: one run record per task, in task
    order."""

    job_id: str = ""
    results: List[RunResult] = field(default_factory=list)

    kind: ClassVar[str] = "sweep_result"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("job_id", "raw"), ("results", "results"))


@dataclass
class ProbabilityReply(Message):
    """Terminal reply of a :class:`QueryProbability` job."""

    job_id: str = ""
    probability: float = 0.0
    engine: str = ""

    kind: ClassVar[str] = "probability"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("job_id", "raw"), ("probability", "raw"), ("engine", "raw"))


@dataclass
class SessionOpened(Message):
    """A session is live (its ``|0>`` state is pinned in the warm pool)."""

    session_id: str = ""
    engine: str = ""
    num_qubits: int = 0

    kind: ClassVar[str] = "session_opened"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("session_id", "raw"), ("engine", "raw"), ("num_qubits", "raw"))


@dataclass
class SessionClosed(Message):
    """A session was closed after ``appends`` successful appends."""

    session_id: str = ""
    appends: int = 0

    kind: ClassVar[str] = "session_closed"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("session_id", "raw"), ("appends", "raw"))


@dataclass
class StatsReply(Message):
    """One admin snapshot: queue gauges, session count, uptime and the
    merged counter bag (see ``docs/perf-counters.md``)."""

    stats: Dict[str, Any] = field(default_factory=dict)

    kind: ClassVar[str] = "stats"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (("stats", "raw"),)


@dataclass
class SessionList(Message):
    """Live-session summaries (id, engine, width, cumulative gate count,
    append count, idle seconds)."""

    sessions: List[Dict[str, Any]] = field(default_factory=list)

    kind: ClassVar[str] = "session_list"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (("sessions", "raw"),)


@dataclass
class HealthReply(Message):
    """Degradation snapshot: ``state`` (``"ok"`` or ``"draining"``), queue
    depth/capacity, running-job and worker-liveness gauges, live session
    count and uptime.  ``workers_alive < workers`` marks a degraded pool
    (possible only if worker-crash isolation itself failed).

    The checkpoint gauges (all defaulted, so the wire stays compatible
    with peers predating them): ``checkpointed_sessions`` counts session
    snapshot files currently on disk, ``restored_sessions`` how many this
    process rehydrated at startup, and ``checkpoint_age_seconds`` the time
    since the last snapshot write (``-1`` when this process has not
    written one — including when checkpointing is off)."""

    state: str = "ok"
    queue_depth: int = 0
    queue_capacity: int = 0
    running: int = 0
    workers: int = 0
    workers_alive: int = 0
    sessions: int = 0
    uptime_seconds: float = 0.0
    checkpointed_sessions: int = 0
    restored_sessions: int = 0
    checkpoint_age_seconds: float = -1.0

    kind: ClassVar[str] = "health_reply"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("state", "raw"), ("queue_depth", "raw"), ("queue_capacity", "raw"),
        ("running", "raw"), ("workers", "raw"), ("workers_alive", "raw"),
        ("sessions", "raw"), ("uptime_seconds", "raw"),
        ("checkpointed_sessions", "raw"), ("restored_sessions", "raw"),
        ("checkpoint_age_seconds", "raw"))


@dataclass
class CancelReply(Message):
    """Outcome of a :class:`CancelJob`: ``cancelled`` (was queued, never
    ran), ``cancelling`` (running; stops at the next gate boundary),
    ``finished`` (already done) or ``unknown``."""

    job_id: str = ""
    outcome: str = "unknown"

    kind: ClassVar[str] = "cancel_result"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("job_id", "raw"), ("outcome", "raw"))


@dataclass
class ErrorReply(Message):
    """Structured failure reply.  ``code`` is machine-readable
    (``queue_full``, ``draining``, ``unknown_session``,
    ``too_many_sessions``, ``bad_request``, ``version_mismatch``,
    ``cancelled``, ``internal``; clients synthesise ``connection_lost``
    locally when the transport drops); ``details`` carries code-specific
    context such as queue depth."""

    code: str = "internal"
    message: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    kind: ClassVar[str] = "error"
    _WIRE: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("code", "raw"), ("message", "raw"), ("details", "raw"))


def _registry(*classes: Type[Message]) -> Dict[str, Type[Message]]:
    return {cls.kind: cls for cls in classes}


#: Request kinds the server accepts, keyed by ``kind`` tag.
REQUEST_TYPES: Dict[str, Type[Message]] = _registry(
    SubmitRun, SubmitSweep, SampleShots, QueryProbability, OpenSession,
    AppendToSession, CloseSession, ServerStatsRequest, ListSessions,
    HealthRequest, CancelJob, WatchRequest)

#: Response kinds a client may receive, keyed by ``kind`` tag.
RESPONSE_TYPES: Dict[str, Type[Message]] = _registry(
    JobAccepted, RunCompleted, SweepCompleted, ProbabilityReply,
    SessionOpened, SessionClosed, StatsReply, SessionList, HealthReply,
    CancelReply, ErrorReply)


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #
def encode_message(message: Message, msg_id: Optional[str] = None,
                   in_reply_to: Optional[str] = None) -> bytes:
    """One wire line: the envelope (kind, version, correlation ids) with the
    message payload flattened in, JSON-encoded, newline-terminated."""
    envelope: Dict[str, Any] = {"kind": message.kind, "v": PROTOCOL_VERSION}
    if msg_id is not None:
        envelope["id"] = msg_id
    if in_reply_to is not None:
        envelope["in_reply_to"] = in_reply_to
    envelope.update(message.payload())
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8") + b"\n"


def _decode_line(line: bytes,
                 registry: Dict[str, Type[Message]]) -> Tuple[Message, Dict[str, Any]]:
    try:
        data = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError("message line is not a JSON object")
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this peer speaks {PROTOCOL_VERSION})")
    kind = data.get("kind")
    cls = registry.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    return cls.from_payload(data), data


def decode_request(line: bytes) -> Tuple[Message, Dict[str, Any]]:
    """Parse one request line into its typed message plus the raw envelope
    (the envelope keeps ``id`` for correlating the reply)."""
    return _decode_line(line, REQUEST_TYPES)


def decode_response(line: bytes) -> Tuple[Message, Dict[str, Any]]:
    """Parse one response line into its typed message plus the raw envelope
    (the envelope keeps ``in_reply_to`` for demultiplexing)."""
    return _decode_line(line, RESPONSE_TYPES)


__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Message",
    "SubmitRun",
    "SubmitSweep",
    "SampleShots",
    "QueryProbability",
    "OpenSession",
    "AppendToSession",
    "CloseSession",
    "ServerStatsRequest",
    "ListSessions",
    "HealthRequest",
    "CancelJob",
    "WatchRequest",
    "JobAccepted",
    "RunCompleted",
    "SweepCompleted",
    "ProbabilityReply",
    "SessionOpened",
    "SessionClosed",
    "StatsReply",
    "SessionList",
    "HealthReply",
    "CancelReply",
    "ErrorReply",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "encode_message",
    "decode_request",
    "decode_response",
    "circuit_to_wire",
    "circuit_from_wire",
    "result_to_wire",
    "result_from_wire",
    "limits_to_wire",
    "limits_from_wire",
]

"""repro.perf — performance instrumentation for the BDD substrate.

Counters, spans and JSON reports built on top of
:meth:`repro.bdd.manager.BddManager.perf_stats`.  See
:mod:`repro.perf.counters` for the full API documentation.
"""

from repro.perf.counters import (
    GAUGE_KEYS,
    PerfCounters,
    SubstrateSpan,
    diff_stats,
    merge_span_stats,
    save_stats,
    stats_to_json,
    substrate_span,
)

__all__ = [
    "GAUGE_KEYS",
    "PerfCounters",
    "SubstrateSpan",
    "diff_stats",
    "merge_span_stats",
    "save_stats",
    "stats_to_json",
    "substrate_span",
]

"""Substrate performance instrumentation: counters, spans and reports.

The :class:`~repro.bdd.manager.BddManager` maintains raw counters (computed
table hits / misses per operation, unique-table probes, GC pauses, peak live
nodes) and exposes them through ``perf_stats()``.  This module turns those
raw snapshots into something a harness can use:

* :class:`PerfCounters` — a plain accumulating counter bag with JSON export,
  usable by any subsystem that wants named numeric counters;
* :func:`diff_stats` — the delta between two ``perf_stats()`` snapshots,
  with hit rates recomputed from the diffed hits / misses (gauges such as
  ``live_nodes`` report the *after* value);
* :class:`SubstrateSpan` / :func:`substrate_span` — a context manager that
  snapshots a manager on entry and exit and exposes the per-span delta plus
  wall-clock time, so callers can attribute substrate work to a region
  ("this gate", "this benchmark row");
* :func:`stats_to_json` — stable JSON export for regression tracking.
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, Iterable, Mapping, Optional, Union

from repro.bdd.manager import OP_NAMES

#: Snapshot keys that are point-in-time gauges, not monotone counters; a
#: span reports their value at exit instead of a meaningless difference.
GAUGE_KEYS = frozenset({
    # Which substrate backend the manager runs on (constant per manager).
    "backend",
    "live_nodes",
    "peak_live_nodes",
    "unique_size",
    "cache_generation",
    # Node counts of the *most recent* reorder, not monotone totals.
    "reorder_nodes_before",
    "reorder_nodes_after",
})

Number = Union[int, float]


class PerfCounters:
    """A named bag of accumulating numeric counters.

    Lightweight by design: the hot path is ``add`` (a dict upsert).  The bag
    merges, snapshots and serialises; it never loses precision (integers stay
    integers until a float is mixed in).
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: Optional[Mapping[str, Number]] = None):
        self._counts: Dict[str, Number] = dict(initial) if initial else {}

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment ``name`` by ``amount`` (creating it at zero)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def update(self, values: Mapping[str, Number]) -> None:
        """Add every entry of ``values`` into the bag."""
        counts = self._counts
        for name, amount in values.items():
            counts[name] = counts.get(name, 0) + amount

    def get(self, name: str, default: Number = 0) -> Number:
        """Current value of ``name`` (``default`` when absent)."""
        return self._counts.get(name, default)

    def rate(self, hits_name: str, misses_name: str) -> float:
        """Hit rate computed from a hits / misses counter pair (0.0 when
        neither has been touched).  The result-cache and session-pool
        counters (``result_cache_*``, ``prefix_*``) report their
        effectiveness through this, mirroring how the substrate's
        ``cache_*_hit_rate`` entries are derived from raw pairs."""
        hits = self._counts.get(hits_name, 0)
        lookups = hits + self._counts.get(misses_name, 0)
        return hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, Number]:
        """A copy of the current counter values."""
        return dict(self._counts)

    def reset(self) -> None:
        """Drop every counter."""
        self._counts.clear()

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.update(other._counts)
        return self

    def to_json(self, indent: int = 2) -> str:
        """Counters as a stable (sorted-key) JSON object."""
        return json.dumps(self._counts, indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, name: str) -> Number:
        return self._counts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __repr__(self) -> str:
        return f"PerfCounters({self._counts!r})"


def _recompute_hit_rates(stats: Dict[str, Number]) -> None:
    """Overwrite every ``cache_*_hit_rate`` entry from the hit / miss pairs
    present in ``stats`` (diffed rates are meaningless otherwise)."""
    for name in OP_NAMES:
        hits = stats.get(f"cache_{name}_hits", 0)
        misses = stats.get(f"cache_{name}_misses", 0)
        lookups = hits + misses
        stats[f"cache_{name}_hit_rate"] = hits / lookups if lookups else 0.0
    hits = stats.get("cache_hits", 0)
    misses = stats.get("cache_misses", 0)
    lookups = hits + misses
    stats["cache_hit_rate"] = hits / lookups if lookups else 0.0


def diff_stats(before: Mapping[str, Number],
               after: Mapping[str, Number]) -> Dict[str, Number]:
    """Delta between two ``perf_stats()`` snapshots.

    Counters are subtracted, gauges take the ``after`` value, and hit rates
    are recomputed from the diffed hits / misses so the result describes the
    interval itself.
    """
    delta: Dict[str, Number] = {}
    for key, after_value in after.items():
        if key in GAUGE_KEYS:
            delta[key] = after_value
        elif key.endswith("_hit_rate"):
            continue  # recomputed below
        else:
            delta[key] = after_value - before.get(key, 0)
    _recompute_hit_rates(delta)
    return delta


class SubstrateSpan:
    """Context manager attributing substrate work to a region of code.

    Usage::

        with substrate_span(manager) as span:
            ...  # BDD work
        span.stats             # per-span counter deltas + hit rates
        span.elapsed_seconds   # wall-clock time of the region

    ``stats`` is ``None`` while the span is still open.  Spans nest freely
    (each holds its own entry snapshot) and are cheap: two ``perf_stats()``
    snapshots per span, no per-operation overhead.
    """

    __slots__ = ("manager", "stats", "elapsed_seconds", "_entry", "_started")

    def __init__(self, manager):
        self.manager = manager
        self.stats: Optional[Dict[str, Number]] = None
        self.elapsed_seconds = 0.0
        self._entry: Optional[Dict[str, Number]] = None
        self._started = 0.0

    def __enter__(self) -> "SubstrateSpan":
        self._entry = self.manager.perf_stats()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.elapsed_seconds = time.perf_counter() - self._started
        self.stats = diff_stats(self._entry, self.manager.perf_stats())
        self.stats["elapsed_seconds"] = self.elapsed_seconds
        return None


def substrate_span(manager) -> SubstrateSpan:
    """Open a :class:`SubstrateSpan` over ``manager`` (see class docs)."""
    return SubstrateSpan(manager)


def stats_to_json(stats: Mapping[str, Number], indent: int = 2) -> str:
    """Stable JSON dump of a stats mapping (sorted keys)."""
    return json.dumps(dict(stats), indent=indent, sort_keys=True)


def save_stats(stats: Mapping[str, Number],
               destination: Union[str, IO[str]]) -> None:
    """Write :func:`stats_to_json` to a path or an open text handle."""
    payload = stats_to_json(stats)
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(payload)


def merge_span_stats(spans: Iterable[Mapping[str, Number]]) -> Dict[str, Number]:
    """Accumulate several span stats into one (rates recomputed at the end)."""
    total = PerfCounters()
    for stats in spans:
        total.update({key: value for key, value in stats.items()
                      if not key.endswith("_hit_rate") and key not in GAUGE_KEYS})
    merged = total.snapshot()
    _recompute_hit_rates(merged)
    return merged

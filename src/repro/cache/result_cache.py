"""A bounded, thread-safe LRU cache of completed :class:`RunResult` records.

Production traffic against a simulator is repetitive: the same circuit
shapes re-run with identical parameters.  Because every engine here is
deterministic at fixed seed, the :class:`~repro.engines.result.RunResult`
of a completed run can be replayed *verbatim* for a later identical
request — cache hits are provably identical to cold runs, pinned by the
byte-identity tests in ``tests/cache/``.

Keys are built by :func:`result_cache_key` from everything a run's
deterministic outputs depend on:

``(fingerprint, engine, seed, shots, reorder, limits)``

* ``fingerprint`` — the canonical circuit fingerprint
  (:func:`repro.cache.circuit_fingerprint`),
* ``engine`` — the *resolved* canonical engine name (aliases collapse onto
  their target; ``"auto"`` requests key on whatever the selector picked),
* ``seed`` / ``shots`` — the sampling request (unseeded sampling is never
  cached: replaying one draw would silently freeze fresh randomness),
* ``reorder`` — the normalised reordering threshold (reordering changes
  node-count statistics),
* ``limits`` — the TO/MO budget triple.  The issue's key stops at
  ``reorder``, but budgets are part of the outcome: a run that finished
  under a 60 s budget may legitimately time out under a 1 s one, so
  serving it from cache would fabricate a result the cold run cannot
  produce.

Entries are bounded both by count and by (approximate, serialised) bytes;
eviction is least-recently-used.  All public methods are thread-safe.  The
``counters`` bag exposes ``result_cache_hits`` / ``result_cache_misses`` /
``result_cache_evictions`` / ``result_cache_stores`` and the
``result_cache_bytes`` / ``result_cache_entries`` gauges.
"""

from __future__ import annotations

import copy
import json
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from repro.cache.fingerprint import circuit_fingerprint
from repro.circuit.circuit import QuantumCircuit
from repro.engines.base import DEFAULT_AUTO_REORDER_THRESHOLD
from repro.engines.limits import ResourceLimits
from repro.engines.result import STATUS_OK, STATUS_UNSUPPORTED, RunResult
from repro.perf.counters import PerfCounters

#: Outcome classes that are deterministic re-runnable facts about a
#: (circuit, engine, seed, shots, reorder, limits) tuple.  TO/MO/crash
#: outcomes depend on wall-clock scheduling and check cadence, so they are
#: recomputed every time rather than cached.
CACHEABLE_STATUSES = frozenset({STATUS_OK, STATUS_UNSUPPORTED})

CacheKey = Tuple[str, str, Optional[int], Optional[int], Optional[int],
                 Tuple[Optional[float], Optional[int], int]]


def normalise_reorder(reorder: Union[bool, int, None]) -> Optional[int]:
    """The reordering request as a canonical threshold (``None`` = off).

    Mirrors the front door's interpretation: ``True`` means the default
    threshold, ``False``/``None`` mean off, an integer is used directly —
    so ``reorder=True`` and ``reorder=25_000`` share a cache key exactly
    when the default threshold is 25 000.
    """
    if reorder is None or reorder is False:
        return None
    if reorder is True:
        return DEFAULT_AUTO_REORDER_THRESHOLD
    return int(reorder)


def cacheable_request(shots: Optional[int], seed: Optional[int]) -> bool:
    """True when a request's outputs are deterministic enough to memoise:
    no sampling at all, or sampling under a fixed seed.  An unseeded
    ``shots=`` request wants fresh randomness per call; caching it would
    replay one draw forever."""
    return shots is None or seed is not None


def result_cache_key(circuit: QuantumCircuit, engine: str,
                     seed: Optional[int], shots: Optional[int],
                     reorder: Union[bool, int, None],
                     limits: Optional[ResourceLimits] = None) -> CacheKey:
    """The full cache key for one run request (see the module docstring).

    ``engine`` must already be resolved to a canonical engine name (the
    front door resolves aliases and ``"auto"`` before keying).
    """
    limits = limits or ResourceLimits()
    return (circuit_fingerprint(circuit), engine, seed, shots,
            normalise_reorder(reorder),
            (limits.max_seconds, limits.max_nodes, limits.max_dense_qubits))


def _estimate_entry_bytes(result: RunResult) -> int:
    """Approximate retained size of one entry: the length of its full JSON
    serialisation (cheap, deterministic, and proportional to the real
    footprint, which is dominated by ``counts`` and ``extra``)."""
    return len(json.dumps(result.to_dict(timings=True), sort_keys=True,
                          default=str))


class ResultCache:
    """Bounded thread-safe LRU cache of finished run results.

    Parameters
    ----------
    max_entries:
        Entry-count bound (least-recently-used eviction past it).
    max_bytes:
        Approximate byte bound over the serialised entries; entries are
        evicted LRU-first until the total fits.  A single result larger
        than the bound is simply not stored.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 32 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[RunResult, int]]" = OrderedDict()
        self._total_bytes = 0
        #: Hit / miss / eviction / store counters plus size gauges.
        self.counters = PerfCounters()

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def lookup(self, key: CacheKey) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None``.

        Hits return a deep copy (callers may mutate their result freely)
        with ``extra["cache_hit"] = 1`` added — a provenance marker that the
        deterministic serialisation ``to_dict(timings=False)`` excludes, so
        a hit stays byte-identical to the cold run it replays.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.counters.add("result_cache_misses")
                return None
            self._entries.move_to_end(key)
            self.counters.add("result_cache_hits")
            result = copy.deepcopy(entry[0])
        result.extra["cache_hit"] = 1
        return result

    def store(self, key: CacheKey, result: RunResult) -> bool:
        """Insert ``result`` under ``key``; returns True when stored.

        Non-cacheable outcomes (see :data:`CACHEABLE_STATUSES`) and results
        larger than the byte bound are rejected.  The stored copy is
        stripped of provenance markers so a future hit replays the cold
        run, not the hit-of-a-hit.
        """
        if result.status not in CACHEABLE_STATUSES:
            return False
        kept = copy.deepcopy(result)
        kept.extra.pop("cache_hit", None)
        size = _estimate_entry_bytes(kept)
        if size > self.max_bytes:
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= previous[1]
            self._entries[key] = (kept, size)
            self._total_bytes += size
            self.counters.add("result_cache_stores")
            while (len(self._entries) > self.max_entries
                   or self._total_bytes > self.max_bytes):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._total_bytes -= evicted_size
                self.counters.add("result_cache_evictions")
        return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def total_bytes(self) -> int:
        """Approximate serialised size of all retained entries."""
        with self._lock:
            return self._total_bytes

    def hit_rate(self) -> float:
        """Lifetime hit rate of :meth:`lookup` calls."""
        return self.counters.rate("result_cache_hits", "result_cache_misses")

    def stats(self) -> Dict[str, float]:
        """Counter snapshot plus the size gauges and the lifetime hit rate."""
        snapshot = self.counters.snapshot()
        with self._lock:
            snapshot["result_cache_entries"] = len(self._entries)
            snapshot["result_cache_bytes"] = self._total_bytes
        snapshot["result_cache_hit_rate"] = self.hit_rate()
        return snapshot

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache(entries={len(self)}, "
                f"bytes={self.total_bytes}/{self.max_bytes})")


__all__ = ["CACHEABLE_STATUSES", "CacheKey", "ResultCache",
           "cacheable_request", "normalise_reorder", "result_cache_key"]

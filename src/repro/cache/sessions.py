"""Retained session states for gate-sequence **prefix reuse**.

The bit-sliced engine's state after ``k`` gates is a pure function of the
first ``k`` gates (BDDs are canonical, the omega-algebra coefficients are
exact integers), so a retained state can stand in for replaying that prefix
from ``|0>`` — the simulator analogue of KV-prefix caching in inference
stacks.  A :class:`SessionPool` keeps a bounded set of finished run states
alive (4r slice roots plus their manager); an incoming circuit that extends
a retained gate sequence resumes from the stored slices and only executes
the suffix.

Correctness machinery:

* **Forking.**  A resume never mutates the stored state: the pool hands out
  a :meth:`fork <repro.core.simulator.BitSliceSimulator.fork>` of the
  retained payload (new handle lists onto the same manager — BDD handles
  are immutable, so this is O(4r) and exact) and the stored entry remains
  matchable for sibling requests that branch off the same prefix.
* **Chain locking.**  A fork shares its manager with the stored entry, and
  the pure-Python node store is not safe under concurrent mutation; every
  entry carries a *chain lock* covering all states on one manager.  A
  resumed run holds it until it finishes; concurrent requests for the same
  chain simply miss and run cold (counted as ``prefix_busy``).
* **Generation invalidation.**  Every entry records its manager's
  ``cache_generation`` at deposit time.  GC, reordering and explicit cache
  clears bump that generation; a bump observed *between* deposit and the
  next match means something other than this pool touched the manager
  (collected nodes, moved levels), so the entry is conservatively dropped
  (``prefix_invalidations``) rather than resumed.  Bumps caused by a
  resumed run itself are re-recorded at its own deposit, so ordinary
  GC/reorder activity inside a run never poisons the chain.

Eligibility (enforced by the front door, not here): engines declaring
``Capabilities.supports_prefix_resume``, static circuits only (collapsing
instructions make the retained state trajectory-dependent), and matching
``reorder`` settings (the threshold lives on the shared manager).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.cache.fingerprint import GateToken
from repro.perf.counters import PerfCounters

#: Pool entry key: (num_qubits, normalised reorder threshold, gate tokens).
SessionKey = Tuple[int, Optional[int], Tuple[GateToken, ...]]


class _SessionEntry:
    """One retained state: payload + the bookkeeping to resume it safely."""

    __slots__ = ("key", "payload", "generation_probe", "stored_generation",
                 "chain_lock")

    def __init__(self, key: SessionKey, payload,
                 generation_probe: Callable[[], int],
                 chain_lock: threading.Lock):
        self.key = key
        self.payload = payload
        self.generation_probe = generation_probe
        self.stored_generation = generation_probe()
        self.chain_lock = chain_lock


class SessionLease:
    """Exclusive permission to resume from one matched prefix.

    Holds the matched entry's chain lock from :meth:`SessionPool.match`
    until :meth:`release`; ``fork`` is the private, already-forked payload
    the engine adopts, ``depth`` the number of prefix gates it already
    contains, and ``chain_lock`` what a subsequent deposit must reuse so the
    whole chain stays serialised.
    """

    __slots__ = ("fork", "depth", "chain_lock", "_released")

    def __init__(self, fork, depth: int, chain_lock: threading.Lock):
        self.fork = fork
        self.depth = depth
        self.chain_lock = chain_lock
        self._released = False

    def release(self) -> None:
        """Release the chain lock (idempotent; always call via finally)."""
        if not self._released:
            self._released = True
            self.chain_lock.release()


class SessionPool:
    """Bounded LRU pool of retained engine session states.

    ``max_sessions`` bounds how many finished states stay alive (each holds
    its 4r slice handles and its manager's node store); eviction is
    least-recently-matched.  All methods are thread-safe; resumed *runs*
    are additionally serialised per manager chain by the lease's lock.
    """

    def __init__(self, max_sessions: int = 4):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._entries: "OrderedDict[SessionKey, _SessionEntry]" = OrderedDict()
        #: ``prefix_resume_hits`` / ``prefix_resume_misses`` /
        #: ``prefix_gates_saved`` / ``prefix_invalidations`` /
        #: ``prefix_busy`` / ``prefix_sessions_evicted`` / ``prefix_deposits``.
        self.counters = PerfCounters()

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(self, num_qubits: int, tokens: Sequence[GateToken],
              reorder: Optional[int]) -> Optional[SessionLease]:
        """Lease the longest retained prefix of ``tokens``, or ``None``.

        A candidate must simulate the same register width under the same
        reordering setting, and its full stored gate sequence must be a
        (possibly complete) prefix of the incoming one.  Stale candidates
        (manager generation moved since deposit) are dropped on sight;
        candidates whose chain is mid-resume elsewhere are skipped.
        """
        tokens = tuple(tokens)
        with self._lock:
            best: Optional[_SessionEntry] = None
            for entry in list(self._entries.values()):
                entry_qubits, entry_reorder, entry_tokens = entry.key
                if entry_qubits != num_qubits or entry_reorder != reorder:
                    continue
                depth = len(entry_tokens)
                if depth > len(tokens) or entry_tokens != tokens[:depth]:
                    continue
                if entry.generation_probe() != entry.stored_generation:
                    del self._entries[entry.key]
                    self.counters.add("prefix_invalidations")
                    continue
                if best is None or depth > len(best.key[2]):
                    best = entry
            if best is None:
                self.counters.add("prefix_resume_misses")
                return None
            if not best.chain_lock.acquire(blocking=False):
                self.counters.add("prefix_busy")
                self.counters.add("prefix_resume_misses")
                return None
            try:
                fork = best.payload.fork()
            except Exception:
                best.chain_lock.release()
                raise
            self._entries.move_to_end(best.key)
            depth = len(best.key[2])
            self.counters.add("prefix_resume_hits")
            self.counters.add("prefix_gates_saved", depth)
            return SessionLease(fork, depth, best.chain_lock)

    # ------------------------------------------------------------------ #
    # deposits
    # ------------------------------------------------------------------ #
    def deposit(self, num_qubits: int, tokens: Sequence[GateToken],
                reorder: Optional[int], payload,
                generation_probe: Callable[[], int],
                chain_lock: Optional[threading.Lock] = None) -> None:
        """Retain ``payload`` as the state after executing ``tokens``.

        ``payload`` must expose ``fork()`` (see
        :meth:`repro.engines.base.Engine.export_session`).  Pass the lease's
        ``chain_lock`` when the run itself was resumed — the new entry
        shares the manager, so it must share the serialisation lock; cold
        runs get a fresh chain.  Re-depositing an existing key replaces the
        old payload (and refreshes its recorded generation).
        """
        key: SessionKey = (num_qubits, reorder, tuple(tokens))
        entry = _SessionEntry(key, payload, generation_probe,
                              chain_lock or threading.Lock())
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            self.counters.add("prefix_deposits")
            while len(self._entries) > self.max_sessions:
                self._entries.popitem(last=False)
                self.counters.add("prefix_sessions_evicted")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_rate(self) -> float:
        """Lifetime prefix-match rate of :meth:`match` calls."""
        return self.counters.rate("prefix_resume_hits",
                                  "prefix_resume_misses")

    def stats(self) -> Dict[str, float]:
        """Counter snapshot plus the session-count gauge and hit rate."""
        snapshot = self.counters.snapshot()
        with self._lock:
            snapshot["prefix_sessions"] = len(self._entries)
        snapshot["prefix_resume_hit_rate"] = self.hit_rate()
        return snapshot

    def clear(self) -> None:
        """Drop every retained session (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionPool(sessions={len(self)}/{self.max_sessions})"


__all__ = ["SessionKey", "SessionLease", "SessionPool"]

"""Canonical circuit fingerprints for cross-run result memoisation.

A fingerprint is a stable SHA-256 digest over the *normalised* gate list of
a circuit (:func:`repro.circuit.transforms.fingerprint_normal_form`: SWAP
and Fredkin gates expanded, name dropped), together with everything else
that determines a run's deterministic outputs: the qubit count, the
classical register width, and the terminal measurement map in marker order
(marker order fixes the shared descent sampler's RNG consumption, so two
circuits measuring the same qubits in a different order sample different
counts and must fingerprint differently).

The digest is invariant under no-op transforms — renaming, copying,
composing with an empty circuit, re-stating an existing measurement marker,
writing a SWAP natively vs as three CNOTs — and is sensitive to everything
semantic: gate kinds, wires, classical conditions, measurement layout.
These invariances are pinned by ``tests/cache/test_fingerprint.py``.

Fingerprints are pure-content hashes: equal digests mean equal normalised
programs (up to SHA-256 collisions), independent of process, platform and
interpreter hash randomisation.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.circuit.transforms import fingerprint_normal_form

#: Version tag mixed into every digest; bump it whenever the token layout
#: changes so stale persisted fingerprints can never alias fresh ones.
FINGERPRINT_VERSION = 1

#: One gate as a hashable token (everything semantic, nothing cosmetic).
GateToken = Tuple[str, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...],
                  Optional[int]]


def gate_token(gate: Gate) -> GateToken:
    """The canonical hashable token of one gate application."""
    return (gate.kind.value, tuple(gate.targets), tuple(gate.controls),
            tuple(gate.clbits), gate.condition)


def gate_tokens(circuit: QuantumCircuit) -> Tuple[GateToken, ...]:
    """The circuit's raw gate stream as canonical tokens (no normalisation —
    this is the sequence prefix matching compares, where a SWAP and its
    three-CNOT expansion are *different* execution plans)."""
    return tuple(gate_token(gate) for gate in circuit.gates)


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable hex fingerprint of ``circuit``'s normalised program.

    The digest covers the normal form's gate tokens, ``num_qubits``,
    ``num_clbits`` and the terminal measurement map in marker order; the
    circuit name and the builder history are excluded.  Equal fingerprints
    identify circuits whose runs are interchangeable for every entry of the
    deterministic result serialisation
    (``RunResult.to_dict(timings=False)``).
    """
    normalised = fingerprint_normal_form(circuit)
    hasher = hashlib.sha256()
    hasher.update(f"repro-fingerprint-v{FINGERPRINT_VERSION}\0".encode())
    hasher.update(f"q={normalised.num_qubits};c={normalised.num_clbits}\0".encode())
    for token in gate_tokens(normalised):
        hasher.update(repr(token).encode())
        hasher.update(b"\0")
    hasher.update(b"measure\0")
    for pair in normalised.final_measurement_map():
        hasher.update(repr(pair).encode())
        hasher.update(b"\0")
    return hasher.hexdigest()


__all__ = ["FINGERPRINT_VERSION", "GateToken", "circuit_fingerprint",
           "gate_token", "gate_tokens"]

"""Cross-run amortisation: fingerprints, result memoisation, prefix reuse.

Production traffic is repetitive — the same GHZ/adder/QAOA shapes re-run
with different shot counts or a few appended gates — yet a plain
``repro.run()`` rebuilds every manager from ``|0>`` per call.  This package
amortises that work across requests, exploiting the paper's headline
property: the exact omega-algebra representation makes every state and
every fixed-seed result bit-reproducible, so a cached result or a resumed
prefix is *provably identical* to a cold run (pinned by the byte-identity
tests in ``tests/cache/``).

Three layers, usable independently:

* :func:`circuit_fingerprint` — a stable content hash over the normalised
  gate list (SWAPs expanded, names ignored, measurement layout included);
* :class:`ResultCache` — a bounded thread-safe LRU of finished
  :class:`~repro.engines.result.RunResult` records, keyed on
  ``(fingerprint, engine, seed, shots, reorder, limits)``, plugged into
  ``repro.run(..., cache=...)`` and the sweep executors;
* :class:`SessionPool` — retained bit-sliced session states (slice roots +
  manager) that ``repro.run(..., sessions=...)`` resumes from when an
  incoming circuit extends a retained gate-sequence prefix, instead of
  replaying from ``|0>``.

See ``docs/caching.md`` for the fingerprint spec, the eviction policies and
the prefix-resume exactness argument.
"""

from repro.cache.fingerprint import (
    FINGERPRINT_VERSION,
    circuit_fingerprint,
    gate_token,
    gate_tokens,
)
from repro.cache.result_cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    cacheable_request,
    normalise_reorder,
    result_cache_key,
)
from repro.cache.sessions import SessionLease, SessionPool

__all__ = [
    "CACHEABLE_STATUSES",
    "FINGERPRINT_VERSION",
    "ResultCache",
    "SessionLease",
    "SessionPool",
    "cacheable_request",
    "circuit_fingerprint",
    "gate_token",
    "gate_tokens",
    "normalise_reorder",
    "result_cache_key",
]

"""Exception types shared by every simulation engine and the harness.

The paper's experimental protocol classifies every run as success, time-out
(TO), memory-out (MO), numerical error, or crash.  The engines in this
repository signal the non-success cases with the exceptions below so the
harness can build the same TO/MO/error columns.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for simulation failures."""


class SimulationTimeout(SimulationError):
    """The engine exceeded its wall-clock budget (the paper's "TO")."""

    def __init__(self, elapsed_seconds: float, limit_seconds: float):
        super().__init__(
            f"simulation exceeded the time limit: {elapsed_seconds:.1f}s "
            f"> {limit_seconds:.1f}s")
        self.elapsed_seconds = elapsed_seconds
        self.limit_seconds = limit_seconds


class SimulationMemoryExceeded(SimulationError):
    """The engine exceeded its memory budget (the paper's "MO")."""

    def __init__(self, used: int, limit: int, unit: str = "nodes"):
        super().__init__(
            f"simulation exceeded the memory limit: {used} {unit} > {limit} {unit}")
        self.used = used
        self.limit = limit
        self.unit = unit


class NumericalError(SimulationError):
    """The engine produced an invalid state (the paper's "error" column).

    The paper flags a run as erroneous when the state probabilities no longer
    sum to one because of floating-point precision loss; the QMDD baseline
    raises this when its normalisation check fails.
    """


class UnsupportedGateError(SimulationError):
    """A gate outside the engine's supported set was encountered."""


class JobCancelledError(SimulationError):
    """The run was cancelled cooperatively (service job cancellation).

    Raised by :meth:`repro.engines.limits.LimitEnforcer.check` when the
    job's cancel token is set — between gates, exactly where TO/MO budgets
    are enforced — so a cancelled job stops at the next gate boundary and
    unwinds through the same ``finally`` blocks as a timeout (releasing any
    held session lease on the way out).  Unlike TO/MO it is *not* an outcome
    class of the run: the front door lets it propagate to the caller (the
    service scheduler), which reports the job as cancelled rather than
    fabricating a result.
    """

    def __init__(self, detail: str = ""):
        super().__init__(detail or "job cancelled")

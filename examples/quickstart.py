"""Quickstart: build a circuit, simulate it exactly, inspect the results.

Run with::

    python examples/quickstart.py

The example prepares a 3-qubit GHZ state, prints the exact algebraic
amplitudes (no floating point anywhere until the final conversion), queries
outcome probabilities through the monolithic-BDD measurement engine, samples
shots, and finally collapses one qubit to show how the normalisation factor
``s`` of Eq. 13 enters.
"""

from repro import BitSliceSimulator, QuantumCircuit


def main() -> None:
    # Build the circuit with the fluent API.  Qubit 0 is the most significant
    # bit of a basis index, so |100> means "qubit 0 is 1".
    circuit = QuantumCircuit(3, name="ghz3")
    circuit.h(0).cx(0, 1).cx(1, 2)
    print(circuit.summary())
    print()

    # Run it on the bit-sliced BDD engine.
    simulator = BitSliceSimulator.simulate(circuit)

    print("Exact amplitudes (algebraic form (a*w^3 + b*w^2 + c*w + d)/sqrt(2)^k):")
    for basis in range(8):
        amplitude = simulator.amplitude(basis)
        if not amplitude.is_zero():
            print(f"  |{basis:03b}>  ->  {amplitude}   = {amplitude.to_complex():.6f}")
    print()

    print("Outcome probabilities (computed through the monolithic measurement BDD):")
    for outcome, probability in sorted(simulator.measurement_distribution().items()):
        print(f"  Pr[|{outcome:03b}>] = {probability}")
    print()

    print("1000 sampled shots:", simulator.sample(1000, rng=None))
    print()

    # Collapse qubit 0 and look at the renormalisation factor s.
    outcome = simulator.measure_qubit(0, forced_outcome=1)
    print(f"Measured qubit 0 -> {outcome}; normalisation factor s = "
          f"{simulator.normalisation:.6f}")
    print("Distribution after collapse:", simulator.measurement_distribution())
    print()

    print("Engine statistics:", simulator.statistics())


if __name__ == "__main__":
    main()

"""Bernstein–Vazirani at scale: the Table V story in one script.

Run with::

    python examples/bernstein_vazirani_scaling.py [max_qubits]

The script runs the BV algorithm on growing register sizes with three
engines — the bit-sliced BDD engine, the float-weighted QMDD engine and the
CHP stabilizer simulator — and prints a small table of runtimes and outcome
classes.  It then verifies, on the bit-sliced engine, that the measured data
register reproduces the hidden string with probability exactly 1 (the
algorithm's defining property), using the exact joint-outcome query the paper
recommends in Section III-E.
"""

from __future__ import annotations

import sys
import time

import repro
from repro import ResourceLimits
from repro.workloads.algorithms import bernstein_vazirani_circuit


def main(max_qubits: int = 160) -> None:
    limits = ResourceLimits(max_seconds=60.0, max_nodes=400_000)
    sizes = [size for size in (20, 40, 80, max_qubits) if size <= max_qubits]

    circuits = [bernstein_vazirani_circuit(num_qubits - 1) for num_qubits in sizes]
    print(f"{'#qubits':>8} {'engine':>12} {'status':>12} {'time (s)':>10}")
    # One front-door sweep over the (circuit x engine) grid; bump jobs to
    # spread the grid over process workers with identical reported numbers.
    for result in repro.run_sweep(circuits,
                                  engines=("bitslice", "qmdd", "stabilizer"),
                                  limits=limits, jobs=1):
        time_text = f"{result.elapsed_seconds:.3f}" if result.succeeded else "-"
        print(f"{result.num_qubits:>8} {result.engine:>12} "
              f"{result.status:>12} {time_text:>10}")

    # Correctness of the algorithm on the exact engine: the data register
    # must equal the hidden string with probability exactly 1.
    num_data = 32
    hidden = 0b1011_0010_1110_0101_1010_0110_0011_1001 & ((1 << num_data) - 1)
    circuit = bernstein_vazirani_circuit(num_data, hidden_string=hidden)
    from repro import BitSliceSimulator

    start = time.perf_counter()
    simulator = BitSliceSimulator.simulate(circuit)
    outcome_bits = [(hidden >> (num_data - 1 - q)) & 1 for q in range(num_data)]
    probability = simulator.probability_of_outcome(list(range(num_data)), outcome_bits)
    elapsed = time.perf_counter() - start
    print(f"\nBV with hidden string {hidden:#x} on {num_data} data qubits: "
          f"Pr[read hidden string] = {probability} "
          f"(exact, computed in {elapsed:.2f}s)")
    assert probability == 1.0


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 160)

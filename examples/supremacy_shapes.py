"""Supremacy circuits: where the bit-sliced representation starts to hurt.

Run with::

    python examples/supremacy_shapes.py

The paper is candid that the Google GRCS supremacy circuits are the hardest
family for both decision-diagram engines: the entangled states they produce
have little Boolean structure for a BDD to exploit, so the bit-sliced engine
trades speed for memory against the QMDD engine.  This example generates
small rectangular-lattice circuits at increasing depth, runs both engines and
prints runtime and node counts side by side, plus the GRCS file round-trip.
"""

from __future__ import annotations

import time

from repro import BitSliceSimulator, QmddSimulator
from repro.circuit.grcs import circuit_from_grcs, circuit_to_grcs
from repro.workloads.supremacy import grcs_circuit


def main() -> None:
    rows, columns = 4, 4
    print(f"{'depth':>6} {'gates':>6} {'engine':>10} {'time (s)':>10} {'nodes':>10}")
    for depth in (2, 3, 4, 5):
        circuit = grcs_circuit(rows, columns, depth=depth, seed=1)

        start = time.perf_counter()
        exact = BitSliceSimulator.simulate(circuit)
        exact_time = time.perf_counter() - start
        print(f"{depth:>6} {circuit.num_gates:>6} {'bitslice':>10} "
              f"{exact_time:>10.3f} {exact.state.num_nodes():>10}")

        start = time.perf_counter()
        qmdd = QmddSimulator.simulate(circuit)
        qmdd_time = time.perf_counter() - start
        print(f"{depth:>6} {circuit.num_gates:>6} {'qmdd':>10} "
              f"{qmdd_time:>10.3f} {qmdd.num_nodes():>10}")

    # GRCS text format round-trip (the format the original files use).
    circuit = grcs_circuit(rows, columns, depth=3, seed=1)
    text = circuit_to_grcs(circuit)
    parsed = circuit_from_grcs(text)
    assert parsed.num_gates == circuit.num_gates
    print("\nGRCS round-trip OK; first lines of the serialised circuit:")
    print("\n".join(text.splitlines()[:6]))


if __name__ == "__main__":
    main()

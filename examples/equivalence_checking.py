"""Exact equivalence checking: a verification application of the exact engine.

Run with::

    python examples/equivalence_checking.py

Because the bit-sliced engine stores amplitudes as integers, two circuits can
be compared with *no numerical tolerance at all* — the natural verification
use-case for an exact simulator inside an EDA flow.  The example checks three
classic identities, shows that a genuinely different circuit is caught with a
counterexample input, and verifies that the peephole optimiser of
``repro.circuit.transforms`` preserves functionality on a RevLib-style
benchmark circuit.
"""

from __future__ import annotations

from repro import QuantumCircuit
from repro.circuit.transforms import cancel_adjacent_inverses
from repro.core.equivalence import circuits_equivalent
from repro.workloads.revlib import generate_revlib_circuit


def check(label: str, left: QuantumCircuit, right: QuantumCircuit) -> None:
    report = circuits_equivalent(left, right)
    verdict = "EQUIVALENT" if report.equivalent else "DIFFERENT"
    extra = ""
    if not report.equivalent:
        extra = f"  (counterexample input |{report.counterexample:b}>)"
    print(f"  {label:<40} {verdict}{extra}")


def main() -> None:
    print("Classic identities (checked exactly on every basis input):")
    check("H X H == Z",
          QuantumCircuit(1).h(0).x(0).h(0),
          QuantumCircuit(1).z(0))
    check("S S == Z",
          QuantumCircuit(1).s(0).s(0),
          QuantumCircuit(1).z(0))
    check("SWAP == CX CX CX",
          QuantumCircuit(2).swap(0, 1),
          QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1))
    check("T^8 == I",
          QuantumCircuit(1).t(0).t(0).t(0).t(0).t(0).t(0).t(0).t(0),
          QuantumCircuit(1))

    print("\nDifferences are caught (including pure global phases):")
    check("CX(0,1) vs CX(1,0)",
          QuantumCircuit(2).cx(0, 1),
          QuantumCircuit(2).cx(1, 0))
    check("X Z vs Z X (differ by -1 global phase)",
          QuantumCircuit(1).x(0).z(0),
          QuantumCircuit(1).z(0).x(0))

    print("\nOptimiser verification on a RevLib-style adder:")
    circuit, _ = generate_revlib_circuit("add8")
    padded = circuit.compose(circuit.inverse())          # trivially reducible
    optimised = cancel_adjacent_inverses(padded)
    report = circuits_equivalent(padded, optimised, max_exhaustive_qubits=0, samples=8)
    print(f"  gates before: {padded.num_gates}, after peephole: {optimised.num_gates}, "
          f"equivalent on sampled inputs: {report.equivalent}")


if __name__ == "__main__":
    main()

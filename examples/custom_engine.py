"""Registering a third-party engine behind the unified engine API.

Run with::

    python examples/custom_engine.py

The example implements a deliberately tiny "sparse dictionary" simulator —
amplitudes kept in a ``{basis_index: complex}`` mapping, good exactly when
few basis states are occupied — and plugs it into the registry with
:func:`repro.register_engine`.  Once registered it is a first-class citizen:

* ``repro.run(circuit, engine="sparse-dict")`` executes it under the same
  TO/MO limit wrapper and outcome classification as the built-ins,
* its declared :class:`~repro.Capabilities` make it eligible for
  ``engine="auto"`` selection,
* it can ride in ``repro.run_sweep`` grids next to the built-in engines.

The point is the integration surface, not the simulator: ``prepare`` /
``apply`` / ``probability`` / ``memory_nodes`` (plus a ``Capabilities``
declaration) are all a backend needs.
"""

from __future__ import annotations

import cmath
from typing import Dict, Optional, Sequence

import repro
from repro import Capabilities, Engine, QuantumCircuit, ResourceLimits, register_engine
from repro.circuit.gates import Gate, GateKind, gate_matrix


@register_engine("sparse-dict", aliases=("sparse",))
class SparseDictEngine(Engine):
    """Amplitudes in a dictionary keyed by basis index.

    Memory scales with the number of occupied basis states, so the engine
    shines on low-entanglement circuits and degrades exponentially on dense
    superpositions — an honest ``selection_priority`` places it after the
    built-ins so ``"auto"`` never prefers it, while explicit callers can
    still pick it by name.
    """

    capabilities = Capabilities(
        name="sparse-dict",
        label="Sparse dictionary",
        supported_gates=frozenset(GateKind) - {GateKind.MEASURE, GateKind.RESET},
        exact=False,
        selection_priority=90,
        description="Toy sparse-amplitude simulator (example engine).",
        # No collapse implementation: mid-circuit measurement and reset are
        # honestly declared unsupported.  Shot *sampling* still works — the
        # Engine base class samples any engine with a correct probability()
        # through the shared conditional-probability descent.
        supports_measurement=False,
    )

    def __init__(self) -> None:
        super().__init__()
        self._amplitudes: Dict[int, complex] = {}
        self._n = 0

    # -- lifecycle ------------------------------------------------------- #
    def prepare(self, circuit: QuantumCircuit,
                limits: Optional[ResourceLimits] = None) -> None:
        super().prepare(circuit, limits)
        self._n = circuit.num_qubits
        self._amplitudes = {0: 1.0 + 0j}

    def apply(self, gate: Gate) -> None:
        if gate.kind is GateKind.MEASURE:
            return
        self.ensure_supported(gate)
        if gate.kind in (GateKind.SWAP, GateKind.CSWAP):
            self._apply_swap(gate)
        else:
            self._apply_single(gate)
        self._count_gate(gate)

    # -- gate mechanics (qubit 0 = most significant bit, repo convention) - #
    def _bit(self, index: int, qubit: int) -> int:
        return (index >> (self._n - 1 - qubit)) & 1

    def _flip(self, index: int, qubit: int) -> int:
        return index ^ (1 << (self._n - 1 - qubit))

    def _apply_single(self, gate: Gate) -> None:
        matrix = gate_matrix(gate.kind)
        target = gate.targets[0]
        updated: Dict[int, complex] = {}
        for index, amplitude in self._amplitudes.items():
            if gate.controls and not all(self._bit(index, c) for c in gate.controls):
                updated[index] = updated.get(index, 0j) + amplitude
                continue
            bit = self._bit(index, target)
            partner = self._flip(index, target)
            row0 = index if bit == 0 else partner
            row1 = partner if bit == 0 else index
            updated[row0] = updated.get(row0, 0j) + matrix[0, bit] * amplitude
            updated[row1] = updated.get(row1, 0j) + matrix[1, bit] * amplitude
        self._amplitudes = {index: amplitude for index, amplitude in updated.items()
                            if abs(amplitude) > 1e-14}

    def _apply_swap(self, gate: Gate) -> None:
        qubit_a, qubit_b = gate.targets
        updated: Dict[int, complex] = {}
        for index, amplitude in self._amplitudes.items():
            destination = index
            if (all(self._bit(index, c) for c in gate.controls)
                    and self._bit(index, qubit_a) != self._bit(index, qubit_b)):
                destination = self._flip(self._flip(index, qubit_a), qubit_b)
            updated[destination] = updated.get(destination, 0j) + amplitude
        self._amplitudes = updated

    # -- queries --------------------------------------------------------- #
    def probability(self, qubits: Sequence[int], bits: Sequence[int]) -> float:
        total = 0.0
        for index, amplitude in self._amplitudes.items():
            if all(self._bit(index, q) == int(b) for q, b in zip(qubits, bits)):
                total += abs(amplitude) ** 2
        return total

    def memory_nodes(self) -> int:
        return max(1, len(self._amplitudes))

    @property
    def num_qubits(self) -> int:
        return self._n


def main() -> None:
    print("Registered engines:", ", ".join(repro.available_engines()))
    print()

    ghz = QuantumCircuit(10, name="ghz10").h(0)
    for qubit in range(9):
        ghz.cx(qubit, qubit + 1)

    # The custom engine through the same front door as the built-ins.
    result = repro.run(ghz, engine="sparse-dict",
                       limits=ResourceLimits(max_seconds=30.0))
    print(f"sparse-dict on {ghz.name}: status={result.status}, "
          f"P[all zeros]={result.final_probability:.3f}, "
          f"occupied states={result.peak_memory_nodes}")

    # Shot sampling comes for free: the Engine base class drives the shared
    # conditional-probability descent over this engine's probability().
    sampled = repro.run(ghz, engine="sparse-dict", shots=1024, seed=0,
                        limits=ResourceLimits(max_seconds=30.0))
    print(f"sparse-dict sampling {ghz.name}: counts={sampled.counts_bitstrings()}")

    # Same circuit swept across three engines through the same grid executor
    # (jobs=1 here: an engine registered inside a script is only guaranteed
    # to exist in forked workers, so examples stay serial for portability).
    results = repro.run_sweep([ghz], engines=("sparse-dict", "bitslice", "stabilizer"),
                              limits=ResourceLimits(max_seconds=30.0), jobs=1)
    for row in results:
        print(f"  {row.engine:<12} {row.status:<4} "
              f"P={row.final_probability:.3f} mem={row.peak_memory_nodes}")
    print()

    # The limit wrapper treats custom engines exactly like built-ins: a dense
    # superposition blows the sparse dictionary up, and a node budget turns
    # that into the paper's MO outcome instead of an interpreter stall.
    dense = QuantumCircuit(18, name="dense18")
    for qubit in range(18):
        dense.h(qubit)
    result = repro.run(dense, engine="sparse-dict",
                       limits=ResourceLimits(max_seconds=30.0, max_nodes=10_000))
    print(f"sparse-dict on {dense.name} with a 10k-state budget: "
          f"status={result.status}")

    # Honest capabilities keep "auto" away from the toy engine.
    print("auto still selects:", repro.select_engine(dense).upper(),
          "for the dense circuit")

    amp = cmath.sqrt(0.5)
    print(f"(GHZ amplitudes are ±{amp.real:.3f}, as the sparse table stores them)")


if __name__ == "__main__":
    main()
